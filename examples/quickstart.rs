//! Quickstart: create a wait-free queue, register threads, move values.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wfq_repro::kp_queue::{Config, ConcurrentQueue, WfQueue};

fn main() {
    // A queue for at most 8 simultaneously registered threads, using the
    // paper's best variant, opt WF (1+2). `Config::base()` selects the
    // base algorithm of §3.2 instead.
    let queue: WfQueue<String> = WfQueue::with_config(8, Config::opt_both());

    // Four producers and three consumers share the queue; each thread
    // registers to obtain its handle (its virtual thread ID).
    std::thread::scope(|s| {
        for producer in 0..4 {
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.register().expect("a free thread slot");
                for i in 0..5 {
                    h.enqueue(format!("message {i} from producer {producer}"));
                }
            });
        }
        for consumer in 0..3 {
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.register().expect("a free thread slot");
                let mut got = 0;
                while got < 5 {
                    // `None` = queue observed empty (the paper's
                    // EmptyException); poll again.
                    if let Some(msg) = h.dequeue() {
                        println!("consumer {consumer}: {msg}");
                        got += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        }
    });

    // Drain the remainder on the main thread.
    let mut h = queue.register().unwrap();
    let mut rest = 0;
    while h.dequeue().is_some() {
        rest += 1;
    }
    println!("main drained {rest} leftover messages");

    // The queue exposes its helping statistics: under contention some
    // operations' linearization steps are executed by peers.
    let stats = queue.stats();
    println!(
        "ops = {}, helped steps = {} ({:.2}% of ops)",
        stats.ops(),
        stats.helped_appends + stats.helped_locks,
        100.0 * stats.helped_fraction()
    );
}
