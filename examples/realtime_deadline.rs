//! Why wait-freedom: bounded per-operation completion time.
//!
//! The paper's motivation (§1) is systems with "strict deadlines for
//! operation completion … real-time applications or … a service level
//! agreement". This example measures exactly that, side by side:
//! oversubscribe the machine, hammer a lock-free queue and a wait-free
//! queue with the same workload, and compare the *worst* operation each
//! thread observed.
//!
//! The wait-free queue's helping machinery costs median latency but
//! caps the tail: a preempted thread's operation is finished by its
//! peers, while in the lock-free queue an unlucky thread can retry its
//! CAS indefinitely under contention.
//!
//! ```text
//! cargo run --release --example realtime_deadline
//! ```

use std::sync::Barrier;
use std::time::{Duration, Instant};

use wfq_repro::kp_queue::{Config, WfQueue};
use wfq_repro::ms_queue::MsQueue;
use wfq_repro::traits::{ConcurrentQueue, QueueHandle};

const THREADS: usize = 8; // deliberately more than most cores
const ITERS: usize = 20_000;
const DEADLINE: Duration = Duration::from_millis(50);

/// Runs the pairs workload and returns `(p50, p99.9, max)` operation
/// latency over all threads, in nanoseconds.
fn run<Q: ConcurrentQueue<u64> + Sync>(queue: &Q) -> (u64, u64, u64) {
    let barrier = Barrier::new(THREADS);
    let mut all = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let queue = &queue;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut h = queue.register().unwrap();
                    let mut lat = Vec::with_capacity(2 * ITERS);
                    barrier.wait();
                    for i in 0..ITERS {
                        let t0 = Instant::now();
                        h.enqueue((t * ITERS + i) as u64);
                        lat.push(t0.elapsed().as_nanos() as u64);
                        let t1 = Instant::now();
                        std::hint::black_box(h.dequeue());
                        lat.push(t1.elapsed().as_nanos() as u64);
                        if i % 64 == 0 {
                            std::thread::yield_now(); // aggressive preemption
                        }
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().unwrap());
        }
    });
    all.sort_unstable();
    let q = |p: f64| all[((all.len() - 1) as f64 * p) as usize];
    (q(0.50), q(0.999), *all.last().unwrap())
}

fn main() {
    println!("per-operation latency under {THREADS}-way oversubscription ({ITERS} pairs/thread)");
    println!(
        "{:>14} {:>12} {:>12} {:>12}  deadline check",
        "queue", "p50 ns", "p99.9 ns", "max ns"
    );

    let lf = MsQueue::new();
    let (p50, p999, max) = run(&lf);
    report("LF (MS)", p50, p999, max);

    let wf: WfQueue<u64> = WfQueue::with_config(THREADS, Config::opt_both());
    let (p50, p999, max) = run(&wf);
    report("WF opt (1+2)", p50, p999, max);

    let wfb: WfQueue<u64> = WfQueue::with_config(THREADS, Config::base());
    let (p50, p999, max) = run(&wfb);
    report("WF base", p50, p999, max);

    println!(
        "\nwait-free helping at work: {:.2}% of WF-opt ops finished by a peer",
        100.0 * wf.stats().helped_fraction()
    );
}

fn report(name: &str, p50: u64, p999: u64, max: u64) {
    let ok = if Duration::from_nanos(max) <= DEADLINE {
        "within deadline"
    } else {
        "MISSED deadline"
    };
    println!("{name:>14} {p50:>12} {p999:>12} {max:>12}  {ok}");
}
