//! A two-stage work pipeline built on wait-free queues — the kind of
//! workload the paper's introduction motivates (SLA-bound systems where
//! every stage must make progress even when threads stall).
//!
//! Stage 1 workers parse "requests" from an ingress queue and push
//! intermediate records onto a second queue; stage 2 workers aggregate.
//! Both queues are MPMC, so any worker can pick up any item — no
//! per-worker channels, no head-of-line blocking on a stalled worker.
//!
//! ```text
//! cargo run --release --example task_pipeline
//! ```

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use wfq_repro::kp_queue::{ConcurrentQueue, WfQueue};

const REQUESTS: usize = 20_000;
const STAGE1_WORKERS: usize = 3;
const STAGE2_WORKERS: usize = 2;

/// An ingress "request": a blob of numbers to process.
struct Request {
    id: usize,
    payload: Vec<u64>,
}

/// The intermediate record stage 1 produces.
struct Parsed {
    id: usize,
    checksum: u64,
}

fn main() {
    let ingress: WfQueue<Request> = WfQueue::new(1 + STAGE1_WORKERS);
    let parsed: WfQueue<Parsed> = WfQueue::new(STAGE1_WORKERS + STAGE2_WORKERS);

    let stage1_done = AtomicUsize::new(0);
    let processed = AtomicUsize::new(0);
    let total_checksum = AtomicU64::new(0);

    std::thread::scope(|s| {
        // Producer: feed all requests, then signal per-stage completion
        // by counting instead of closing (queues have no close).
        {
            let ingress = &ingress;
            s.spawn(move || {
                let mut h = ingress.register().unwrap();
                for id in 0..REQUESTS {
                    let payload = (0..8).map(|k| (id * 8 + k) as u64).collect();
                    h.enqueue(Request { id, payload });
                }
            });
        }

        // Stage 1: parse.
        for _ in 0..STAGE1_WORKERS {
            let ingress = &ingress;
            let parsed = &parsed;
            let stage1_done = &stage1_done;
            s.spawn(move || {
                let mut hin = ingress.register().unwrap();
                let mut hout = parsed.register().unwrap();
                loop {
                    match hin.dequeue() {
                        Some(req) => {
                            let checksum =
                                req.payload.iter().fold(0u64, |a, &x| a.wrapping_add(x * 31));
                            hout.enqueue(Parsed {
                                id: req.id,
                                checksum,
                            });
                            stage1_done.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if stage1_done.load(Ordering::Relaxed) >= REQUESTS {
                                return; // everything parsed
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }

        // Stage 2: aggregate.
        for _ in 0..STAGE2_WORKERS {
            let parsed = &parsed;
            let processed = &processed;
            let total_checksum = &total_checksum;
            s.spawn(move || {
                let mut h = parsed.register().unwrap();
                loop {
                    match h.dequeue() {
                        Some(p) => {
                            debug_assert!(p.id < REQUESTS);
                            total_checksum.fetch_add(p.checksum, Ordering::Relaxed);
                            processed.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            if processed.load(Ordering::Relaxed) >= REQUESTS {
                                return;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
    });

    assert_eq!(processed.load(Ordering::Relaxed), REQUESTS);
    // Cross-check the aggregate against a sequential computation.
    let expected: u64 = (0..REQUESTS)
        .map(|id| {
            (0..8)
                .map(|k| (id * 8 + k) as u64)
                .fold(0u64, |a, x| a.wrapping_add(x * 31))
        })
        .fold(0u64, |a, x| a.wrapping_add(x));
    assert_eq!(total_checksum.load(Ordering::Relaxed), expected);

    println!(
        "pipeline processed {REQUESTS} requests through {} + {} workers",
        STAGE1_WORKERS, STAGE2_WORKERS
    );
    println!(
        "ingress helping: {:?} | parsed helping: {:?}",
        ingress.stats().helped_fraction(),
        parsed.stats().helped_fraction()
    );
    println!("aggregate checksum verified: {expected:#x}");
}
