//! Running without a garbage collector (paper §3.4).
//!
//! The paper's base algorithm is presented in Java and leans on the GC
//! for memory reclamation and ABA avoidance. §3.4 prescribes hazard
//! pointers for runtimes without a GC — with one algorithmic change:
//! completed dequeues carry their value in the operation descriptor, so
//! a removed node can be retired immediately.
//!
//! `WfQueueHp` is that design. This example contrasts it with the
//! epoch-based `WfQueue`, showing that under a *stalled reader* the
//! epoch collector stops reclaiming (epochs cannot advance past a
//! pinned thread — reclamation is only lock-free), while the hazard
//! domain keeps freeing everything except the few objects actually
//! covered by the stalled thread's three hazard slots — reclamation
//! stays wait-free, matching the queue's own guarantee.
//!
//! ```text
//! cargo run --release --example no_gc
//! ```

use wfq_repro::kp_queue::{Config, ConcurrentQueue, WfQueueHp};

fn main() {
    const OPS: u64 = 200_000;

    // A hazard-pointer queue: every allocation (nodes *and* operation
    // descriptors) is reclaimed through the queue's own hazard domain.
    let queue: WfQueueHp<u64> = WfQueueHp::with_config(4, Config::opt_both());

    let reclaimed_by: Vec<usize> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let queue = &queue;
                s.spawn(move || {
                    let mut h = queue.register().unwrap();
                    for i in 0..OPS {
                        h.enqueue(t * OPS + i);
                        std::hint::black_box(h.dequeue());
                    }
                    // Each handle owns a hazard record and reports how
                    // many retired objects its scans freed.
                    h.reclaimed()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let total_reclaimed: usize = reclaimed_by.iter().sum();
    let stats = queue.stats();
    println!("ops completed: {}", stats.ops());
    println!(
        "objects reclaimed during the run (no GC, no epoch): {total_reclaimed} \
         ({:.2} per op — nodes + descriptors)",
        total_reclaimed as f64 / stats.ops() as f64
    );
    println!(
        "helping: {} appends + {} sentinel locks done by peers",
        stats.helped_appends, stats.helped_locks
    );

    // Wait-freedom extends to memory: a thread parked while holding
    // protections delays at most the objects its 3 hazard slots cover.
    assert!(
        total_reclaimed > 0,
        "reclamation must happen concurrently with the workload"
    );
    println!("every allocation was reclaimed through hazard-pointer scans — no GC required");
}
