//! An ingest server skeleton: bursty producer threads feed a sharded
//! wait-free channel, and a tokio task pool consumes it through the
//! channel's async receiver — the deployment shape ROADMAP item 1
//! names ("millions of users" ingest with tail-latency control).
//!
//! Producers are plain OS threads (network handlers, in real life)
//! using `send_batch` so a burst costs one shard acquisition; consumer
//! tasks await `recv_async` and park in the executor, not on a lock,
//! while idle. Dropping the last sender disconnects the channel, the
//! async receivers resolve `None`, and the task pool drains out.
//!
//! ```text
//! cargo run --release --example ingest_server
//! ```

use std::time::{Duration, Instant};

use wfq_repro::kp_channel::{Channel, ChannelConfig};
use wfq_repro::wcq::WcQueue;

const PRODUCERS: usize = 3;
const CONSUMER_TASKS: usize = 4;
const WORKERS: usize = 2;
const BURSTS_PER_PRODUCER: usize = 50;
const BURST: usize = 64;
const SHARDS: usize = 4;
const SHARD_CAPACITY: usize = 4096;

fn main() {
    let t0 = Instant::now();
    // `tokio::spawn` needs `'static` receivers; give the channel a
    // static home (a deliberate one-object leak, the usual pattern for
    // process-lifetime services).
    let chan: &'static Channel<u64, WcQueue<u64>> = Box::leak(Box::new(Channel::wcq(
        ChannelConfig::new()
            .with_shards(SHARDS)
            .with_max_senders(PRODUCERS)
            .with_max_receivers(CONSUMER_TASKS),
        SHARD_CAPACITY,
    )));

    // Producer threads: each sends BURSTS_PER_PRODUCER bursts of BURST
    // values, tagged (producer << 48 | seq) so consumers can audit
    // FIFO-per-producer order end to end.
    // All senders are minted before any producer thread can run to
    // completion: minting concurrently with the drop of the last live
    // sender would race the channel's disconnect latch.
    let senders: Vec<_> = (0..PRODUCERS).map(|_| chan.sender()).collect();
    let producers: Vec<_> = senders
        .into_iter()
        .enumerate()
        .map(|(p, mut tx)| {
            let p = p as u64;
            std::thread::spawn(move || {
                for burst in 0..BURSTS_PER_PRODUCER as u64 {
                    let base = burst * BURST as u64;
                    tx.send_batch((0..BURST as u64).map(|i| (p << 48) | (base + i)))
                        .expect("receivers vanished");
                    // A think-time gap makes the arrivals bursty and
                    // lets consumers actually park between bursts.
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        })
        .collect();

    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(WORKERS)
        .enable_all()
        .build()
        .expect("building runtime");

    let received: u64 = rt.block_on(async {
        let mut tasks = Vec::new();
        for _ in 0..CONSUMER_TASKS {
            let mut rx = chan.receiver();
            tasks.push(tokio::spawn(async move {
                let mut count = 0u64;
                let mut last_seq = [None::<u64>; PRODUCERS];
                while let Some(v) = rx.recv_async().await {
                    let (p, seq) = ((v >> 48) as usize, v & 0xffff_ffff_ffff);
                    if let Some(prev) = last_seq[p] {
                        assert!(seq > prev, "producer {p} reordered within a consumer");
                    }
                    last_seq[p] = Some(seq);
                    count += 1;
                    if count.is_multiple_of(1024) {
                        tokio::task::yield_now().await;
                    }
                }
                count
            }));
        }
        // Block the runtime thread on the producers; consumer tasks
        // keep running on the worker pool. When the last producer
        // drops its sender the channel disconnects and every task's
        // recv_async resolves None.
        for p in producers {
            p.join().expect("producer panicked");
        }
        let mut total = 0;
        for t in tasks {
            total += t.await.expect("consumer task cancelled");
        }
        total
    });

    let expected = (PRODUCERS * BURSTS_PER_PRODUCER * BURST) as u64;
    assert_eq!(received, expected, "every ingested value must be consumed exactly once");
    println!(
        "ingest_server: {} values, {} producers -> {} shards -> {} async consumers on {} workers in {:?}",
        received, PRODUCERS, SHARDS, CONSUMER_TASKS, WORKERS, t0.elapsed()
    );
}
