//! Dynamic thread populations via long-lived renaming (paper §3.3).
//!
//! The base algorithm assumes threads own fixed IDs in
//! `0..NUM_THRDS`. §3.3 relaxes this: threads may "get and release
//! (virtual) IDs from a small name space through … long-lived wait-free
//! renaming". In this implementation that is exactly what
//! `WfQueue::register` does — the `idpool` crate is the renaming
//! algorithm, and dropping a handle releases the name.
//!
//! This example runs three *generations* of short-lived worker threads
//! (more total threads than the queue has slots) against one queue,
//! demonstrating slot reuse, plus a rejected registration when a
//! generation oversubscribes on purpose.
//!
//! ```text
//! cargo run --release --example dynamic_threads
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use wfq_repro::kp_queue::{ConcurrentQueue, WfQueue};

const SLOTS: usize = 4;
const GENERATIONS: usize = 3;
const WORKERS_PER_GEN: usize = 4; // == SLOTS: each generation fills the pool
const ITEMS_PER_WORKER: usize = 5_000;

fn main() {
    let queue: WfQueue<u64> = WfQueue::new(SLOTS);
    let balance = AtomicU64::new(0);

    for generation in 0..GENERATIONS {
        std::thread::scope(|s| {
            for worker in 0..WORKERS_PER_GEN {
                let queue = &queue;
                let balance = &balance;
                s.spawn(move || {
                    // A fresh OS thread takes whatever virtual ID is
                    // free — IDs released by the previous generation.
                    let mut h = queue
                        .register()
                        .expect("previous generation released its slots");
                    for i in 0..ITEMS_PER_WORKER {
                        h.enqueue((generation * 1000 + worker) as u64 + i as u64);
                        if let Some(v) = h.dequeue() {
                            balance.fetch_add(v % 7, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        println!(
            "generation {generation}: {} worker threads came and went (queue len now {})",
            WORKERS_PER_GEN,
            queue.len_approx()
        );
    }

    // A 5th simultaneous registration must be rejected while 4 are held…
    let held: Vec<_> = (0..SLOTS).map(|_| queue.register().unwrap()).collect();
    match queue.register() {
        Err(e) => println!("oversubscription correctly rejected: {e}"),
        Ok(_) => unreachable!("capacity {SLOTS} exceeded"),
    }
    // …and succeed again as soon as one handle is dropped.
    drop(held);
    let again = queue.register().expect("slots recycled");
    println!(
        "slot {} reacquired after release; total ops served = {}",
        again.tid(),
        queue.stats().ops()
    );
    println!("balance (checksum): {}", balance.load(Ordering::Relaxed));
}
