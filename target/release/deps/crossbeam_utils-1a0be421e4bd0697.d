/root/repo/target/release/deps/crossbeam_utils-1a0be421e4bd0697.d: shims/crossbeam-utils/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_utils-1a0be421e4bd0697.rlib: shims/crossbeam-utils/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_utils-1a0be421e4bd0697.rmeta: shims/crossbeam-utils/src/lib.rs

shims/crossbeam-utils/src/lib.rs:
