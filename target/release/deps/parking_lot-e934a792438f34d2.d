/root/repo/target/release/deps/parking_lot-e934a792438f34d2.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e934a792438f34d2.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e934a792438f34d2.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
