/root/repo/target/release/deps/kp_queue-2ea0ebabe8581d08.d: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs

/root/repo/target/release/deps/libkp_queue-2ea0ebabe8581d08.rlib: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs

/root/repo/target/release/deps/libkp_queue-2ea0ebabe8581d08.rmeta: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs

crates/kp-queue/src/lib.rs:
crates/kp-queue/src/config.rs:
crates/kp-queue/src/desc.rs:
crates/kp-queue/src/handle.rs:
crates/kp-queue/src/hp/mod.rs:
crates/kp-queue/src/hp/handle.rs:
crates/kp-queue/src/hp/queue.rs:
crates/kp-queue/src/hp/types.rs:
crates/kp-queue/src/node.rs:
crates/kp-queue/src/queue.rs:
crates/kp-queue/src/stats.rs:
