/root/repo/target/release/deps/queue_traits-08441b5ba2253401.d: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

/root/repo/target/release/deps/libqueue_traits-08441b5ba2253401.rlib: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

/root/repo/target/release/deps/libqueue_traits-08441b5ba2253401.rmeta: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

crates/queue-traits/src/lib.rs:
crates/queue-traits/src/ext.rs:
crates/queue-traits/src/testing.rs:
