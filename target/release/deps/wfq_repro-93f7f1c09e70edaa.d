/root/repo/target/release/deps/wfq_repro-93f7f1c09e70edaa.d: src/lib.rs

/root/repo/target/release/deps/libwfq_repro-93f7f1c09e70edaa.rlib: src/lib.rs

/root/repo/target/release/deps/libwfq_repro-93f7f1c09e70edaa.rmeta: src/lib.rs

src/lib.rs:
