/root/repo/target/release/deps/ms_queue-820949dd5c300577.d: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

/root/repo/target/release/deps/libms_queue-820949dd5c300577.rlib: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

/root/repo/target/release/deps/libms_queue-820949dd5c300577.rmeta: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

crates/ms-queue/src/lib.rs:
crates/ms-queue/src/baselines.rs:
crates/ms-queue/src/epoch.rs:
crates/ms-queue/src/hp.rs:
