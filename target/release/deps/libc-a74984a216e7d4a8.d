/root/repo/target/release/deps/libc-a74984a216e7d4a8.d: shims/libc/src/lib.rs

/root/repo/target/release/deps/liblibc-a74984a216e7d4a8.rlib: shims/libc/src/lib.rs

/root/repo/target/release/deps/liblibc-a74984a216e7d4a8.rmeta: shims/libc/src/lib.rs

shims/libc/src/lib.rs:
