/root/repo/target/release/deps/harness-b54f4afad9a01247.d: crates/harness/src/lib.rs crates/harness/src/args.rs crates/harness/src/figures.rs crates/harness/src/latency.rs crates/harness/src/report.rs crates/harness/src/sched.rs crates/harness/src/space.rs crates/harness/src/stats.rs crates/harness/src/variants.rs crates/harness/src/workload.rs

/root/repo/target/release/deps/libharness-b54f4afad9a01247.rlib: crates/harness/src/lib.rs crates/harness/src/args.rs crates/harness/src/figures.rs crates/harness/src/latency.rs crates/harness/src/report.rs crates/harness/src/sched.rs crates/harness/src/space.rs crates/harness/src/stats.rs crates/harness/src/variants.rs crates/harness/src/workload.rs

/root/repo/target/release/deps/libharness-b54f4afad9a01247.rmeta: crates/harness/src/lib.rs crates/harness/src/args.rs crates/harness/src/figures.rs crates/harness/src/latency.rs crates/harness/src/report.rs crates/harness/src/sched.rs crates/harness/src/space.rs crates/harness/src/stats.rs crates/harness/src/variants.rs crates/harness/src/workload.rs

crates/harness/src/lib.rs:
crates/harness/src/args.rs:
crates/harness/src/figures.rs:
crates/harness/src/latency.rs:
crates/harness/src/report.rs:
crates/harness/src/sched.rs:
crates/harness/src/space.rs:
crates/harness/src/stats.rs:
crates/harness/src/variants.rs:
crates/harness/src/workload.rs:
