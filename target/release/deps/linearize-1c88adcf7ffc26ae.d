/root/repo/target/release/deps/linearize-1c88adcf7ffc26ae.d: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

/root/repo/target/release/deps/liblinearize-1c88adcf7ffc26ae.rlib: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

/root/repo/target/release/deps/liblinearize-1c88adcf7ffc26ae.rmeta: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

crates/linearize/src/lib.rs:
crates/linearize/src/bitset.rs:
crates/linearize/src/checker.rs:
crates/linearize/src/fastq.rs:
crates/linearize/src/history.rs:
crates/linearize/src/model.rs:
