/root/repo/target/release/deps/hazard-e411bdb7139d3949.d: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs

/root/repo/target/release/deps/libhazard-e411bdb7139d3949.rlib: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs

/root/repo/target/release/deps/libhazard-e411bdb7139d3949.rmeta: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs

crates/hazard/src/lib.rs:
crates/hazard/src/domain.rs:
crates/hazard/src/participant.rs:
crates/hazard/src/retired.rs:
