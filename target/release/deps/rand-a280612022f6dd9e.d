/root/repo/target/release/deps/rand-a280612022f6dd9e.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a280612022f6dd9e.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a280612022f6dd9e.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
