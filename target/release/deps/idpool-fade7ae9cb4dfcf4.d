/root/repo/target/release/deps/idpool-fade7ae9cb4dfcf4.d: crates/idpool/src/lib.rs

/root/repo/target/release/deps/libidpool-fade7ae9cb4dfcf4.rlib: crates/idpool/src/lib.rs

/root/repo/target/release/deps/libidpool-fade7ae9cb4dfcf4.rmeta: crates/idpool/src/lib.rs

crates/idpool/src/lib.rs:
