/root/repo/target/release/deps/alloc_track-839583fa9cba6d5f.d: crates/alloc-track/src/lib.rs

/root/repo/target/release/deps/liballoc_track-839583fa9cba6d5f.rlib: crates/alloc-track/src/lib.rs

/root/repo/target/release/deps/liballoc_track-839583fa9cba6d5f.rmeta: crates/alloc-track/src/lib.rs

crates/alloc-track/src/lib.rs:
