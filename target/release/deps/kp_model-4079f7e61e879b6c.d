/root/repo/target/release/deps/kp_model-4079f7e61e879b6c.d: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs

/root/repo/target/release/deps/libkp_model-4079f7e61e879b6c.rlib: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs

/root/repo/target/release/deps/libkp_model-4079f7e61e879b6c.rmeta: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs

crates/kp-model/src/lib.rs:
crates/kp-model/src/explore.rs:
crates/kp-model/src/state.rs:
