/root/repo/target/release/deps/crossbeam_epoch-ac997bc263e76828.d: shims/crossbeam-epoch/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_epoch-ac997bc263e76828.rlib: shims/crossbeam-epoch/src/lib.rs

/root/repo/target/release/deps/libcrossbeam_epoch-ac997bc263e76828.rmeta: shims/crossbeam-epoch/src/lib.rs

shims/crossbeam-epoch/src/lib.rs:
