/root/repo/target/debug/deps/crossbeam_utils-af4cf635a058b0d9.d: shims/crossbeam-utils/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_utils-af4cf635a058b0d9.rlib: shims/crossbeam-utils/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_utils-af4cf635a058b0d9.rmeta: shims/crossbeam-utils/src/lib.rs

shims/crossbeam-utils/src/lib.rs:
