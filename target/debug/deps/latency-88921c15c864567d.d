/root/repo/target/debug/deps/latency-88921c15c864567d.d: crates/harness/src/bin/latency.rs

/root/repo/target/debug/deps/latency-88921c15c864567d: crates/harness/src/bin/latency.rs

crates/harness/src/bin/latency.rs:
