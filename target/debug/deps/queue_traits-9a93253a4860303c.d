/root/repo/target/debug/deps/queue_traits-9a93253a4860303c.d: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

/root/repo/target/debug/deps/queue_traits-9a93253a4860303c: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

crates/queue-traits/src/lib.rs:
crates/queue-traits/src/ext.rs:
crates/queue-traits/src/testing.rs:
