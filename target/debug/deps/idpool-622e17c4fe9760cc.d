/root/repo/target/debug/deps/idpool-622e17c4fe9760cc.d: crates/idpool/src/lib.rs

/root/repo/target/debug/deps/idpool-622e17c4fe9760cc: crates/idpool/src/lib.rs

crates/idpool/src/lib.rs:
