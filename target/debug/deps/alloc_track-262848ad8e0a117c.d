/root/repo/target/debug/deps/alloc_track-262848ad8e0a117c.d: crates/alloc-track/src/lib.rs

/root/repo/target/debug/deps/liballoc_track-262848ad8e0a117c.rlib: crates/alloc-track/src/lib.rs

/root/repo/target/debug/deps/liballoc_track-262848ad8e0a117c.rmeta: crates/alloc-track/src/lib.rs

crates/alloc-track/src/lib.rs:
