/root/repo/target/debug/deps/kp_queue-e1f2aaff9c06ef83.d: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs

/root/repo/target/debug/deps/libkp_queue-e1f2aaff9c06ef83.rlib: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs

/root/repo/target/debug/deps/libkp_queue-e1f2aaff9c06ef83.rmeta: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs

crates/kp-queue/src/lib.rs:
crates/kp-queue/src/config.rs:
crates/kp-queue/src/desc.rs:
crates/kp-queue/src/handle.rs:
crates/kp-queue/src/hp/mod.rs:
crates/kp-queue/src/hp/handle.rs:
crates/kp-queue/src/hp/queue.rs:
crates/kp-queue/src/hp/types.rs:
crates/kp-queue/src/node.rs:
crates/kp-queue/src/queue.rs:
crates/kp-queue/src/stats.rs:
