/root/repo/target/debug/deps/crossbeam_epoch-d2e5b73816bf0c46.d: shims/crossbeam-epoch/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_epoch-d2e5b73816bf0c46.rlib: shims/crossbeam-epoch/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam_epoch-d2e5b73816bf0c46.rmeta: shims/crossbeam-epoch/src/lib.rs

shims/crossbeam-epoch/src/lib.rs:
