/root/repo/target/debug/deps/idpool-3e7c70724925501c.d: crates/idpool/src/lib.rs

/root/repo/target/debug/deps/libidpool-3e7c70724925501c.rlib: crates/idpool/src/lib.rs

/root/repo/target/debug/deps/libidpool-3e7c70724925501c.rmeta: crates/idpool/src/lib.rs

crates/idpool/src/lib.rs:
