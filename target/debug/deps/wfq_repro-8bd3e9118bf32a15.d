/root/repo/target/debug/deps/wfq_repro-8bd3e9118bf32a15.d: src/lib.rs

/root/repo/target/debug/deps/libwfq_repro-8bd3e9118bf32a15.rlib: src/lib.rs

/root/repo/target/debug/deps/libwfq_repro-8bd3e9118bf32a15.rmeta: src/lib.rs

src/lib.rs:
