/root/repo/target/debug/deps/rand-a766c984c102c075.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a766c984c102c075.rlib: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-a766c984c102c075.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
