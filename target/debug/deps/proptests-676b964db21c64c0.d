/root/repo/target/debug/deps/proptests-676b964db21c64c0.d: crates/idpool/tests/proptests.rs

/root/repo/target/debug/deps/proptests-676b964db21c64c0: crates/idpool/tests/proptests.rs

crates/idpool/tests/proptests.rs:
