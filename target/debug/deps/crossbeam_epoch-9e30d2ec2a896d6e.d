/root/repo/target/debug/deps/crossbeam_epoch-9e30d2ec2a896d6e.d: shims/crossbeam-epoch/src/lib.rs

/root/repo/target/debug/deps/crossbeam_epoch-9e30d2ec2a896d6e: shims/crossbeam-epoch/src/lib.rs

shims/crossbeam-epoch/src/lib.rs:
