/root/repo/target/debug/deps/rand-6476b45f7898f748.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/rand-6476b45f7898f748: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
