/root/repo/target/debug/deps/alloc_track-70d79f1e95bfa134.d: crates/alloc-track/src/lib.rs

/root/repo/target/debug/deps/alloc_track-70d79f1e95bfa134: crates/alloc-track/src/lib.rs

crates/alloc-track/src/lib.rs:
