/root/repo/target/debug/deps/linearize-b958b82d6157071b.d: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

/root/repo/target/debug/deps/liblinearize-b958b82d6157071b.rlib: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

/root/repo/target/debug/deps/liblinearize-b958b82d6157071b.rmeta: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

crates/linearize/src/lib.rs:
crates/linearize/src/bitset.rs:
crates/linearize/src/checker.rs:
crates/linearize/src/fastq.rs:
crates/linearize/src/history.rs:
crates/linearize/src/model.rs:
