/root/repo/target/debug/deps/linearize-a5bbf614bfec7043.d: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

/root/repo/target/debug/deps/linearize-a5bbf614bfec7043: crates/linearize/src/lib.rs crates/linearize/src/bitset.rs crates/linearize/src/checker.rs crates/linearize/src/fastq.rs crates/linearize/src/history.rs crates/linearize/src/model.rs

crates/linearize/src/lib.rs:
crates/linearize/src/bitset.rs:
crates/linearize/src/checker.rs:
crates/linearize/src/fastq.rs:
crates/linearize/src/history.rs:
crates/linearize/src/model.rs:
