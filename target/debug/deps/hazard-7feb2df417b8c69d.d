/root/repo/target/debug/deps/hazard-7feb2df417b8c69d.d: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs crates/hazard/src/tests.rs

/root/repo/target/debug/deps/hazard-7feb2df417b8c69d: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs crates/hazard/src/tests.rs

crates/hazard/src/lib.rs:
crates/hazard/src/domain.rs:
crates/hazard/src/participant.rs:
crates/hazard/src/retired.rs:
crates/hazard/src/tests.rs:
