/root/repo/target/debug/deps/kp_queue-362cafaa2b079e4c.d: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/hp/tests.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs crates/kp-queue/src/tests.rs

/root/repo/target/debug/deps/kp_queue-362cafaa2b079e4c: crates/kp-queue/src/lib.rs crates/kp-queue/src/config.rs crates/kp-queue/src/desc.rs crates/kp-queue/src/handle.rs crates/kp-queue/src/hp/mod.rs crates/kp-queue/src/hp/handle.rs crates/kp-queue/src/hp/queue.rs crates/kp-queue/src/hp/types.rs crates/kp-queue/src/hp/tests.rs crates/kp-queue/src/node.rs crates/kp-queue/src/queue.rs crates/kp-queue/src/stats.rs crates/kp-queue/src/tests.rs

crates/kp-queue/src/lib.rs:
crates/kp-queue/src/config.rs:
crates/kp-queue/src/desc.rs:
crates/kp-queue/src/handle.rs:
crates/kp-queue/src/hp/mod.rs:
crates/kp-queue/src/hp/handle.rs:
crates/kp-queue/src/hp/queue.rs:
crates/kp-queue/src/hp/types.rs:
crates/kp-queue/src/hp/tests.rs:
crates/kp-queue/src/node.rs:
crates/kp-queue/src/queue.rs:
crates/kp-queue/src/stats.rs:
crates/kp-queue/src/tests.rs:
