/root/repo/target/debug/deps/fig7-6a991a1185d2cac0.d: crates/harness/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-6a991a1185d2cac0: crates/harness/src/bin/fig7.rs

crates/harness/src/bin/fig7.rs:
