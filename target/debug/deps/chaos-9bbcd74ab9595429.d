/root/repo/target/debug/deps/chaos-9bbcd74ab9595429.d: crates/chaos/src/lib.rs

/root/repo/target/debug/deps/libchaos-9bbcd74ab9595429.rlib: crates/chaos/src/lib.rs

/root/repo/target/debug/deps/libchaos-9bbcd74ab9595429.rmeta: crates/chaos/src/lib.rs

crates/chaos/src/lib.rs:
