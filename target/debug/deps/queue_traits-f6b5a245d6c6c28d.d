/root/repo/target/debug/deps/queue_traits-f6b5a245d6c6c28d.d: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

/root/repo/target/debug/deps/libqueue_traits-f6b5a245d6c6c28d.rlib: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

/root/repo/target/debug/deps/libqueue_traits-f6b5a245d6c6c28d.rmeta: crates/queue-traits/src/lib.rs crates/queue-traits/src/ext.rs crates/queue-traits/src/testing.rs

crates/queue-traits/src/lib.rs:
crates/queue-traits/src/ext.rs:
crates/queue-traits/src/testing.rs:
