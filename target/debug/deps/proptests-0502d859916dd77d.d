/root/repo/target/debug/deps/proptests-0502d859916dd77d.d: crates/linearize/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0502d859916dd77d: crates/linearize/tests/proptests.rs

crates/linearize/tests/proptests.rs:
