/root/repo/target/debug/deps/bench-5fca5442343b3e14.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/bench-5fca5442343b3e14: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
