/root/repo/target/debug/deps/fig9-0c035366d8114291.d: crates/harness/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-0c035366d8114291: crates/harness/src/bin/fig9.rs

crates/harness/src/bin/fig9.rs:
