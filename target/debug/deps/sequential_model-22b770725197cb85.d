/root/repo/target/debug/deps/sequential_model-22b770725197cb85.d: tests/sequential_model.rs

/root/repo/target/debug/deps/sequential_model-22b770725197cb85: tests/sequential_model.rs

tests/sequential_model.rs:
