/root/repo/target/debug/deps/fig8-d53c8129421813e6.d: crates/harness/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-d53c8129421813e6: crates/harness/src/bin/fig8.rs

crates/harness/src/bin/fig8.rs:
