/root/repo/target/debug/deps/necessary_conditions-713e743974753be9.d: tests/necessary_conditions.rs

/root/repo/target/debug/deps/necessary_conditions-713e743974753be9: tests/necessary_conditions.rs

tests/necessary_conditions.rs:
