/root/repo/target/debug/deps/libc-4b898e3df470ad23.d: shims/libc/src/lib.rs

/root/repo/target/debug/deps/libc-4b898e3df470ad23: shims/libc/src/lib.rs

shims/libc/src/lib.rs:
