/root/repo/target/debug/deps/ms_queue-220ed2c8c39bb768.d: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

/root/repo/target/debug/deps/libms_queue-220ed2c8c39bb768.rlib: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

/root/repo/target/debug/deps/libms_queue-220ed2c8c39bb768.rmeta: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

crates/ms-queue/src/lib.rs:
crates/ms-queue/src/baselines.rs:
crates/ms-queue/src/epoch.rs:
crates/ms-queue/src/hp.rs:
