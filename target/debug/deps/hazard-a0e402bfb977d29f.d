/root/repo/target/debug/deps/hazard-a0e402bfb977d29f.d: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs

/root/repo/target/debug/deps/libhazard-a0e402bfb977d29f.rlib: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs

/root/repo/target/debug/deps/libhazard-a0e402bfb977d29f.rmeta: crates/hazard/src/lib.rs crates/hazard/src/domain.rs crates/hazard/src/participant.rs crates/hazard/src/retired.rs

crates/hazard/src/lib.rs:
crates/hazard/src/domain.rs:
crates/hazard/src/participant.rs:
crates/hazard/src/retired.rs:
