/root/repo/target/debug/deps/chaos-a1e8c1a8afa92243.d: crates/chaos/src/lib.rs

/root/repo/target/debug/deps/chaos-a1e8c1a8afa92243: crates/chaos/src/lib.rs

crates/chaos/src/lib.rs:
