/root/repo/target/debug/deps/ms_queue-c3eff5a3e92c3520.d: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

/root/repo/target/debug/deps/ms_queue-c3eff5a3e92c3520: crates/ms-queue/src/lib.rs crates/ms-queue/src/baselines.rs crates/ms-queue/src/epoch.rs crates/ms-queue/src/hp.rs

crates/ms-queue/src/lib.rs:
crates/ms-queue/src/baselines.rs:
crates/ms-queue/src/epoch.rs:
crates/ms-queue/src/hp.rs:
