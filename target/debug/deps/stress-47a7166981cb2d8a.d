/root/repo/target/debug/deps/stress-47a7166981cb2d8a.d: tests/stress.rs

/root/repo/target/debug/deps/stress-47a7166981cb2d8a: tests/stress.rs

tests/stress.rs:
