/root/repo/target/debug/deps/libc-80c3fead4077ce5c.d: shims/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-80c3fead4077ce5c.rlib: shims/libc/src/lib.rs

/root/repo/target/debug/deps/liblibc-80c3fead4077ce5c.rmeta: shims/libc/src/lib.rs

shims/libc/src/lib.rs:
