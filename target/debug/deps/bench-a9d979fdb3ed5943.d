/root/repo/target/debug/deps/bench-a9d979fdb3ed5943.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a9d979fdb3ed5943.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbench-a9d979fdb3ed5943.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
