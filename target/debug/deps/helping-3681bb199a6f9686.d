/root/repo/target/debug/deps/helping-3681bb199a6f9686.d: tests/helping.rs

/root/repo/target/debug/deps/helping-3681bb199a6f9686: tests/helping.rs

tests/helping.rs:
