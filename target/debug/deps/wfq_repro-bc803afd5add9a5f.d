/root/repo/target/debug/deps/wfq_repro-bc803afd5add9a5f.d: src/lib.rs

/root/repo/target/debug/deps/wfq_repro-bc803afd5add9a5f: src/lib.rs

src/lib.rs:
