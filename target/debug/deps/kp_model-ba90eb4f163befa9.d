/root/repo/target/debug/deps/kp_model-ba90eb4f163befa9.d: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs

/root/repo/target/debug/deps/libkp_model-ba90eb4f163befa9.rlib: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs

/root/repo/target/debug/deps/libkp_model-ba90eb4f163befa9.rmeta: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs

crates/kp-model/src/lib.rs:
crates/kp-model/src/explore.rs:
crates/kp-model/src/state.rs:
