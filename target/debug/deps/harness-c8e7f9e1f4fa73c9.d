/root/repo/target/debug/deps/harness-c8e7f9e1f4fa73c9.d: crates/harness/src/lib.rs crates/harness/src/args.rs crates/harness/src/figures.rs crates/harness/src/latency.rs crates/harness/src/report.rs crates/harness/src/sched.rs crates/harness/src/space.rs crates/harness/src/stats.rs crates/harness/src/variants.rs crates/harness/src/workload.rs

/root/repo/target/debug/deps/libharness-c8e7f9e1f4fa73c9.rlib: crates/harness/src/lib.rs crates/harness/src/args.rs crates/harness/src/figures.rs crates/harness/src/latency.rs crates/harness/src/report.rs crates/harness/src/sched.rs crates/harness/src/space.rs crates/harness/src/stats.rs crates/harness/src/variants.rs crates/harness/src/workload.rs

/root/repo/target/debug/deps/libharness-c8e7f9e1f4fa73c9.rmeta: crates/harness/src/lib.rs crates/harness/src/args.rs crates/harness/src/figures.rs crates/harness/src/latency.rs crates/harness/src/report.rs crates/harness/src/sched.rs crates/harness/src/space.rs crates/harness/src/stats.rs crates/harness/src/variants.rs crates/harness/src/workload.rs

crates/harness/src/lib.rs:
crates/harness/src/args.rs:
crates/harness/src/figures.rs:
crates/harness/src/latency.rs:
crates/harness/src/report.rs:
crates/harness/src/sched.rs:
crates/harness/src/space.rs:
crates/harness/src/stats.rs:
crates/harness/src/variants.rs:
crates/harness/src/workload.rs:
