/root/repo/target/debug/deps/fig10-1d6f16171acc2a12.d: crates/harness/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-1d6f16171acc2a12: crates/harness/src/bin/fig10.rs

crates/harness/src/bin/fig10.rs:
