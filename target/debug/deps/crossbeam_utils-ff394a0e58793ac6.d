/root/repo/target/debug/deps/crossbeam_utils-ff394a0e58793ac6.d: shims/crossbeam-utils/src/lib.rs

/root/repo/target/debug/deps/crossbeam_utils-ff394a0e58793ac6: shims/crossbeam-utils/src/lib.rs

shims/crossbeam-utils/src/lib.rs:
