/root/repo/target/debug/deps/linearizability-29855ec2c4f4cc41.d: tests/linearizability.rs

/root/repo/target/debug/deps/linearizability-29855ec2c4f4cc41: tests/linearizability.rs

tests/linearizability.rs:
