/root/repo/target/debug/deps/integration-ff37a914405c4b93.d: crates/hazard/tests/integration.rs

/root/repo/target/debug/deps/integration-ff37a914405c4b93: crates/hazard/tests/integration.rs

crates/hazard/tests/integration.rs:
