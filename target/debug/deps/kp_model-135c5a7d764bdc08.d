/root/repo/target/debug/deps/kp_model-135c5a7d764bdc08.d: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs crates/kp-model/src/tests.rs

/root/repo/target/debug/deps/kp_model-135c5a7d764bdc08: crates/kp-model/src/lib.rs crates/kp-model/src/explore.rs crates/kp-model/src/state.rs crates/kp-model/src/tests.rs

crates/kp-model/src/lib.rs:
crates/kp-model/src/explore.rs:
crates/kp-model/src/state.rs:
crates/kp-model/src/tests.rs:
