/root/repo/target/debug/examples/quickstart-e6a129b0c7e52769.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e6a129b0c7e52769: examples/quickstart.rs

examples/quickstart.rs:
