/root/repo/target/debug/examples/hp_stress_probe-d207f4db5f0f069b.d: crates/kp-queue/examples/hp_stress_probe.rs

/root/repo/target/debug/examples/hp_stress_probe-d207f4db5f0f069b: crates/kp-queue/examples/hp_stress_probe.rs

crates/kp-queue/examples/hp_stress_probe.rs:
