/root/repo/target/debug/examples/dynamic_threads-1c4854af241a201a.d: examples/dynamic_threads.rs

/root/repo/target/debug/examples/dynamic_threads-1c4854af241a201a: examples/dynamic_threads.rs

examples/dynamic_threads.rs:
