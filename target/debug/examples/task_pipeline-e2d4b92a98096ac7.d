/root/repo/target/debug/examples/task_pipeline-e2d4b92a98096ac7.d: examples/task_pipeline.rs

/root/repo/target/debug/examples/task_pipeline-e2d4b92a98096ac7: examples/task_pipeline.rs

examples/task_pipeline.rs:
