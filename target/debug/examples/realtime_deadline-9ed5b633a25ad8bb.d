/root/repo/target/debug/examples/realtime_deadline-9ed5b633a25ad8bb.d: examples/realtime_deadline.rs

/root/repo/target/debug/examples/realtime_deadline-9ed5b633a25ad8bb: examples/realtime_deadline.rs

examples/realtime_deadline.rs:
