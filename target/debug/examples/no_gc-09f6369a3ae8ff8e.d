/root/repo/target/debug/examples/no_gc-09f6369a3ae8ff8e.d: examples/no_gc.rs

/root/repo/target/debug/examples/no_gc-09f6369a3ae8ff8e: examples/no_gc.rs

examples/no_gc.rs:
