//! Offline shim for the `rand` API subset this workspace uses:
//! `SmallRng::seed_from_u64`, `Rng::gen`, and `Rng::gen_range` over
//! primitive integers. The generator is xorshift64* seeded through
//! splitmix64 — deterministic, fast, and unrelated to the real crate's
//! stream (nothing in the workspace depends on the exact stream).

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible from a raw generator via `Rng::gen`.
pub trait Random {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level convenience methods, blanket-implemented for every
/// generator.
pub trait Rng: RngCore {
    fn gen<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Uniform value in `[range.start, range.end)`. Uses the modulo
    /// method; the bias is negligible for the small ranges the
    /// workloads draw from.
    fn gen_range<T>(&mut self, range: std::ops::Range<T>) -> T
    where
        T: Copy + PartialOrd + TryFrom<u64> + Into<u64>,
    {
        let lo: u64 = range.start.into();
        let hi: u64 = range.end.into();
        assert!(lo < hi, "gen_range: empty range");
        let v = lo + self.next_u64() % (hi - lo);
        T::try_from(v).ok().expect("gen_range: value out of range")
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let mut state = splitmix64(&mut s);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn bool_is_not_constant() {
        let mut rng = SmallRng::seed_from_u64(7);
        let draws: Vec<bool> = (0..64).map(|_| rng.gen::<bool>()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
        }
    }
}
