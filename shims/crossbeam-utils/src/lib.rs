//! Offline shim for the `crossbeam-utils` API subset this workspace
//! uses: [`CachePadded`]. See `shims/README.md` for why this exists.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the length of a cache line.
///
/// 128 bytes covers the common cases: x86-64 adjacent-line prefetch
/// pairs and aarch64 (Apple silicon) cache lines.
#[derive(Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Pads and aligns `value` to the length of a cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded").field("value", &self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(t: T) -> Self {
        CachePadded::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_to_128() {
        assert_eq!(core::mem::align_of::<CachePadded<u8>>(), 128);
        let c = CachePadded::new(7u32);
        assert_eq!(*c, 7);
        assert_eq!(c.into_inner(), 7);
    }
}
