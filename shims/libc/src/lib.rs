//! Offline shim for the `libc` API subset this workspace uses: the
//! CPU-affinity types and syscall wrapper needed by
//! `harness::sched::pin_to_core`. Layouts match glibc on Linux.

#![allow(non_camel_case_types, non_snake_case)]

pub type c_int = i32;
pub type pid_t = i32;
pub type size_t = usize;

/// Bits in a `cpu_set_t` (glibc default).
pub const CPU_SETSIZE: c_int = 1024;

const ULONG_BITS: usize = 8 * core::mem::size_of::<u64>();

/// glibc's `cpu_set_t`: a 1024-bit mask stored as an array of
/// unsigned longs (64-bit on every target we build for).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / ULONG_BITS],
}

/// Clears `set`.
pub fn CPU_ZERO(set: &mut cpu_set_t) {
    for word in set.bits.iter_mut() {
        *word = 0;
    }
}

/// Adds `cpu` to `set`. Out-of-range CPUs are ignored, matching the
/// glibc macro's bounds check.
pub fn CPU_SET(cpu: usize, set: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        set.bits[cpu / ULONG_BITS] |= 1 << (cpu % ULONG_BITS);
    }
}

/// True if `cpu` is a member of `set`.
pub fn CPU_ISSET(cpu: usize, set: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && set.bits[cpu / ULONG_BITS] & (1 << (cpu % ULONG_BITS)) != 0
}

#[cfg(target_os = "linux")]
extern "C" {
    /// Direct binding to glibc's `sched_setaffinity`.
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
}

#[cfg(not(target_os = "linux"))]
/// Stub for non-Linux targets: reports success without doing anything.
pub unsafe fn sched_setaffinity(_pid: pid_t, _cpusetsize: size_t, _cpuset: *const cpu_set_t) -> c_int {
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_bits() {
        let mut set: cpu_set_t = unsafe { core::mem::zeroed() };
        CPU_ZERO(&mut set);
        assert!(!CPU_ISSET(3, &set));
        CPU_SET(3, &mut set);
        assert!(CPU_ISSET(3, &set));
        CPU_SET(5000, &mut set); // out of range: ignored
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn setaffinity_links_and_runs() {
        let mut set: cpu_set_t = unsafe { core::mem::zeroed() };
        CPU_ZERO(&mut set);
        CPU_SET(0, &mut set);
        let rc = unsafe { sched_setaffinity(0, core::mem::size_of::<cpu_set_t>(), &set) };
        // Success on most systems; permission errors are still a valid link test.
        assert!(rc == 0 || rc == -1);
    }
}
