//! Offline shim for the `parking_lot` API subset this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`). Backed by `std::sync::Mutex`; a poisoned lock is
//! recovered rather than propagated, matching parking_lot's behavior
//! of not poisoning at all.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poisoned) => MutexGuard { inner: poisoned.into_inner() },
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex underneath");
        })
        .join();
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
    }
}
