//! Offline shim for the tokio API subset this workspace uses: a real
//! (if small) multi-threaded executor behind `runtime::Builder`,
//! `Runtime::block_on`, `tokio::spawn`, awaitable `JoinHandle`s, and
//! `task::yield_now`. No I/O, no timers — the workspace drives the
//! executor with channel wakers only (see shims/README.md).

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

pub mod runtime;
pub mod task;

pub use task::{spawn, JoinError, JoinHandle};

/// The shared half of a runtime: an injector queue the workers (and
/// `block_on`) drain.
struct Scheduler {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
    shutdown: AtomicBool,
}

impl Scheduler {
    fn push(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.available.notify_one();
    }

    /// Blocks until a task is available or shutdown.
    fn pop_blocking(&self) -> Option<Arc<Task>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            q = self.available.wait(q).unwrap();
        }
    }

    fn pop_now(&self) -> Option<Arc<Task>> {
        self.queue.lock().unwrap().pop_front()
    }
}

/// A spawned task: a type-erased future (its output is routed to the
/// `JoinHandle` by the wrapper `spawn` builds around it).
struct Task {
    // `Option` so a completed future is dropped eagerly; the Mutex
    // also serializes polls (a task is only ever queued once thanks to
    // `scheduled`, but wakes race with completion).
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    /// True while the task sits in the injector queue; collapses
    /// redundant wakes into one scheduling.
    scheduled: AtomicBool,
    sched: Arc<Scheduler>,
}

impl Task {
    fn run(self: &Arc<Self>) {
        // Clear `scheduled` before polling: a wake arriving *during*
        // the poll must re-queue the task.
        self.scheduled.store(false, Ordering::Release);
        let waker = Waker::from(Arc::clone(self));
        let mut cx = Context::from_waker(&waker);
        let mut slot = self.future.lock().unwrap();
        if let Some(fut) = slot.as_mut() {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(()) => *slot = None,
                Poll::Pending => {}
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            let sched = Arc::clone(&self.sched);
            sched.push(self);
        }
    }
}

thread_local! {
    /// The runtime the current thread belongs to (worker threads and
    /// threads inside `block_on`); `tokio::spawn` targets it.
    static CURRENT: std::cell::RefCell<Option<Arc<Scheduler>>> =
        const { std::cell::RefCell::new(None) };
}

struct EnterGuard(Option<Arc<Scheduler>>);

fn enter(sched: Arc<Scheduler>) -> EnterGuard {
    let prev = CURRENT.with(|c| c.borrow_mut().replace(sched));
    EnterGuard(prev)
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

fn current_scheduler() -> Arc<Scheduler> {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "there is no reactor running, must be called from the context of a Tokio 1.x runtime",
    )
}

/// Waker for `block_on`'s root future: unparks the blocked thread.
struct ThreadUnparker(std::thread::Thread);

impl Wake for ThreadUnparker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}
