//! `tokio::runtime` subset: `Builder::new_multi_thread()` and
//! `Runtime::block_on`.

use crate::{enter, EnterGuard, Scheduler, ThreadUnparker};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::pin;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};

/// Builds a [`Runtime`]. Only the multi-threaded flavor exists here.
pub struct Builder {
    worker_threads: usize,
    thread_name: String,
}

impl Builder {
    /// A builder for a runtime with a worker-thread pool.
    pub fn new_multi_thread() -> Builder {
        Builder { worker_threads: 2, thread_name: "tokio-worker".to_string() }
    }

    /// Sets the worker pool size (default 2 in this shim).
    pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
        assert!(n >= 1);
        self.worker_threads = n;
        self
    }

    /// Accepted for API compatibility; the shim has no I/O or time
    /// driver to enable.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Sets the worker thread name prefix.
    pub fn thread_name(&mut self, name: impl Into<String>) -> &mut Builder {
        self.thread_name = name.into();
        self
    }

    /// Spawns the worker pool and returns the runtime.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        let sched = Arc::new(Scheduler {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: std::sync::atomic::AtomicBool::new(false),
        });
        let workers = (0..self.worker_threads)
            .map(|i| {
                let sched = Arc::clone(&sched);
                std::thread::Builder::new()
                    .name(format!("{}-{i}", self.thread_name))
                    .spawn(move || {
                        let _ctx = enter(Arc::clone(&sched));
                        while let Some(task) = sched.pop_blocking() {
                            task.run();
                        }
                    })
                    .expect("spawning runtime worker")
            })
            .collect();
        Ok(Runtime { sched, workers })
    }
}

/// A handle to the executor: spawned tasks run on its worker pool
/// until the runtime is dropped.
pub struct Runtime {
    sched: Arc<Scheduler>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// [`Builder::new_multi_thread`] with default settings.
    pub fn new() -> std::io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    /// Runs `future` to completion on the current thread, parking
    /// between polls; tasks it spawns run on the worker pool.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        let _ctx: EnterGuard = enter(Arc::clone(&self.sched));
        let waker = Waker::from(Arc::new(ThreadUnparker(std::thread::current())));
        let mut cx = Context::from_waker(&waker);
        let mut future = pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                // `park` may wake spuriously or from a stale token;
                // the loop simply re-polls.
                Poll::Pending => std::thread::park(),
            }
        }
    }

    /// Spawns a future onto the worker pool from outside async
    /// context.
    pub fn spawn<F>(&self, future: F) -> crate::JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        crate::task::spawn_on(&self.sched, future)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.sched.shutdown.store(true, Ordering::Release);
        self.sched.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Pending tasks (and their futures) are dropped with the
        // queue; their CompletionGuards mark the join handles
        // cancelled.
        while let Some(task) = self.sched.pop_now() {
            let mut slot = task.future.lock().unwrap();
            *slot = None;
        }
    }
}
