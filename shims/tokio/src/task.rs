//! `tokio::task` subset: `spawn`, awaitable `JoinHandle`, `yield_now`.

use crate::{current_scheduler, Scheduler, Task};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

/// Error returned when awaiting a task that can no longer produce a
/// value (its runtime shut down before it completed). The shim never
/// converts panics into `JoinError`; a panicking task aborts the test
/// like any other thread panic.
#[derive(Debug)]
pub struct JoinError(());

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task was cancelled")
    }
}

impl std::error::Error for JoinError {}

struct JoinState<T> {
    result: Mutex<(Option<T>, Option<Waker>, bool)>,
}

/// An owned permission to await a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Whether the task has completed (successfully or by drop).
    pub fn is_finished(&self) -> bool {
        let s = self.state.result.lock().unwrap();
        s.0.is_some() || s.2
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.state.result.lock().unwrap();
        if let Some(v) = s.0.take() {
            return Poll::Ready(Ok(v));
        }
        if s.2 {
            return Poll::Ready(Err(JoinError(())));
        }
        s.1 = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Routes a completed output (or a cancellation) to the join handle.
struct CompletionGuard<T> {
    state: Arc<JoinState<T>>,
    done: bool,
}

impl<T> CompletionGuard<T> {
    fn complete(&mut self, value: T) {
        let waker = {
            let mut s = self.state.result.lock().unwrap();
            s.0 = Some(value);
            s.1.take()
        };
        self.done = true;
        if let Some(w) = waker {
            w.wake();
        }
    }
}

impl<T> Drop for CompletionGuard<T> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        // The future was dropped without completing (runtime shutdown):
        // mark cancelled so a joiner is not left pending forever.
        let waker = {
            let mut s = self.state.result.lock().unwrap();
            s.2 = true;
            s.1.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    }
}

pub(crate) fn spawn_on<F>(sched: &Arc<Scheduler>, future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let state = Arc::new(JoinState { result: Mutex::new((None, None, false)) });
    let mut guard = CompletionGuard { state: Arc::clone(&state), done: false };
    let wrapped = async move {
        let out = future.await;
        guard.complete(out);
    };
    let task = Arc::new(Task {
        future: Mutex::new(Some(Box::pin(wrapped))),
        scheduled: AtomicBool::new(true),
        sched: Arc::clone(sched),
    });
    sched.push(Arc::clone(&task));
    JoinHandle { state }
}

/// Spawns a future onto the current runtime's worker pool. Panics
/// outside a runtime context, like the real tokio.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    spawn_on(&current_scheduler(), future)
}

/// Yields the current task back to the executor once.
pub async fn yield_now() {
    struct YieldNow(bool);
    impl Future for YieldNow {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                return Poll::Ready(());
            }
            self.0 = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
    YieldNow(false).await
}

#[cfg(test)]
mod tests {
    use crate::runtime::Builder;

    #[test]
    fn spawn_and_join() {
        let rt = Builder::new_multi_thread().worker_threads(2).enable_all().build().unwrap();
        let out = rt.block_on(async {
            let a = crate::spawn(async { 20 });
            let b = crate::spawn(async {
                crate::task::yield_now().await;
                22
            });
            a.await.unwrap() + b.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn nested_spawn_and_thread_wakeups() {
        let rt = Builder::new_multi_thread().worker_threads(3).build().unwrap();
        let total: u64 = rt.block_on(async {
            let handles: Vec<_> = (0..16u64)
                .map(|i| {
                    crate::spawn(async move {
                        let inner = crate::spawn(async move { i });
                        inner.await.unwrap() * 2
                    })
                })
                .collect();
            let mut sum = 0;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        assert_eq!(total, (0..16u64).map(|i| i * 2).sum());
    }

    #[test]
    fn runtime_spawn_outside_async() {
        let rt = Builder::new_multi_thread().worker_threads(1).build().unwrap();
        let h = rt.spawn(async { "done" });
        assert_eq!(rt.block_on(h).unwrap(), "done");
    }
}
