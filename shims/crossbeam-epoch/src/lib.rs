//! Offline shim for the `crossbeam-epoch` API subset this workspace
//! uses, backed by a real three-epoch reclamation engine.
//!
//! The scheme is the classic one (Fraser 2004, as used by crossbeam):
//!
//! * A global epoch counter advances when every *pinned* thread has
//!   been observed at the current epoch.
//! * `Guard::defer_destroy` tags garbage with the epoch at retirement;
//!   a retired object may still be reachable by threads pinned at that
//!   epoch or the one before, so it is freed only once the global epoch
//!   has advanced **two** steps past its tag.
//! * Threads keep a small local bag of garbage and migrate it to the
//!   global queue (triggering a collection attempt) when it grows, when
//!   `Guard::flush` is called, or when the thread exits.
//!
//! All epoch bookkeeping uses `SeqCst`; this shim favors obvious
//! correctness over the fenceless fast paths of the real crate.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

// ---------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------

/// A deferred destructor: a type-erased owned pointer plus its drop glue.
struct Deferred {
    ptr: *mut u8,
    drop_fn: unsafe fn(*mut u8),
}

// SAFETY: a Deferred is an owned allocation in transit to the collector;
// ownership moves with the struct.
unsafe impl Send for Deferred {}

impl Deferred {
    unsafe fn execute(self) {
        (self.drop_fn)(self.ptr);
    }
}

unsafe fn drop_box<T>(ptr: *mut u8) {
    drop(Box::from_raw(ptr as *mut T));
}

/// Per-thread pin status: `(epoch << 1) | pinned`, plus a liveness flag
/// so exited threads do not block epoch advancement forever.
struct Slot {
    /// Forgery-proof participant identity: a monotonically increasing
    /// registration sequence number, never reused. Tokens handed out by
    /// [`participant_token`] are this id — NOT the slot's address — so a
    /// token taken from a thread that has since exited (its slot freed,
    /// the allocation possibly recycled for a new participant) can never
    /// match a different live participant in
    /// [`participant_is_pinned`] / [`quarantine_participant`].
    id: usize,
    state: AtomicUsize,
    dead: AtomicUsize,
}

/// Source of [`Slot::id`]s. Starts at 1 so `0` stays the permanent
/// "no participant" sentinel.
static NEXT_PARTICIPANT_ID: AtomicUsize = AtomicUsize::new(1);

struct Global {
    epoch: AtomicUsize,
    registry: Mutex<Vec<Arc<Slot>>>,
    /// Garbage tagged with its retirement epoch.
    garbage: Mutex<Vec<(usize, Deferred)>>,
}

fn global() -> &'static Global {
    static GLOBAL: OnceLock<Global> = OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(2),
        registry: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

/// Tries to advance the global epoch once, then frees every piece of
/// garbage whose tag is at least two epochs old.
///
/// Best-effort by design: if another thread is already collecting, this
/// call returns immediately instead of queueing on the lock. Blocking
/// here would turn the hot-path "nudge" callers (`RetireCache`'s
/// maturity check calls [`advance`] once per failed pop) into a lock
/// convoy whenever the collector is descheduled mid-scan — on an
/// oversubscribed host that costs more than the allocations the nudge
/// exists to avoid. Skipping is always safe: garbage just waits for the
/// next call.
fn collect() {
    let g = global();
    let Ok(mut garbage) = g.garbage.try_lock() else {
        return;
    };
    let epoch = g.epoch.load(Ordering::SeqCst);
    let can_advance = {
        let mut registry = g.registry.lock().unwrap();
        registry.retain(|slot| slot.dead.load(Ordering::SeqCst) == 0 || Arc::strong_count(slot) > 1);
        registry.iter().all(|slot| {
            let s = slot.state.load(Ordering::SeqCst);
            s & 1 == 0 || s >> 1 == epoch
        })
    };
    let epoch = if can_advance {
        // CAS, not a store: a racing [`advance`] (which does not take
        // the garbage lock) may already have moved the epoch further; a
        // blind store would roll it back. On failure, free against the
        // older epoch we validated — strictly conservative.
        let _ = g.epoch.compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst);
        epoch + 1
    } else {
        epoch
    };
    let mut i = 0;
    while i < garbage.len() {
        if garbage[i].0 + 2 <= epoch {
            let (_, d) = garbage.swap_remove(i);
            // SAFETY: no thread pinned at the retirement epoch (or the
            // one before) is still active, so nothing can reach `d`.
            unsafe { d.execute() };
        } else {
            i += 1;
        }
    }
}

/// The current global epoch (starts at 2; see [`advance`]).
///
/// Exposed so callers running their own retire caches (e.g. kp-queue's
/// node recycling) can apply the *same* maturity rule `collect` uses
/// before freeing: an object retired at epoch `e` is unreachable by
/// every pinned thread once `e + 2 <= global_epoch()`.
pub fn global_epoch() -> usize {
    global().epoch.load(Ordering::SeqCst)
}

/// Tries to advance the global epoch by one step (it advances only if
/// every currently pinned thread is pinned at the current epoch).
/// Alloc-free; safe to call while pinned — a thread pinned at epoch `p`
/// only ever blocks advancement beyond `p + 1`, never the step this
/// call attempts.
///
/// Deliberately does NOT sweep the garbage list: callers like
/// `RetireCache::pop_mature` nudge this on their hot path purely to
/// ripen their own caches, and paying an O(garbage) sweep per nudge
/// turned the reuse fast path into the slowest configuration on an
/// oversubscribed host. Sweeping stays with [`collect`] (guard drop
/// every `LOCAL_BAG_FLUSH` retirements, explicit `flush`, thread exit).
/// Best-effort: if the registry is contended, returns without
/// advancing.
pub fn advance() {
    let g = global();
    let Ok(registry) = g.registry.try_lock() else {
        return;
    };
    let epoch = g.epoch.load(Ordering::SeqCst);
    let can_advance = registry.iter().all(|slot| {
        let s = slot.state.load(Ordering::SeqCst);
        s & 1 == 0 || s >> 1 == epoch
    });
    if can_advance {
        // CAS so racing advancers cannot double-bump or roll back.
        let _ = g.epoch.compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------
// Thread-local participant
// ---------------------------------------------------------------------

const LOCAL_BAG_FLUSH: usize = 64;

struct Local {
    slot: Arc<Slot>,
    guard_count: Cell<usize>,
    bag: RefCell<Vec<(usize, Deferred)>>,
}

impl Local {
    fn new() -> Local {
        let slot = Arc::new(Slot {
            id: NEXT_PARTICIPANT_ID.fetch_add(1, Ordering::Relaxed),
            state: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
        });
        global().registry.lock().unwrap().push(slot.clone());
        Local { slot, guard_count: Cell::new(0), bag: RefCell::new(Vec::new()) }
    }

    fn flush_bag(&self) {
        let mut bag = self.bag.borrow_mut();
        if !bag.is_empty() {
            global().garbage.lock().unwrap().extend(bag.drain(..));
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush_bag();
        self.slot.state.store(0, Ordering::SeqCst);
        self.slot.dead.store(1, Ordering::SeqCst);
        collect();
    }
}

thread_local! {
    static LOCAL: Local = Local::new();
}

// ---------------------------------------------------------------------
// Participant introspection and quarantine
// ---------------------------------------------------------------------

/// An opaque token identifying the calling thread's epoch participant
/// (its registry slot's registration sequence id). Stable for the
/// lifetime of the thread; `0` is never a valid token. Returns `0` when
/// thread-local storage is being torn down.
///
/// Tokens exist so an external liveness layer (kp-queue's handle
/// reaper) can later pass a dead thread's token to
/// [`quarantine_participant`]. Ids are never reused, so a token that
/// outlives its thread can only ever fail to match — it cannot be
/// forged onto an unrelated participant the way a recycled slot
/// address could.
pub fn participant_token() -> usize {
    LOCAL.try_with(|local| local.slot.id).unwrap_or(0)
}

/// True when the participant behind `token` is currently registered and
/// pinned. Advisory (the state may change immediately after the load);
/// used to decide whether a suspected-dead participant is actually
/// wedging epoch advancement before resorting to
/// [`quarantine_participant`].
pub fn participant_is_pinned(token: usize) -> bool {
    if token == 0 {
        return false;
    }
    let g = global();
    let registry = match g.registry.lock() {
        Ok(r) => r,
        Err(poisoned) => poisoned.into_inner(),
    };
    registry
        .iter()
        .any(|slot| slot.id == token && slot.state.load(Ordering::SeqCst) & 1 == 1)
}

/// Forcibly marks the participant behind `token` unpinned and dead, so
/// the global epoch can advance past it and its wedged garbage becomes
/// collectible. Returns `true` when a matching participant was found.
///
/// This exists for *abandoned* participants: a thread that leaked a
/// [`Guard`] and then died (or is permanently wedged) stays pinned at a
/// stale epoch forever, blocking reclamation globally. Normal thread
/// exit self-cleans (the thread-local participant's drop does exactly
/// what this function does); quarantine is the escape hatch for threads
/// that never run destructors.
///
/// # Safety
///
/// The thread behind `token` must never again create, drop, or use an
/// epoch [`Guard`] (it has exited, or is permanently wedged and will
/// never resume). If it is alive and pinned, erasing its pin lets the
/// collector free memory it may still dereference — use-after-free.
pub unsafe fn quarantine_participant(token: usize) -> bool {
    if token == 0 {
        return false;
    }
    let g = global();
    let found = {
        let registry = match g.registry.lock() {
            Ok(r) => r,
            Err(poisoned) => poisoned.into_inner(),
        };
        let mut found = false;
        for slot in registry.iter() {
            if slot.id == token {
                slot.state.store(0, Ordering::SeqCst);
                slot.dead.store(1, Ordering::SeqCst);
                found = true;
                break;
            }
        }
        found
    };
    if found {
        collect();
    }
    found
}

// ---------------------------------------------------------------------
// Guard and pinning
// ---------------------------------------------------------------------

/// A pinned-epoch witness. While a thread holds at least one `Guard`,
/// memory it can reach through [`Atomic`] loads will not be freed.
pub struct Guard {
    unprotected: bool,
}

/// Pins the current thread and returns a guard.
pub fn pin() -> Guard {
    LOCAL.with(|local| {
        let count = local.guard_count.get();
        if count == 0 {
            let g = global();
            loop {
                let epoch = g.epoch.load(Ordering::SeqCst);
                local.slot.state.store((epoch << 1) | 1, Ordering::SeqCst);
                // Re-check so we never stay pinned at a stale epoch,
                // which would stall advancement (not a safety issue,
                // but a progress one).
                if g.epoch.load(Ordering::SeqCst) == epoch {
                    break;
                }
            }
        }
        local.guard_count.set(count + 1);
    });
    Guard { unprotected: false }
}

/// Returns a guard that performs no pinning and destroys deferred
/// garbage immediately.
///
/// # Safety
///
/// The caller must guarantee no other thread is concurrently accessing
/// the data structure (e.g. inside `Drop` of the owning structure).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard { unprotected: true };
    &UNPROTECTED
}

impl Guard {
    /// Defers destruction of the object `ptr` points to until no pinned
    /// thread can still reach it.
    ///
    /// # Safety
    ///
    /// `ptr` must be an owned, unlinked allocation created by
    /// [`Owned::new`]; no new references to it may be created after
    /// this call.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        debug_assert!(!ptr.is_null(), "defer_destroy on null");
        let deferred =
            Deferred { ptr: ptr.raw as *mut u8, drop_fn: drop_box::<T> };
        if self.unprotected {
            deferred.execute();
            return;
        }
        let epoch = global().epoch.load(Ordering::SeqCst);
        let mut pending = Some(deferred);
        let flush = LOCAL
            .try_with(|local| {
                let mut bag = local.bag.borrow_mut();
                bag.push((epoch, pending.take().expect("deferred consumed twice")));
                bag.len() >= LOCAL_BAG_FLUSH
            })
            .unwrap_or(false);
        if let Some(d) = pending {
            // Thread-local storage is being torn down: hand the garbage
            // straight to the collector.
            global().garbage.lock().unwrap().push((epoch, d));
        }
        if flush {
            self.flush();
        }
    }

    /// Migrates this thread's local garbage to the global queue and
    /// attempts a collection.
    pub fn flush(&self) {
        if self.unprotected {
            collect();
            return;
        }
        let _ = LOCAL.try_with(|local| local.flush_bag());
        collect();
    }

    /// Unpins and immediately re-pins the thread, allowing the global
    /// epoch to make progress across long-running pinned sections.
    pub fn repin(&mut self) {
        if self.unprotected {
            return;
        }
        LOCAL.with(|local| {
            if local.guard_count.get() == 1 {
                let g = global();
                loop {
                    let epoch = g.epoch.load(Ordering::SeqCst);
                    local.slot.state.store((epoch << 1) | 1, Ordering::SeqCst);
                    if g.epoch.load(Ordering::SeqCst) == epoch {
                        break;
                    }
                }
            }
        });
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.unprotected {
            return;
        }
        let _ = LOCAL.try_with(|local| {
            let count = local.guard_count.get();
            local.guard_count.set(count - 1);
            if count == 1 {
                local.slot.state.store(0, Ordering::SeqCst);
                if local.bag.borrow().len() >= LOCAL_BAG_FLUSH {
                    local.flush_bag();
                    collect();
                }
            }
        });
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Guard")
    }
}

// ---------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------

/// An owned heap allocation that can be published into an [`Atomic`].
pub struct Owned<T> {
    raw: *mut T,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Owned<T> {
        Owned { raw: Box::into_raw(Box::new(value)) }
    }

    /// Converts into a [`Shared`] tied to `_guard`'s lifetime,
    /// relinquishing ownership to the data structure.
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let raw = self.raw;
        std::mem::forget(self);
        Shared { raw, _marker: PhantomData }
    }

    /// Consumes the owned pointer, returning the boxed value.
    pub fn into_box(self) -> Box<T> {
        let raw = self.raw;
        std::mem::forget(self);
        // SAFETY: `raw` came from Box::into_raw and is still owned.
        unsafe { Box::from_raw(raw) }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: `raw` is a live owned allocation.
        unsafe { &*self.raw }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: still owned; dropping frees the allocation.
        unsafe { drop(Box::from_raw(self.raw)) };
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Owned").field(&**self).finish()
    }
}

/// A pointer valid for the lifetime of a [`Guard`] borrow.
pub struct Shared<'g, T> {
    raw: *const T,
    _marker: PhantomData<&'g T>,
}

impl<'g, T> Clone for Shared<'g, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'g, T> Copy for Shared<'g, T> {}

impl<'g, T> PartialEq for Shared<'g, T> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.raw, other.raw)
    }
}

impl<'g, T> Eq for Shared<'g, T> {}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Shared<'g, T> {
        Shared { raw: std::ptr::null(), _marker: PhantomData }
    }

    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// The raw pointer value.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and point to a live object
    /// protected by the guard this `Shared` borrows.
    pub unsafe fn deref(&self) -> &'g T {
        &*self.raw
    }

    /// Same as [`deref`](Self::deref) but returns `None` for null.
    ///
    /// # Safety
    ///
    /// As for [`deref`](Self::deref).
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        self.raw.as_ref()
    }

    /// Reclaims ownership of the allocation.
    ///
    /// # Safety
    ///
    /// The caller must be the unique owner (typically during `Drop` of
    /// the data structure, under [`unprotected`]).
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null");
        Owned { raw: self.raw as *mut T }
    }
}

impl<'g, T> From<*const T> for Shared<'g, T> {
    fn from(raw: *const T) -> Self {
        Shared { raw, _marker: PhantomData }
    }
}

impl<'g, T> fmt::Debug for Shared<'g, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Shared").field(&self.raw).finish()
    }
}

/// Types that can be published into an [`Atomic`]: [`Owned`] and
/// [`Shared`].
pub trait Pointer<T> {
    fn into_ptr(self) -> *mut T;
    /// # Safety
    /// `raw` must carry whatever ownership the original pointer had.
    unsafe fn from_ptr(raw: *mut T) -> Self;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let raw = self.raw;
        std::mem::forget(self);
        raw
    }

    unsafe fn from_ptr(raw: *mut T) -> Self {
        Owned { raw }
    }
}

impl<'g, T> Pointer<T> for Shared<'g, T> {
    fn into_ptr(self) -> *mut T {
        self.raw as *mut T
    }

    unsafe fn from_ptr(raw: *mut T) -> Self {
        Shared { raw, _marker: PhantomData }
    }
}

/// Error returned by a failed [`Atomic::compare_exchange`].
pub struct CompareExchangeError<'g, T, P: Pointer<T>> {
    /// The value the atomic actually held.
    pub current: Shared<'g, T>,
    /// The proposed value, handed back to the caller.
    pub new: P,
}

// ---------------------------------------------------------------------
// Atomic
// ---------------------------------------------------------------------

/// An atomic pointer into epoch-protected memory.
pub struct Atomic<T> {
    inner: AtomicPtr<T>,
}

unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null pointer.
    pub fn null() -> Atomic<T> {
        Atomic { inner: AtomicPtr::new(std::ptr::null_mut()) }
    }

    /// Allocates `value` and stores a pointer to it.
    pub fn new(value: T) -> Atomic<T> {
        Atomic { inner: AtomicPtr::new(Box::into_raw(Box::new(value))) }
    }

    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { raw: self.inner.load(ord), _marker: PhantomData }
    }

    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.inner.store(new.into_ptr(), ord);
    }

    pub fn swap<'g, P: Pointer<T>>(&self, new: P, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared { raw: self.inner.swap(new.into_ptr(), ord), _marker: PhantomData }
    }

    pub fn compare_exchange<'g, P: Pointer<T>>(
        &self,
        current: Shared<'_, T>,
        new: P,
        success: Ordering,
        failure: Ordering,
        _guard: &'g Guard,
    ) -> Result<Shared<'g, T>, CompareExchangeError<'g, T, P>> {
        let new_ptr = new.into_ptr();
        match self.inner.compare_exchange(current.raw as *mut T, new_ptr, success, failure) {
            Ok(prev) => Ok(Shared { raw: prev, _marker: PhantomData }),
            Err(actual) => Err(CompareExchangeError {
                current: Shared { raw: actual, _marker: PhantomData },
                // SAFETY: the CAS failed, so ownership of `new` never
                // transferred; reconstituting it returns that ownership.
                new: unsafe { P::from_ptr(new_ptr) },
            }),
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Atomic::null()
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Atomic").field(&self.inner.load(Ordering::Relaxed)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc as StdArc;

    struct CountsDrops(StdArc<AtomicUsize>);
    impl Drop for CountsDrops {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn unprotected_defer_is_immediate() {
        let drops = StdArc::new(AtomicUsize::new(0));
        let a = Atomic::new(CountsDrops(drops.clone()));
        let guard = unsafe { unprotected() };
        let s = a.load(Ordering::SeqCst, guard);
        unsafe { guard.defer_destroy(s) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_defer_waits_for_epochs() {
        let drops = StdArc::new(AtomicUsize::new(0));
        let a = Atomic::new(CountsDrops(drops.clone()));
        {
            let guard = pin();
            let s = a.load(Ordering::SeqCst, &guard);
            unsafe { guard.defer_destroy(s) };
            a.store(Shared::null(), Ordering::SeqCst);
        }
        // Repeated pin+flush cycles let the epoch advance and the
        // garbage drain. Generously bounded: a concurrent test may hold
        // the epoch back transiently.
        for _ in 0..10_000 {
            if drops.load(Ordering::SeqCst) == 1 {
                break;
            }
            pin().flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn quarantine_unwedges_a_leaked_pin() {
        // A thread leaks a Guard and parks forever: it stays pinned at
        // its entry epoch, so the global epoch can never advance more
        // than one step past it. Quarantining the participant removes
        // the wedge.
        let (tx, rx) = std::sync::mpsc::channel();
        let (park_tx, park_rx) = std::sync::mpsc::channel::<()>();
        // Detached on purpose: the thread models one that never exits
        // (its TLS destructors never run while the test observes it).
        std::thread::spawn(move || {
            std::mem::forget(pin()); // leaked guard: pinned forever
            tx.send(participant_token()).unwrap();
            let _ = park_rx.recv(); // blocks until the test ends
        });
        let token = rx.recv().unwrap();
        assert!(token != 0);
        assert!(participant_is_pinned(token));
        let wedge_epoch = global_epoch();
        for _ in 0..64 {
            advance();
        }
        assert!(
            global_epoch() <= wedge_epoch + 1,
            "a participant pinned at epoch e blocks advancement beyond e+1"
        );
        // SAFETY: the victim thread is parked on a channel the test
        // never signals; it will never touch an epoch guard again.
        assert!(unsafe { quarantine_participant(token) });
        assert!(!participant_is_pinned(token));
        let mut unwedged = false;
        for _ in 0..10_000 {
            advance();
            if global_epoch() > wedge_epoch + 1 {
                unwedged = true;
                break;
            }
        }
        assert!(unwedged, "epoch advances once the wedge is quarantined");
        assert!(
            !unsafe { quarantine_participant(0) },
            "token 0 is never valid"
        );
        drop(park_tx);
    }

    #[test]
    fn stale_token_never_matches_a_new_participant() {
        // Regression: tokens used to be raw Arc addresses of registry
        // slots, so a dead thread's freed slot could be reallocated at
        // the same address for a new thread and the stale token would
        // then name — and quarantine — a live participant. With ids the
        // stale token must simply stop matching anything.
        let stale = std::thread::spawn(|| {
            pin(); // register, then exit cleanly (slot marked dead)
            participant_token()
        })
        .join()
        .unwrap();
        assert!(stale != 0);
        // Churn new participants so a freed slot allocation would get
        // recycled if addresses were still the identity.
        for _ in 0..64 {
            let fresh = std::thread::spawn(move || {
                std::mem::forget(pin()); // stays registered and pinned
                let token = participant_token();
                assert!(token != stale, "participant ids are never reused");
                token
            })
            .join()
            .unwrap();
            assert!(
                !participant_is_pinned(stale),
                "a dead thread's token matches a live pinned participant"
            );
            // SAFETY: the fresh thread has exited; its leaked pin is
            // exactly what quarantine exists to clear.
            unsafe { quarantine_participant(fresh) };
        }
        // Quarantining the stale token is harmless whether or not the
        // dead slot is still registered — it can only re-mark a slot
        // that is already dead, never a live participant.
        unsafe { quarantine_participant(stale) };
        assert!(!participant_is_pinned(stale));
    }

    #[test]
    fn cas_failure_returns_ownership() {
        let drops = StdArc::new(AtomicUsize::new(0));
        let a = Atomic::new(CountsDrops(drops.clone()));
        let guard = pin();
        let stale = Shared::null();
        let res = a.compare_exchange(
            stale,
            Owned::new(CountsDrops(drops.clone())),
            Ordering::SeqCst,
            Ordering::SeqCst,
            &guard,
        );
        let err = match res {
            Err(e) => e,
            Ok(_) => panic!("CAS against wrong expected value must fail"),
        };
        assert!(!err.current.is_null());
        drop(err); // dropping the error frees the proposed Owned
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_churn_is_safe() {
        let a = StdArc::new(Atomic::new(0u64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    let guard = pin();
                    let cur = a.load(Ordering::SeqCst, &guard);
                    let next = Owned::new(t * 1_000_000 + i);
                    if a.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst, &guard).is_ok()
                        && !cur.is_null()
                    {
                        unsafe { guard.defer_destroy(cur) };
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let guard = unsafe { unprotected() };
        let last = a.load(Ordering::SeqCst, guard);
        if !last.is_null() {
            unsafe { guard.defer_destroy(last) };
        }
        for _ in 0..8 {
            pin().flush();
        }
    }
}
