//! Offline shim for the `proptest` API subset this workspace uses: the
//! `proptest!` macro, `Strategy` with `prop_map`, weighted/unweighted
//! `prop_oneof!`, `Just`, `any::<bool>()`, `any::<sample::Index>()`,
//! `collection::vec`, `prop_assert*`/`prop_assume`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! corpus: cases are generated from a deterministic per-case seed, and
//! a failing case reports its case number and seed so it can be
//! re-examined by rerunning the (deterministic) test.

use std::ops::Range;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator handed to strategies (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------
// Core strategy trait
// ---------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe generation, blanket-implemented for every strategy.
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub type BoxedStrategy<V> = Box<dyn DynStrategy<V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted choice among type-erased strategies (see `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum exceeded")
    }
}

// ---------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------

/// Types with a canonical strategy, reachable via [`any`].
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// collection / sample modules
// ---------------------------------------------------------------------

pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive length bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements
    /// come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A position independent of any particular collection length;
    /// resolved against one with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        numerator: u64,
    }

    impl Index {
        /// Maps this abstract index onto `0..len`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.numerator % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index { numerator: rng.next_u64() }
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (`cases` is the only knob this shim honors).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drives `case` until `config.cases` cases pass, panicking on the
/// first failure. Called by the expansion of `proptest!`.
pub fn run_cases<F>(config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let seed = 0xC0DE_F00D_u64.wrapping_mul(attempt.wrapping_add(1));
        let mut rng = TestRng::from_seed(seed);
        attempt += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                let cap = 256 + 64 * config.cases as u64;
                assert!(
                    rejected <= cap,
                    "proptest shim: too many rejected cases ({rejected}); \
                     loosen the prop_assume! conditions"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property failed at case #{attempt} (seed {seed:#x}): {msg}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategies = ($($strat,)*);
            $crate::run_cases(&__config, |__rng| {
                #[allow(unused_variables, unused_mut)]
                let ($($arg,)*) = $crate::Strategy::generate(&__strategies, __rng);
                let __outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                __outcome
            });
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::reject(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = ($left, $right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = ($left, $right);
        if __l == __r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Copy, Debug, PartialEq)]
    enum Step {
        A,
        B(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..10, 2..6), w in prop::collection::vec(0u8..10, 4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5, "len {}", v.len());
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn oneof_weights_and_map(s in prop_oneof![3 => Just(Step::A), 2 => (0u64..9).prop_map(Step::B)]) {
            match s {
                Step::A => {}
                Step::B(n) => prop_assert!(n < 9),
            }
        }

        #[test]
        fn index_resolves(i in any::<prop::sample::Index>(), b in any::<bool>()) {
            let v = [10, 20, 30];
            let k = i.index(v.len());
            prop_assert!(k < v.len());
            let _ = b;
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics() {
        crate::run_cases(&ProptestConfig::with_cases(4), |rng| {
            let x = rng.next_u64();
            let _ = x;
            Err(TestCaseError::fail("forced"))
        });
    }
}
