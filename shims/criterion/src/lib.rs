//! Offline shim for the `criterion` API subset this workspace uses.
//!
//! Semantics: each `bench_function`/`bench_with_input` call runs a
//! short warm-up, then a fixed number of timed batches, and prints the
//! mean time per iteration to stdout. There is no statistical analysis,
//! HTML report, or baseline comparison — the figure binaries under
//! `crates/harness` are the reproduction's real measurement path; these
//! benches exist for quick relative spot checks.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level bench context, handed to each target by `criterion_main!`.
pub struct Criterion {
    /// Substring filter taken from argv (same UX as the real crate:
    /// `cargo bench -- <filter>`).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.label()
        } else {
            format!("{}/{}", self.name, id.label())
        };
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        };
        f(&mut b);
        let per_iter = if b.iters > 0 {
            b.total / (b.iters as u32).max(1)
        } else {
            Duration::ZERO
        };
        println!("{full:<60} {:>12.3?}/iter ({} iters)", per_iter, b.iters);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Selects units for throughput reporting (accepted, ignored).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Runs and times the measured closure.
pub struct Bencher {
    total: Duration,
    iters: u64,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over batches until the measurement budget is spent.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, and calibrate a batch size that keeps timer overhead
        // negligible.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            black_box(f());
            warm_iters += 1;
        }
        let batch = (warm_iters / 10).max(1);
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.total += start.elapsed();
            self.iters += batch;
        }
    }

    /// Hands the iteration count to `f`, which returns the measured
    /// duration (used by workloads that manage their own timing).
    pub fn iter_custom<F>(&mut self, mut f: F)
    where
        F: FnMut(u64) -> Duration,
    {
        let n = self.sample_size as u64;
        self.total += f(n);
        self.iters += n;
    }
}

/// A benchmark name, optionally parameterized.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if !self.function.is_empty() => format!("{}/{}", self.function, p),
            Some(p) => p.clone(),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { function: s.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { function: s, parameter: None }
    }
}

impl fmt::Debug for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn iter_custom_accumulates() {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
            warm_up_time: Duration::ZERO,
            measurement_time: Duration::ZERO,
            sample_size: 7,
        };
        b.iter_custom(Duration::from_nanos);
        assert_eq!(b.iters, 7);
        assert_eq!(b.total, Duration::from_nanos(7));
    }
}
