//! Chaos torture suite: deterministic fault injection against the
//! wait-free queue. Compiled only with `--features chaos`, which turns
//! the `inject!` sites inside kp-queue/idpool/hazard into calls into the
//! `chaos` crate.
//!
//! Three classes of schedule are forced here that no friendly OS
//! scheduler produces on its own:
//!
//! * **Thread crashes mid-operation** (`Action::Kill` unwinds a
//!   [`chaos::ChaosKill`] out of the operation at a named atomic step).
//!   The paper's §3.3 exit discussion requires the survivors to finish
//!   the dead thread's operation and its virtual ID to be reusable.
//! * **Stalled helpers** (`Action::Stall` parks a thread between two
//!   atomic steps) — the schedules the helping protocol and Michael's
//!   hazard-pointer validate loop exist to survive.
//! * **Yield storms** scrambling every interleaving in between.
//!
//! Each test also feeds the wait-freedom watchdog: `chaos` counts the
//! instrumented shared-memory steps of every completed operation, and
//! [`chaos::Report::assert_linear_bound`] checks the worst case stayed
//! within a budget linear in the thread count (the paper's O(n) claim,
//! checked empirically — valid for the `Cyclic{chunk}` helping policy
//! used below; `ScanAll` would be O(n²)).

#![cfg(feature = "chaos")]

use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex, Once};

use std::time::Duration;

use chaos::{ChaosKill, FaultPlan, ThreadSel};
use kp_channel::{
    Channel, ChannelConfig, HealthState, OverloadConfig, RecvTimeoutError, SendTimeoutError,
};
use kp_queue::{Config, ConcurrentQueue, WfQueue, WfQueueHp};
use linearize::{check, History, Outcome, QueueModel, QueueOp, Recorder};
use queue_traits::{testing, QueueHandle};
use wcq::{Config as WcqConfig, WcQueue};

/// Planned kills unwind as panics; silence their default backtrace spam
/// (real panics still print). Installed once per test binary.
fn quiet_chaos_kills() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosKill>().is_none() {
                default(info);
            }
        }));
    });
}

/// Checks consumer batches against what the producers actually attempted
/// (in enqueue order, tagged `p * per + i`): nothing invented, nothing
/// duplicated, per-producer FIFO within each batch, and at most
/// `allowed_missing` values unaccounted for (a killed dequeuer's exit
/// cleanup consumes-and-discards at most one value per kill).
fn verify_consumed(
    batches: &[Vec<u64>],
    attempted: &[Vec<u64>],
    per: usize,
    allowed_missing: usize,
) {
    let mut live: HashSet<u64> = HashSet::new();
    for a in attempted {
        live.extend(a.iter().copied());
    }
    let mut seen: HashSet<u64> = HashSet::new();
    for batch in batches {
        let mut last = vec![None::<u64>; attempted.len()];
        for &v in batch {
            assert!(live.contains(&v), "invented value {v}");
            assert!(seen.insert(v), "value {v} dequeued twice");
            let p = (v as usize) / per;
            if let Some(prev) = last[p] {
                assert!(
                    prev < v,
                    "per-producer FIFO violated: {prev} before {v} (producer {p})"
                );
            }
            last[p] = Some(v);
        }
    }
    let missing = live.len() - seen.len();
    assert!(
        missing <= allowed_missing,
        "{missing} values unaccounted for (at most {allowed_missing} allowed)"
    );
}

/// One crash-torture round, shared by the epoch and hazard-pointer
/// variants (`$queue` constructs the queue, `$kill_site` names the
/// instrumented step the victim dies at).
///
/// Four threads take roles by virtual ID: tids 1 and 2 produce, tids 0
/// and 3 consume; the plan kills tid 0 at `$kill_site`. Survivors must
/// finish every operation, the ledger must balance (minus at most one
/// value the victim's exit cleanup discarded), the victim's virtual ID
/// must be re-acquirable, and the watchdog budget must hold.
macro_rules! kill_torture_round {
    ($queue:expr, $kill_site:literal, $kill_victim:expr, $allow_missing_per_kill:expr) => {
        kill_torture_round!(
            $queue,
            $kill_site,
            $kill_victim,
            $allow_missing_per_kill,
            per = testing::scaled(3_000)
        )
    };
    ($queue:expr, $kill_site:literal, $kill_victim:expr, $allow_missing_per_kill:expr,
     per = $per:expr) => {{
        quiet_chaos_kills();
        const N: usize = 4;
        let per = $per;
        let session = chaos::install(
            FaultPlan::new()
                .kill($kill_site, ThreadSel::Id($kill_victim), 2)
                .with_storm(9, 1),
        );
        let q = $queue;
        // Values survive the victim's panic: consumers push each dequeued
        // value into a shared sink immediately, producers record each
        // value just before attempting its enqueue.
        let sinks: Vec<Mutex<Vec<u64>>> = (0..N).map(|_| Mutex::new(Vec::new())).collect();
        let attempted: Vec<Mutex<Vec<u64>>> = (0..2).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(N);
        let mut kill_count = 0usize;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|_| {
                    let q = &q;
                    let sinks = &sinks;
                    let attempted = &attempted;
                    let barrier = &barrier;
                    s.spawn(move || {
                        let mut h = q.register().expect("register");
                        let tid = h.tid();
                        let _token = chaos::register_thread(tid);
                        barrier.wait();
                        match tid {
                            1 | 2 => {
                                let p = tid - 1;
                                for i in 0..per {
                                    let v = (p * per + i) as u64;
                                    attempted[p].lock().unwrap().push(v);
                                    h.enqueue(v);
                                }
                            }
                            _ => {
                                for _ in 0..3 * per {
                                    if let Some(v) = h.dequeue() {
                                        sinks[tid].lock().unwrap().push(v);
                                    } else {
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(e) = h.join() {
                    let kill = e
                        .downcast_ref::<ChaosKill>()
                        .expect("only the planned kill may escape a worker");
                    assert_eq!(kill.thread, $kill_victim, "kill hit the planned victim");
                    assert_eq!(kill.site, $kill_site);
                    kill_count += 1;
                }
            }
        });
        let report = session.report();
        assert_eq!(kill_count, 1, "exactly one planned death");
        assert_eq!(report.kills, 1);

        // §3.3 long-lived renaming: the victim's virtual ID (and, for the
        // HP variant, its hazard record) must be reclaimable — all N
        // slots acquirable at once after the crash.
        let mut survivors: Vec<_> = (0..N)
            .map(|_| q.register().expect("every slot reclaimable after a crash"))
            .collect();
        let mut drain = Vec::new();
        while let Some(v) = survivors[0].dequeue() {
            drain.push(v);
        }
        drop(survivors);

        let mut batches: Vec<Vec<u64>> = sinks
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        batches.push(drain);
        let attempted: Vec<Vec<u64>> = attempted
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        verify_consumed(
            &batches,
            &attempted,
            per,
            $allow_missing_per_kill * report.kills as usize,
        );

        assert!(report.ops > 0, "watchdog saw completed operations");
        // Empirical wait-freedom: worst completed op stayed within a
        // budget linear in the thread count. Constants calibrated with
        // ~4x headroom over observed maxima for Cyclic{1} helping.
        report.assert_linear_bound(N, 400, 200);
        report
    }};
}

/// The acceptance scenario: a dequeuer dies **between dequeue step 1
/// (lock-sentinel, the L135 `deqTid` CAS) and step 2 (clear-pending)**.
/// The `kp.clear_pending.deq` site sits exactly in that window — it is
/// reached only after a locked sentinel was observed.
#[test]
fn epoch_dequeuer_killed_between_lock_sentinel_and_clear_pending() {
    let report = kill_torture_round!(
        WfQueue::<u64>::with_config(4, Config::opt_both()),
        "kp.clear_pending.deq",
        0,
        1 // the victim's exit cleanup may consume-and-discard one value
    );
    assert!(report.total_steps > 0);
}

/// An enqueuer dies at the swing-tail step (enqueue step 3, L94). Its
/// in-flight value was already published in its descriptor, so the exit
/// cleanup (or a helper) must make it land: **zero** values may go
/// missing.
#[test]
fn epoch_enqueuer_killed_at_swing_tail_loses_nothing() {
    kill_torture_round!(
        WfQueue::<u64>::with_config(4, Config::opt_both()),
        "kp.swing_tail",
        1, // tid 1 is a producer
        0
    );
}

/// Same acceptance window on the §3.4 hazard-pointer variant. The
/// allowance is one value per kill: beyond the exit-cleanup discard, a
/// kill landing after helpers completed the victim's dequeue but before
/// the victim read the couriered value out of its descriptor leaks that
/// value (documented in DESIGN.md).
#[test]
fn hp_dequeuer_killed_between_lock_sentinel_and_clear_pending() {
    kill_torture_round!(
        WfQueueHp::<u64>::with_config(4, Config::opt_both()),
        "kp_hp.clear_pending.deq",
        0,
        1
    );
}

#[test]
fn hp_enqueuer_killed_at_swing_tail_loses_nothing() {
    kill_torture_round!(
        WfQueueHp::<u64>::with_config(4, Config::opt_both()),
        "kp_hp.swing_tail",
        1,
        0
    );
}

/// A producer dies **mid-demotion**: its fast-path budget is exhausted
/// (budget 1 makes any interference — a lagging tail, a lost append
/// race — demote), the private node has just been rebranded from
/// `FAST_ENQUEUER` to the real tid, and the `kp.fast.demote` site fires
/// *before* the descriptor publish. Killing there leaves a value that
/// was recorded as attempted but never entered the queue — the one
/// legal loss — while the shared structures hold no trace of the op, so
/// survivors must be completely unaffected.
#[test]
fn epoch_enqueuer_killed_mid_demotion() {
    // The demote site only fires on genuine fast-path interference; on a
    // single-core box the debug-scaled op count can see it fewer than
    // the plan's skip+1 times, so the kill never lands. Pin the count at
    // the unscaled 3k ops (validated to fire plenty in both profiles).
    kill_torture_round!(
        WfQueue::<u64>::with_config(4, Config::fast().with_fast_path(1)),
        "kp.fast.demote",
        1, // tid 1 is a producer
        1, // its rebranded-but-unpublished value may vanish
        per = 3_000
    );
}

/// The same window on the hazard-pointer variant: the rebranded node
/// came from the node pool and dies with the victim (leaked, never
/// published), so beyond that one value the ledger must balance.
#[test]
fn hp_enqueuer_killed_mid_demotion() {
    // Unscaled op count for the same reason as the epoch variant above.
    kill_torture_round!(
        WfQueueHp::<u64>::with_config(4, Config::fast().with_fast_path(1)),
        "kp_hp.fast.demote",
        1,
        1,
        per = 3_000
    );
}

/// Every instrumented epoch-variant site, for seeded plans.
const EPOCH_SITES: &[&str] = &[
    "kp.publish",
    "kp.append",
    "kp.clear_pending.enq",
    "kp.swing_tail",
    "kp.bind_sentinel",
    "kp.lock_sentinel",
    "kp.clear_pending.deq",
    "kp.clear_pending.deq_empty",
    "kp.swing_head",
    "idpool.acquire",
    "idpool.release",
];

/// The epoch sites plus the five fast-path sites (DESIGN.md §12), for
/// seeded plans against a fast-path config.
const EPOCH_FAST_SITES: &[&str] = &[
    "kp.publish",
    "kp.append",
    "kp.clear_pending.enq",
    "kp.swing_tail",
    "kp.bind_sentinel",
    "kp.lock_sentinel",
    "kp.clear_pending.deq",
    "kp.clear_pending.deq_empty",
    "kp.swing_head",
    "kp.fast.enq",
    "kp.fast.swing_tail",
    "kp.fast.deq",
    "kp.fast.swing_head",
    "kp.fast.demote",
    "idpool.acquire",
    "idpool.release",
];

/// Records one small history on a chaos-registered thread group and
/// checks it against the sequential FIFO model (WGL checker). A macro
/// rather than a fn so it works for every engine whose handle exposes
/// an inherent `tid()` (KP epoch/HP and wCQ).
macro_rules! record_and_check {
    ($q:expr, $threads:expr, $ops:expr, $seed:expr) => {{
        let q = $q;
        let threads: usize = $threads;
        let ops: usize = $ops;
        let seed: u64 = $seed;
        let recorder = Recorder::new();
        let mut logs = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let recorder = &recorder;
                    s.spawn(move || {
                        let mut h = q.register().expect("register");
                        let _token = chaos::register_thread(h.tid());
                        let mut log = recorder.log::<QueueOp>(t);
                        let mut x = seed ^ (t as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        for i in 0..ops {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            if x % 100 < 55 {
                                let v = ((t as u64) << 32) | i as u64;
                                log.record(|| h.enqueue(v), |_| QueueOp::Enqueue(v));
                            } else {
                                log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
                            }
                        }
                        log
                    })
                })
                .collect();
            for h in handles {
                logs.push(h.join().unwrap());
            }
        });
        let history = History::from_logs(logs);
        assert!(history.validate_stamps());
        match check(&QueueModel, &history) {
            Outcome::Linearizable => {}
            Outcome::NotLinearizable => panic!(
                "seed {seed}: adversarial schedule produced a NON-LINEARIZABLE history:\n{:#?}",
                history.ops()
            ),
            Outcome::Unknown => panic!("seed {seed}: checker budget exhausted"),
        }
    }};
}

/// Linearizability under seeded adversarial stall plans: the same seed
/// always derives the same stall schedule ([`FaultPlan::seeded`]), so a
/// failure here is replayable by seed alone. The seed matrix is the one
/// `scripts/torture.sh` sweeps.
#[test]
fn linearizable_under_seeded_adversarial_stalls() {
    quiet_chaos_kills();
    const THREADS: usize = 3;
    for seed in [1u64, 7, 42, 1337, 0x5EED] {
        let session = chaos::install(FaultPlan::seeded(seed, EPOCH_SITES, THREADS, 10));
        for round in 0..8 {
            // Fresh queue per round: each checked history must be
            // self-contained (no values left over from a previous round).
            let q: WfQueue<u64> = WfQueue::with_config(THREADS, Config::opt_both());
            record_and_check!(&q, THREADS, 12, seed.wrapping_mul(6364136223846793005).wrapping_add(round));
        }
        let report = session.report();
        assert!(report.stalls > 0, "seeded plan must actually stall (seed {seed})");
        report.assert_linear_bound(THREADS, 400, 200);
    }
}

/// The same seeded adversarial stalls against the fast-path config: the
/// plans may now park threads inside the fast windows too (between the
/// fast append and its tail swing, between the fast `deqTid` lock and
/// its head swing, mid-demotion), and every history must still
/// linearize with fast and helped ops interleaved on one queue.
#[test]
fn linearizable_under_seeded_adversarial_stalls_fast_path() {
    quiet_chaos_kills();
    const THREADS: usize = 3;
    for seed in [3u64, 23, 4242, 0xFA57] {
        let session = chaos::install(FaultPlan::seeded(seed, EPOCH_FAST_SITES, THREADS, 10));
        for round in 0..6 {
            let q: WfQueue<u64> =
                WfQueue::with_config(THREADS, Config::fast().with_fast_path(2));
            record_and_check!(&q, THREADS, 12, seed.wrapping_mul(6364136223846793005).wrapping_add(round));
        }
        let report = session.report();
        assert!(report.stalls > 0, "seeded plan must actually stall (seed {seed})");
        report.assert_linear_bound(THREADS, 400, 200);
    }
}

/// A stalled reader parked inside Michael's protect/validate window must
/// neither be handed a reclaimed node nor let the writer's retired list
/// grow without bound. The stall sits exactly between the hazard store
/// and its validation load (`hazard.protect.validate`).
#[test]
fn stalled_hazard_reader_keeps_memory_bounded() {
    quiet_chaos_kills();
    const MAGIC: u64 = 0xFEED_FACE_CAFE_BEEF;
    let session = chaos::install(
        FaultPlan::new()
            .stall("hazard.protect.validate", ThreadSel::Id(0), 1, 40)
            .stall("hazard.protect.validate", ThreadSel::Id(0), 5, 40)
            .with_storm(6, 1),
    );
    let domain = hazard::Domain::new(1);
    let shared: AtomicPtr<AtomicU64> = AtomicPtr::new(Box::into_raw(Box::new(AtomicU64::new(MAGIC))));
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            // Reader: protect the current node and read through it.
            let _token = chaos::register_thread(0);
            let p = domain.enter();
            while !stop.load(Ordering::SeqCst) {
                let ptr = p.protect(0, &shared);
                if !ptr.is_null() {
                    // A protected node is alive even if already unlinked.
                    let v = unsafe { (*ptr).load(Ordering::SeqCst) };
                    assert_eq!(v, MAGIC, "protected node was reclaimed under us");
                }
                p.clear(0);
            }
        });
        s.spawn(|| {
            // Writer: unlink-and-retire at full speed.
            let _token = chaos::register_thread(1);
            let mut p = domain.enter();
            let bound = (2 * domain.total_slots()).max(64);
            for _ in 0..testing::scaled(30_000) {
                let fresh = Box::into_raw(Box::new(AtomicU64::new(MAGIC)));
                let old = shared.swap(fresh, Ordering::SeqCst);
                // SAFETY: `old` was just unlinked and is retired once.
                unsafe { p.retire(old) };
                assert!(
                    p.retired_len() <= bound,
                    "retired list exceeded Michael's R = max(2H, 64) bound"
                );
            }
            assert!(p.reclaimed() > 0, "reclamation made progress despite the stalled reader");
            stop.store(true, Ordering::SeqCst);
        });
    });
    let report = session.report();
    assert!(report.stalls >= 2, "the validate-window stalls fired");
    // Last node out.
    let last = shared.swap(std::ptr::null_mut(), Ordering::SeqCst);
    drop(unsafe { Box::from_raw(last) });
}

/// One descriptor-reuse ABA round: thread 0 is parked for a long window
/// exactly between reading a descriptor word and attempting the step
/// CAS on it (the `append`/`lock_sentinel` sites sit in that window).
/// While it sleeps, the other threads churn through operations, so the
/// slot it read from is completed, reset, and republished many times —
/// its version tag climbing with every recycle. When the helper wakes,
/// its CAS carries the *old* version: with alloc-per-transition
/// descriptors the stale pointer could never be confused with a fresh
/// one (fresh allocation ⇒ fresh address), but with in-place slot reuse
/// only the packed version tag stands between the stale CAS and
/// replaying a completed step onto a brand-new operation. A replayed
/// append/lock shows up as a duplicated or lost value, which the WGL
/// linearizability check rejects.
macro_rules! reuse_aba_round {
    ($mk_queue:expr, $append_site:literal, $lock_site:literal) => {{
        quiet_chaos_kills();
        const THREADS: usize = 3;
        for (hit, yields) in [(2u64, 150u32), (5, 400)] {
            let session = chaos::install(
                FaultPlan::new()
                    .stall($append_site, ThreadSel::Id(0), hit, yields)
                    .stall($lock_site, ThreadSel::Id(0), hit + 1, yields)
                    .with_storm(7, 1),
            );
            for round in 0..4u64 {
                let q = $mk_queue;
                let recorder = Recorder::new();
                let mut logs = Vec::new();
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..THREADS)
                        .map(|t| {
                            let recorder = &recorder;
                            let q = &q;
                            s.spawn(move || {
                                let mut h = q.register().expect("register");
                                let _token = chaos::register_thread(h.tid());
                                let mut log = recorder.log::<QueueOp>(t);
                                let mut x = (round + 1) ^ (t as u64 + 1) * 0x9E37;
                                for i in 0..16 {
                                    x ^= x << 13;
                                    x ^= x >> 7;
                                    x ^= x << 17;
                                    if x % 100 < 50 {
                                        let v = ((t as u64) << 32) | i as u64;
                                        log.record(|| h.enqueue(v), |_| QueueOp::Enqueue(v));
                                    } else {
                                        log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
                                    }
                                }
                                log
                            })
                        })
                        .collect();
                    for h in handles {
                        logs.push(h.join().unwrap());
                    }
                });
                let history = History::from_logs(logs);
                assert!(history.validate_stamps());
                match check(&QueueModel, &history) {
                    Outcome::Linearizable => {}
                    Outcome::NotLinearizable => panic!(
                        "stale descriptor CAS replayed a step (round {round}):\n{:#?}",
                        history.ops()
                    ),
                    Outcome::Unknown => panic!("checker budget exhausted"),
                }
            }
            let report = session.report();
            assert!(
                report.stalls > 0,
                "the descriptor-window stall must actually fire"
            );
        }
    }};
}

/// Epoch variant: stalled helper vs recycled descriptor cell. Uses the
/// `ScanAll` base config so thread 0 passes the instrumented window
/// while helping peers, not only while driving its own op.
#[test]
fn epoch_stale_helper_cas_defeated_by_version_tag() {
    reuse_aba_round!(
        WfQueue::<u64>::with_config(3, Config::base()),
        "kp.append",
        "kp.lock_sentinel"
    );
}

/// Hazard-pointer variant of the same ABA window. Node recycling adds a
/// second hazard here: the node address packed into the stale word may
/// have been pooled and republished under a *different* operation, so a
/// successful stale CAS would graft an old node onto a new op. The
/// version tag must reject it identically.
#[test]
fn hp_stale_helper_cas_defeated_by_version_tag() {
    reuse_aba_round!(
        WfQueueHp::<u64>::with_config(3, Config::base()),
        "kp_hp.append",
        "kp_hp.lock_sentinel"
    );
}

/// Deterministic replay: the same plan against the same workload gives
/// the same kill site and ledger shape. (The schedule itself is still
/// OS-dependent; what must be stable is which rule fires and that every
/// run survives it.)
#[test]
fn kill_plans_replay_across_runs() {
    for _ in 0..3 {
        kill_torture_round!(
            WfQueue::<u64>::with_config(4, Config::opt_both()),
            "kp.clear_pending.deq",
            0,
            1
        );
    }
}

// ---------------------------------------------------------------------
// panic-unwind safety (DESIGN.md §13): after a kill unwinds out of an
// operation, the SAME handle must keep working
// ---------------------------------------------------------------------

/// One unwind-reuse round: every thread runs a mixed workload with each
/// operation wrapped in `catch_unwind`, and the plan kills **every**
/// thread once at `$site` (per-thread occurrence counting makes
/// `ThreadSel::Any` fire per thread). A caught kill is not a death
/// here: the thread keeps using the handle it was killed with, so this
/// checks the operation guards restore every handle invariant — the
/// ledger must balance minus at most one value per kill (an enqueue
/// killed before its publish, or a dequeue whose claimed value unwound
/// away), with nothing invented, duplicated, or reordered.
macro_rules! unwind_reuse_round {
    ($queue:expr, $site:expr) => {{
        quiet_chaos_kills();
        const N: usize = 3;
        let per = testing::scaled(1_200);
        let session = chaos::install(
            FaultPlan::new()
                .kill($site, ThreadSel::Any, 2)
                .with_storm(11, 1),
        );
        let q = $queue;
        let sinks: Vec<Mutex<Vec<u64>>> = (0..N).map(|_| Mutex::new(Vec::new())).collect();
        let attempted: Vec<Mutex<Vec<u64>>> = (0..N).map(|_| Mutex::new(Vec::new())).collect();
        let kills = AtomicU64::new(0);
        let barrier = Barrier::new(N);
        std::thread::scope(|s| {
            for _ in 0..N {
                let q = &q;
                let sinks = &sinks;
                let attempted = &attempted;
                let barrier = &barrier;
                let kills = &kills;
                s.spawn(move || {
                    let mut h = q.register().expect("register");
                    let tid = h.tid();
                    let _token = chaos::register_thread(tid);
                    barrier.wait();
                    for i in 0..per {
                        let v = (tid * per + i) as u64;
                        attempted[tid].lock().unwrap().push(v);
                        if let Err(e) = catch_unwind(AssertUnwindSafe(|| h.enqueue(v))) {
                            assert!(
                                e.downcast_ref::<ChaosKill>().is_some(),
                                "only planned kills may escape an operation"
                            );
                            kills.fetch_add(1, Ordering::Relaxed);
                        }
                        // Two dequeues per enqueue keep the queue near
                        // empty, so the empty-dequeue sites fire too.
                        for _ in 0..2 {
                            match catch_unwind(AssertUnwindSafe(|| h.dequeue())) {
                                Ok(Some(v)) => sinks[tid].lock().unwrap().push(v),
                                Ok(None) => {}
                                Err(e) => {
                                    assert!(
                                        e.downcast_ref::<ChaosKill>().is_some(),
                                        "only planned kills may escape an operation"
                                    );
                                    kills.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                });
            }
        });
        let report = session.report();
        let kills = kills.load(Ordering::Relaxed) as usize;
        assert_eq!(report.kills as usize, kills, "every planned kill was caught");
        assert!(
            kills >= 1,
            "site {} never fired — the round tested nothing",
            $site
        );

        // All slots must be re-acquirable (no handle died, so this is
        // the weaker invariant; the kill rounds above cover crashes).
        let mut survivors: Vec<_> = (0..N)
            .map(|_| q.register().expect("slot acquirable after unwind recovery"))
            .collect();
        let mut drain = Vec::new();
        while let Some(v) = survivors[0].dequeue() {
            drain.push(v);
        }
        drop(survivors);
        let mut batches: Vec<Vec<u64>> = sinks
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        batches.push(drain);
        let attempted: Vec<Vec<u64>> = attempted
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        verify_consumed(&batches, &attempted, per, kills);
    }};
}

/// The slow-path protocol steps, site-name suffixes shared by both
/// variants (`kp.` / `kp_hp.` prefixes).
const SLOW_STEPS: &[&str] = &[
    "publish",
    "append",
    "clear_pending.enq",
    "swing_tail",
    "bind_sentinel",
    "lock_sentinel",
    "clear_pending.deq",
    "clear_pending.deq_empty",
    "swing_head",
];

/// The fast-path steps (DESIGN.md §12), same convention.
const FAST_STEPS: &[&str] = &[
    "fast.enq",
    "fast.swing_tail",
    "fast.deq",
    "fast.swing_head",
    "fast.demote",
];

#[test]
fn epoch_handles_stay_usable_after_kills_at_every_slow_site() {
    for step in SLOW_STEPS {
        let site = format!("kp.{step}");
        unwind_reuse_round!(
            WfQueue::<u64>::with_config(3, Config::opt_both()),
            site.as_str()
        );
    }
}

/// The slow sites are covered by the round above; a fast-path config
/// reaches them only through demotion (which skips `publish`), so this
/// round covers the five fast-path sites, with budget 1 so every lost
/// race demotes and `fast.demote` fires reliably.
#[test]
fn epoch_handles_stay_usable_after_kills_at_every_fast_site() {
    for step in FAST_STEPS {
        let site = format!("kp.{step}");
        unwind_reuse_round!(
            WfQueue::<u64>::with_config(3, Config::fast().with_fast_path(1)),
            site.as_str()
        );
    }
}

#[test]
fn hp_handles_stay_usable_after_kills_at_every_slow_site() {
    for step in SLOW_STEPS {
        let site = format!("kp_hp.{step}");
        unwind_reuse_round!(
            WfQueueHp::<u64>::with_config(3, Config::opt_both()),
            site.as_str()
        );
    }
}

#[test]
fn hp_handles_stay_usable_after_kills_at_every_fast_site() {
    for step in FAST_STEPS {
        let site = format!("kp_hp.{step}");
        unwind_reuse_round!(
            WfQueueHp::<u64>::with_config(3, Config::fast().with_fast_path(1)),
            site.as_str()
        );
    }
}

// ---------------------------------------------------------------------
// abandoned-handle reaping under chaos (DESIGN.md §13)
// ---------------------------------------------------------------------

/// One kill-then-reap round (the ISSUE acceptance scenario), in three
/// strictly sequential phases so that **at most one live handle exists
/// at any moment** — the lease freeze oracle cannot tell a dead handle
/// from a live-but-descheduled one, so a tiny reap patience is only
/// safe when no live handle can be observed frozen by another:
///
/// 1. A *wedge* thread dies suddenly (no destructors) right after a
///    fast append's linearizing CAS, before the tail swing — the
///    `fast.swing_tail` death state: two linearized values, a claimed
///    slot, and a lagging tail.
/// 2. The *victim*, now the only live handle, runs a mixed workload
///    until the planned kill at `$site` unwinds out of an operation,
///    then forgets its handle — sudden death number two. The wedge's
///    lagging tail is what makes `fast.demote` reachable solo: the
///    victim's first budget-1 fast enqueue spends its one iteration on
///    `help_finish_enq` and demotes.
/// 3. A lone *survivor* operates until both dead slots are reaped;
///    then all three slots must be acquirable at once and the ledger
///    must balance minus at most one value (the killed operation's
///    in-flight value).
///
/// `$storm` seeds the victim's yield-storm period for schedule
/// diversity; `$min_quarantines` is 2 for the HP variant (every
/// forgotten handle leaks its active hazard record) and 0 for epoch
/// (both dead threads exited, so their pins self-cleaned).
macro_rules! reap_after_kill_round {
    ($queue:expr, $site:expr, $hit:expr, $storm:expr, $min_quarantines:expr) => {{
        quiet_chaos_kills();
        const N: usize = 3;
        let per = testing::scaled(2_000);
        let spin = 200_000usize;
        let session = chaos::install(
            FaultPlan::new()
                .kill($site, ThreadSel::Id(0), $hit)
                .with_storm($storm, 1),
        );
        let q = $queue;

        // Phase 1 — the wedge (not chaos-registered: its steps run
        // clean, so the wedge state is deterministic).
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut h = q.register().expect("wedge registers");
                h.enqueue(0);
                h.fast_append_unswung(1);
                std::mem::forget(h);
            });
        });

        // Phase 2 — the victim, the only live handle.
        let mut victim_attempted = Vec::new();
        let mut victim_sink = Vec::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                let h = q.register().expect("victim registers");
                let _token = chaos::register_thread(0);
                let mut h = Some(h);
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let h = h.as_mut().unwrap();
                    for i in 0..per {
                        let v = (per + i) as u64;
                        victim_attempted.push(v);
                        h.enqueue(v);
                        if let Some(v) = h.dequeue() {
                            victim_sink.push(v);
                        }
                    }
                }));
                let e = result.expect_err("the planned kill must fire");
                assert!(e.downcast_ref::<ChaosKill>().is_some());
                // Sudden death: neither the handle nor its id guard
                // runs a destructor.
                std::mem::forget(h.take());
            });
        });

        // Phase 3 — a lone survivor on the test thread (its epoch
        // participant may reuse a dead thread's registry slot, which is
        // exactly what the reaper's self-token guard must tolerate).
        let mut survivor_attempted = Vec::new();
        let mut survivor_sink = Vec::new();
        {
            let mut h = q.register().expect("survivor registers");
            let mut reaped = false;
            for i in 0..spin {
                let v = (2 * per + i) as u64;
                survivor_attempted.push(v);
                h.enqueue(v);
                if let Some(v) = h.dequeue() {
                    survivor_sink.push(v);
                }
                if q.stats().reaps >= 2 {
                    reaped = true;
                    break;
                }
            }
            assert!(reaped, "dead slots never reaped: {:?}", q.stats());
        }
        let report = session.report();
        assert_eq!(report.kills, 1, "exactly one planned death: {report:?}");
        let stats = q.stats();
        let min_quarantines: u64 = $min_quarantines;
        assert!(
            stats.quarantines >= min_quarantines,
            "expected {min_quarantines} quarantines: {stats:?}"
        );

        // The reaped slots (and the survivor's) must be acquirable at
        // once.
        let mut survivors: Vec<_> = (0..N)
            .map(|_| q.register().expect("every slot reclaimable after a reap"))
            .collect();
        let mut drain = Vec::new();
        while let Some(v) = survivors[0].dequeue() {
            drain.push(v);
        }
        drop(survivors);

        // Ledger: wedge values 0 and 1 (both linearized — the unswung
        // append's CAS is its linearization point), victim band per..,
        // survivor band 2*per.. (bucketed by v/per, so each
        // verify_consumed producer bucket is ascending and the FIFO
        // check holds).
        let batches = vec![victim_sink, survivor_sink, drain];
        let mut attempted: Vec<Vec<u64>> = vec![Vec::new(); (2 * per + spin) / per + 2];
        attempted[0].extend([0, 1]);
        for v in victim_attempted.into_iter().chain(survivor_attempted) {
            attempted[v as usize / per].push(v);
        }
        verify_consumed(&batches, &attempted, per, 1);
    }};
}

/// Reap patience small enough that a few dozen survivor operations
/// revoke a dead lease. Safe *only* because the rounds above never let
/// two live handles coexist: the freeze oracle cannot distinguish dead
/// from descheduled, so a live peer under a yield storm could be
/// falsely frozen at this patience (production sizing is
/// `DEFAULT_REAP_PATIENCE`, see DESIGN.md §13).
const REAP_CFG_PATIENCE: usize = 8;

#[test]
fn epoch_reaper_reclaims_slot_after_kill_seed_matrix() {
    for &storm in &[7u64, 13] {
        // Mid-enqueue: before the step-1 append CAS (descriptor already
        // published — recovery lands the value).
        reap_after_kill_round!(
            WfQueue::<u64>::with_config(
                3,
                Config::opt_both().with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            "kp.append",
            20,
            storm,
            0
        );
        // Mid-dequeue: the step-1 deqTid CAS.
        reap_after_kill_round!(
            WfQueue::<u64>::with_config(
                3,
                Config::opt_both().with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            "kp.lock_sentinel",
            20,
            storm,
            0
        );
        // Mid-demotion: rebranded private node, descriptor not yet
        // published. The wedge's lagging tail makes the victim's first
        // budget-1 fast enqueue demote, so occurrence 0 fires solo.
        reap_after_kill_round!(
            WfQueue::<u64>::with_config(
                3,
                Config::fast()
                    .with_fast_path(1)
                    .with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            "kp.fast.demote",
            0,
            storm,
            0
        );
    }
}

#[test]
fn hp_reaper_reclaims_slot_after_kill_seed_matrix() {
    for &storm in &[7u64, 13] {
        reap_after_kill_round!(
            WfQueueHp::<u64>::with_config(
                3,
                Config::opt_both().with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            "kp_hp.append",
            20,
            storm,
            2
        );
        reap_after_kill_round!(
            WfQueueHp::<u64>::with_config(
                3,
                Config::opt_both().with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            "kp_hp.lock_sentinel",
            20,
            storm,
            2
        );
        reap_after_kill_round!(
            WfQueueHp::<u64>::with_config(
                3,
                Config::fast()
                    .with_fast_path(1)
                    .with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            "kp_hp.fast.demote",
            0,
            storm,
            2
        );
    }
}

// ---------------------------------------------------------------------
// reaper-dies-mid-reap: the takeover path
// ---------------------------------------------------------------------

/// One takeover round: a victim abandons a pending enqueue (sudden
/// death via `begin_enqueue_unhelped` + forget), and the single
/// survivor — whose fast-only config helps nobody, so the pending op
/// waits for the reaper — is killed at reap site `$site` during its
/// first reap attempt, stranding the slot in `Reaping`. The survivor
/// catches the kill, keeps operating (a killed thread's chaos is
/// permanently disarmed), and must then **take over** the stranded
/// reap: `reap_takeovers >= 1`, the victim's value surfaces, and the
/// slot is acquirable again.
macro_rules! reap_takeover_round {
    ($queue:expr, $site:expr) => {{
        quiet_chaos_kills();
        let spin = 200_000usize;
        let session = chaos::install(FaultPlan::new().kill($site, ThreadSel::Any, 0));
        let q = $queue;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut h = q.register().expect("victim registers");
                h.enqueue(7);
                let pending = h.begin_enqueue_unhelped(42);
                std::mem::forget(pending);
                std::mem::forget(h);
            })
            .join()
            .expect("victim thread exits cleanly");

            let mut h = q.register().expect("survivor registers");
            let tid = h.tid();
            let _token = chaos::register_thread(tid);
            let mut kills = 0usize;
            let mut done = false;
            let mut drained = Vec::new();
            // The reap tick (and with it the planned kill) can fire
            // inside either operation — which one depends on the tick
            // stride's parity against the drive loop — so both are
            // unwind-guarded.
            for i in 0..spin {
                let v = 1_000 + i as u64;
                if let Err(e) = catch_unwind(AssertUnwindSafe(|| h.enqueue(v))) {
                    assert!(
                        e.downcast_ref::<ChaosKill>().is_some(),
                        "only the planned reap-site kill may escape"
                    );
                    kills += 1;
                }
                match catch_unwind(AssertUnwindSafe(|| h.dequeue())) {
                    Ok(Some(v)) => drained.push(v),
                    Ok(None) => {}
                    Err(e) => {
                        assert!(
                            e.downcast_ref::<ChaosKill>().is_some(),
                            "only the planned reap-site kill may escape"
                        );
                        kills += 1;
                    }
                }
                let stats = q.stats();
                if stats.reap_takeovers >= 1 && stats.reaps >= 1 {
                    done = true;
                    break;
                }
            }
            let stats = q.stats();
            assert!(done, "stranded reap never taken over: {stats:?}");
            assert_eq!(kills, 1, "the reap-site kill fires exactly once");
            while let Some(v) = h.dequeue() {
                drained.push(v);
            }
            assert!(drained.contains(&7), "victim's completed enqueue lost");
            assert!(
                drained.contains(&42),
                "victim's pending enqueue lost across the takeover"
            );
            drop(h);
            let all: Vec<_> = (0..2)
                .map(|_| q.register().expect("reaped slot reclaimable"))
                .collect();
            drop(all);
        });
        assert_eq!(session.report().kills, 1);
    }};
}

/// A reaper killed before adoption, before the retire election, and
/// before the lease hand-back — each strands the slot differently
/// (still-pending descriptor / retired-but-leased / fully reaped but
/// leased), and the takeover path must converge from all three.
#[test]
fn epoch_reap_takeover_after_reaper_killed_at_each_reap_site() {
    for site in ["kp.reap.adopt", "kp.reap.retire", "kp.reap.finish"] {
        reap_takeover_round!(
            WfQueue::<u64>::with_config(
                2,
                Config::fast()
                    .with_starvation_patience(usize::MAX)
                    .with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            site
        );
    }
}

#[test]
fn hp_reap_takeover_after_reaper_killed_at_each_reap_site() {
    for site in ["kp_hp.reap.adopt", "kp_hp.reap.retire", "kp_hp.reap.finish"] {
        reap_takeover_round!(
            WfQueueHp::<u64>::with_config(
                2,
                Config::fast()
                    .with_starvation_patience(usize::MAX)
                    .with_reap_patience(REAP_CFG_PATIENCE)
                    .with_reap_min_silence_ms(0)
            ),
            site
        );
    }
}

// ---------------------------------------------------------------------
// wCQ (SCQ ring + helping records) chaos coverage
// ---------------------------------------------------------------------

/// Every instrumented wCQ site (crates/wcq/src/chaos_hooks.rs), for
/// seeded plans. Both index rings (`aq` and `fq`) share the site names,
/// so a stall or kill at `wcq.enq` can land in a producer's value
/// append *or* a consumer's index recycle.
const WCQ_SITES: &[&str] = &[
    "wcq.enq",
    "wcq.deq",
    "wcq.help",
    "wcq.finalize",
    "wcq.threshold",
];

/// Seeded adversarial stalls against the wCQ engine, alternating the
/// default (fast path + helping fallback) and slow-only (every op
/// through an operation record) configs so the plans can park threads
/// inside the helping windows too: mid-help with a ctrl word read but
/// not CASed, between a tentative install and its finalize, between a
/// threshold read and its decrement. Capacity 64 exceeds the maximum
/// backlog a round can build (3 threads x 12 ops), so the blocking
/// `enqueue` never spins on `Full` and every history stays comparable
/// to the unbounded engines'.
#[test]
fn wcq_linearizable_under_seeded_adversarial_stalls() {
    quiet_chaos_kills();
    const THREADS: usize = 3;
    for seed in [2u64, 9, 141, 0xACE5] {
        let session = chaos::install(FaultPlan::seeded(seed, WCQ_SITES, THREADS, 10));
        for round in 0..8u64 {
            let cfg = if round % 2 == 0 {
                WcqConfig::new()
            } else {
                WcqConfig::slow_only()
            };
            let q: WcQueue<u64> = WcQueue::with_config(THREADS, cfg.with_capacity(64));
            record_and_check!(
                &q,
                THREADS,
                12,
                seed.wrapping_mul(6364136223846793005).wrapping_add(round)
            );
        }
        let report = session.report();
        assert!(report.stalls > 0, "seeded plan must actually stall (seed {seed})");
        report.assert_linear_bound(THREADS, 400, 200);
    }
}

/// Capacity for the wCQ kill rounds: comfortably above the ~6k values
/// two producers attempt, so the ring never reports `Full` and the
/// blocking `enqueue` loop cannot spin forever after the consumers
/// exhaust their attempt budgets. (A kill can also leak one data index
/// per round — the victim held it in a local — which this headroom
/// absorbs.)
const WCQ_KILL_CAPACITY: usize = 1 << 14;

/// A producer dies at the top of a ring-enqueue attempt, before its
/// tail FAA: the value is already written to its data slot but the
/// slot's index never enters `aq`, so exactly that one value (and its
/// index) may vanish. Survivors must be unaffected and the victim's
/// handle-drop cleanup must retire its state.
#[test]
fn wcq_enqueuer_killed_before_ring_append() {
    kill_torture_round!(
        WcQueue::<u64>::with_config(4, WcqConfig::new().with_capacity(WCQ_KILL_CAPACITY)),
        "wcq.enq",
        1, // tid 1 is a producer
        1
    );
}

/// A dequeuer dies in the recycle window: it has read the value out of
/// the data slot but dies inside the `fq` enqueue returning the index.
/// The value unwinds away with the stack frame (at most one missing);
/// the index leaks, which the capacity headroom absorbs.
#[test]
fn wcq_dequeuer_killed_mid_index_recycle() {
    kill_torture_round!(
        WcQueue::<u64>::with_config(4, WcqConfig::new().with_capacity(WCQ_KILL_CAPACITY)),
        "wcq.enq", // the recycle is an fq ring-enqueue; victim 0 is a consumer
        0,
        1
    );
}

/// A dequeuer dies at the top of a ring-dequeue attempt, before its
/// head FAA: nothing is claimed yet, so at most the handle-drop
/// cleanup's consume-and-discard goes missing.
#[test]
fn wcq_dequeuer_killed_before_claim() {
    kill_torture_round!(
        WcQueue::<u64>::with_config(4, WcqConfig::new().with_capacity(WCQ_KILL_CAPACITY)),
        "wcq.deq",
        0,
        1
    );
}

/// A thread dies between reading the threshold and writing it (reset or
/// decrement). The threshold is bookkeeping for emptiness detection —
/// a lost update may cost a spurious extra scan but never a value; the
/// ledger must balance minus the usual at-most-one in-flight value.
#[test]
fn wcq_thread_killed_at_threshold_update() {
    kill_torture_round!(
        WcQueue::<u64>::with_config(4, WcqConfig::new().with_capacity(WCQ_KILL_CAPACITY)),
        "wcq.threshold",
        0,
        1
    );
}

/// Slow-only config: a consumer dies mid-help, between reading a ctrl
/// word and acting on it. Its own pending record is finished by its
/// handle-drop cleanup (which may consume-and-discard one claimed
/// value); any peer record it was helping must be finished by the
/// survivors.
#[test]
fn wcq_helper_killed_mid_help() {
    kill_torture_round!(
        WcQueue::<u64>::with_config(
            4,
            WcqConfig::slow_only().with_capacity(WCQ_KILL_CAPACITY)
        ),
        "wcq.help",
        0,
        1
    );
}

/// Slow-only config: a producer dies at a finalize step — after its
/// tentative entry was installed (or its ctrl word moved to DONE) but
/// before the entry's final bit was published. Helpers or the victim's
/// own handle-drop cleanup must finalize-or-invalidate exactly once:
/// the value either lands (and is dequeued) or is cleanly invalidated
/// (one missing), never duplicated.
#[test]
fn wcq_enqueuer_killed_at_finalize() {
    kill_torture_round!(
        WcQueue::<u64>::with_config(
            4,
            WcqConfig::slow_only().with_capacity(WCQ_KILL_CAPACITY)
        ),
        "wcq.finalize",
        1,
        1
    );
}

/// The wCQ handle-death stranding bound (DESIGN.md §14): a ring has no
/// reaper, so a suddenly-dead handle (kill unwinds out of an operation,
/// then the handle is forgotten — no destructor) permanently strands at
/// most **one value and one ring index**: the index it held in a local
/// between taking it from one ring and appending it to the other, plus
/// the value written to that index's data slot. This round kills two
/// handles on a *small* ring, drains it, then fills to `Full` from a
/// fresh handle: the fill must reach at least `capacity - kills` (each
/// dead handle cost at most one index) and the value ledger must be
/// short by at most one value per kill.
#[test]
fn wcq_killed_handles_strand_bounded_capacity() {
    quiet_chaos_kills();
    const CAP: usize = 64;
    const KILLS: usize = 2;
    // Victims enqueue (kill lands in the aq value append) or churn
    // enqueue/dequeue pairs (kill lands in a claim or an fq recycle).
    for (site, victim_dequeues) in [("wcq.enq", false), ("wcq.deq", true)] {
        let session = chaos::install(
            FaultPlan::new()
                // Per-thread occurrence counting: every chaos-registered
                // thread dies at its third visit to the site.
                .kill(site, ThreadSel::Any, 2)
                .with_storm(5, 1),
        );
        let q: WcQueue<u64> = WcQueue::with_config(KILLS + 1, WcqConfig::new().with_capacity(CAP));
        let sink: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        let attempted: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        for k in 0..KILLS as u64 {
            std::thread::scope(|s| {
                s.spawn(|| {
                    let h = q.register().expect("victim registers");
                    let _token = chaos::register_thread(h.tid());
                    let mut h = Some(h);
                    let died = catch_unwind(AssertUnwindSafe(|| {
                        let h = h.as_mut().unwrap();
                        for i in 0..16u64 {
                            let v = (k << 32) | i;
                            attempted.lock().unwrap().push(v);
                            h.enqueue(v);
                            if victim_dequeues {
                                if let Ok(x) = h.try_dequeue() {
                                    sink.lock().unwrap().push(x);
                                }
                            }
                        }
                    }));
                    let e = died.expect_err("the planned kill must fire");
                    assert!(e.downcast_ref::<ChaosKill>().is_some());
                    // Sudden death: no handle destructor, so whatever
                    // index the victim held stays stranded.
                    std::mem::forget(h.take());
                });
            });
        }
        let report = session.report();
        assert_eq!(report.kills as usize, KILLS, "both victims died ({site})");

        let mut h = q.register().expect("survivor slot free");
        let mut drained = sink.into_inner().unwrap();
        while let Ok(v) = h.try_dequeue() {
            drained.push(v);
        }
        // Value ledger: nothing invented or duplicated, at most one
        // value stranded per killed handle.
        let attempted = attempted.into_inner().unwrap();
        let live: HashSet<u64> = attempted.iter().copied().collect();
        let mut seen = HashSet::new();
        for &v in &drained {
            assert!(live.contains(&v), "invented value {v:#x}");
            assert!(seen.insert(v), "value {v:#x} dequeued twice");
        }
        let missing = live.len() - seen.len();
        assert!(
            missing <= KILLS,
            "{missing} values missing after {KILLS} kills at {site} (bound: 1 per kill)"
        );

        // Capacity ledger: the drained ring accepts at least
        // CAP - KILLS fresh values before Full.
        let mut filled = 0usize;
        while h.try_enqueue((1 << 60) | filled as u64).is_ok() {
            filled += 1;
        }
        assert!(
            filled >= CAP - KILLS,
            "ring stranded more than one index per kill at {site}: \
             filled {filled} of {CAP} after {KILLS} kills"
        );
        assert!(filled <= CAP, "ring overfilled: {filled} > {CAP}");
    }
}

// ---------------------------------------------------------------------
// channel front-end (DESIGN.md §15) chaos coverage
// ---------------------------------------------------------------------

/// The channel's instrumented sites (crates/kp-channel/src/chaos_hooks.rs)
/// plus the wCQ engine sites underneath them, for seeded stall plans.
/// The `chan.*` sites are stall/storm-only: the waiter registry is a
/// lock, so kill plans must target engine sites instead.
const CHAN_WCQ_SITES: &[&str] = &[
    "chan.route",
    "chan.batch",
    "chan.park",
    "chan.wake",
    "chan.send_park",
    "chan.admit",
    "chan.quarantine",
    "chan.probe",
    "wcq.enq",
    "wcq.deq",
    "wcq.help",
    "wcq.finalize",
    "wcq.threshold",
];

/// One channel round under an installed chaos plan: `producers`
/// blocking senders (mixing scalar and batched sends) against
/// `consumers` receivers alternating `recv_timeout` and `recv_batch`.
/// Every value is tagged `(producer << 48) | seq`; each consumer audits
/// FIFO-per-producer within its own stream (the §15 ordering contract),
/// and the merged streams must be exactly-once. A receiver that times
/// out while senders are still live is a **lost wakeup** — the
/// generous timeout converts what would be a hang into a failure.
fn channel_chaos_round<Q: ConcurrentQueue<u64>>(
    chan: &Channel<u64, Q>,
    producers: usize,
    consumers: usize,
    per: usize,
    throttle: Option<Duration>,
) {
    let txs: Vec<_> = (0..producers).map(|_| chan.sender()).collect();
    let rxs: Vec<_> = (0..consumers).map(|_| chan.receiver()).collect();
    let streams: Vec<Vec<u64>> = std::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            s.spawn(move || {
                let _token = chaos::register_thread(p);
                let p = p as u64;
                let mut seq = 0u64;
                while (seq as usize) < per {
                    if seq % 7 < 2 {
                        let n = 8.min(per as u64 - seq);
                        tx.send_batch((0..n).map(|i| (p << 48) | (seq + i)))
                            .expect("receivers vanished");
                        seq += n;
                    } else {
                        tx.send((p << 48) | seq).expect("receivers vanished");
                        seq += 1;
                    }
                    // A think-time gap drains the shards so receivers
                    // genuinely park — without it the queue never runs
                    // dry and the park/wake protocol goes untested.
                    if let Some(gap) = throttle {
                        if seq.is_multiple_of(8) {
                            std::thread::sleep(gap);
                        }
                    }
                }
            });
        }
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(c, mut rx)| {
                s.spawn(move || {
                    let _token = chaos::register_thread(producers + c);
                    let mut stream = Vec::new();
                    let mut buf = Vec::with_capacity(8);
                    loop {
                        // Alternate the two parked paths: the scalar
                        // timeout wait and the batch wait.
                        if stream.len() % 3 == 0 {
                            match rx.recv_timeout(Duration::from_secs(10)) {
                                Ok(v) => stream.push(v),
                                Err(RecvTimeoutError::Disconnected) => break,
                                Err(RecvTimeoutError::Timeout) => {
                                    panic!("lost wakeup: receiver timed out with senders live")
                                }
                            }
                        } else {
                            match rx.recv_batch(&mut buf, 8) {
                                Ok(_) => stream.append(&mut buf),
                                Err(_) => break,
                            }
                        }
                    }
                    stream
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("consumer panicked")).collect()
    });

    let mut seen = HashSet::new();
    for stream in &streams {
        let mut last = vec![None::<u64>; producers];
        for &v in stream {
            assert!(seen.insert(v), "value {v:#x} delivered twice");
            let (p, seq) = ((v >> 48) as usize, v & 0xffff_ffff_ffff);
            if let Some(prev) = last[p] {
                assert!(
                    prev < seq,
                    "producer {p} reordered within one consumer: {prev} before {seq}"
                );
            }
            last[p] = Some(seq);
        }
    }
    assert_eq!(seen.len(), producers * per, "lost values");
}

/// Seeded adversarial stalls across the whole channel stack — routing,
/// batching, the park/wake protocol, and the wCQ engine underneath —
/// must preserve the §15 contract: exactly-once, FIFO per producer
/// within each consumer, and no lost wakeups.
#[test]
fn channel_fifo_per_producer_under_seeded_stalls() {
    quiet_chaos_kills();
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const THREADS: usize = PRODUCERS + CONSUMERS;
    let per = testing::scaled(1_200);
    for seed in [5u64, 77, 0xC0DE] {
        let session = chaos::install(FaultPlan::seeded(seed, CHAN_WCQ_SITES, THREADS, 12));
        let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(
            ChannelConfig::new()
                .with_shards(2)
                .with_max_senders(PRODUCERS)
                .with_max_receivers(CONSUMERS),
            256,
        );
        channel_chaos_round(&chan, PRODUCERS, CONSUMERS, per, None);
        let report = session.report();
        assert!(report.stalls > 0, "seeded plan must actually stall (seed {seed})");
    }
}

/// The ISSUE acceptance scenario, aimed squarely at the blocking
/// receiver: stalls parked **inside the park window** (between waiter
/// registration and the pre-park re-check) and **inside the wake path**
/// (between the sleepers-gauge read and the waiter pop), under a yield
/// storm, on both shard cores. The Dekker sleepers protocol plus the
/// wake-token pass-on rule must guarantee that no receiver stays parked
/// while a value it could consume sits in a shard — a 10 s timeout
/// turns a lost wakeup into a panic instead of a hang.
#[test]
fn channel_parked_receivers_never_lose_wakeups() {
    quiet_chaos_kills();
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    let per = testing::scaled(800);
    // Early occurrence indices: the round produces a handful of park
    // windows per receiver (throttled producers, small ring), so deep
    // indices would silently never fire and the assert below would
    // reject the run.
    for (hit, yields) in [(0u64, 60u32), (2, 200)] {
        let plan = || {
            FaultPlan::new()
                .stall("chan.park", ThreadSel::Id(2), hit, yields)
                .stall("chan.park", ThreadSel::Id(3), hit + 1, yields)
                .stall("chan.wake", ThreadSel::Id(0), hit, yields)
                .stall("chan.wake", ThreadSel::Id(1), hit + 1, yields)
                .with_storm(9, 1)
        };
        {
            let session = chaos::install(plan());
            let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(
                ChannelConfig::new()
                    .with_shards(2)
                    .with_max_senders(PRODUCERS)
                    .with_max_receivers(CONSUMERS),
                64, // small ring: senders hit Full and the full retry/notify path
            );
            channel_chaos_round(&chan, PRODUCERS, CONSUMERS, per, Some(Duration::from_micros(200)));
            let report = session.report();
            assert!(report.stalls > 0, "park/wake stalls must fire (wcq hit={hit} steps={})", report.total_steps);
        }
        {
            let session = chaos::install(plan());
            let chan: Channel<u64, WfQueue<u64>> = Channel::kp(
                ChannelConfig::new()
                    .with_shards(2)
                    .with_max_senders(PRODUCERS)
                    .with_max_receivers(CONSUMERS),
            );
            channel_chaos_round(&chan, PRODUCERS, CONSUMERS, per, Some(Duration::from_micros(200)));
            let report = session.report();
            assert!(report.stalls > 0, "park/wake stalls must fire (kp hit={hit} steps={})", report.total_steps);
        }
    }
}

/// The sender-side mirror of the round above, aimed at the capacity
/// park path added for overload control (DESIGN.md §16): stalls parked
/// **inside the send-park window** (between a refused sender's waiter
/// registration and its pre-park re-check) and **inside the wake path**
/// (between the tx sleepers-gauge read and the waiter pop), under a
/// yield storm. Producers use `send_timeout` with a generous deadline:
/// a `Timeout` while receivers are still draining IS a lost wakeup,
/// converted from a hang into a panic.
#[test]
fn channel_parked_senders_never_lose_wakeups() {
    quiet_chaos_kills();
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    let per = testing::scaled(600);
    for (hit, yields) in [(0u64, 60u32), (2, 200)] {
        let session = chaos::install(
            FaultPlan::new()
                .stall("chan.send_park", ThreadSel::Id(0), hit, yields)
                .stall("chan.send_park", ThreadSel::Id(1), hit + 1, yields)
                .stall("chan.wake", ThreadSel::Id(2), hit, yields)
                .stall("chan.wake", ThreadSel::Id(3), hit + 1, yields)
                .with_storm(9, 1),
        );
        let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(
            ChannelConfig::new()
                .with_shards(2)
                .with_max_senders(PRODUCERS)
                .with_max_receivers(CONSUMERS),
            16, // tiny ring: senders saturate it and park constantly
        );
        let txs: Vec<_> = (0..PRODUCERS).map(|_| chan.sender()).collect();
        let rxs: Vec<_> = (0..CONSUMERS).map(|_| chan.receiver()).collect();
        let streams: Vec<Vec<u64>> = std::thread::scope(|s| {
            for (p, mut tx) in txs.into_iter().enumerate() {
                s.spawn(move || {
                    let _token = chaos::register_thread(p);
                    let p = p as u64;
                    for seq in 0..per as u64 {
                        match tx.send_timeout((p << 48) | seq, Duration::from_secs(10)) {
                            Ok(()) => {}
                            Err(SendTimeoutError::Timeout(v)) => panic!(
                                "lost wakeup: sender timed out on {v:#x} with receivers live"
                            ),
                            Err(SendTimeoutError::Disconnected(_)) => {
                                panic!("receivers vanished")
                            }
                        }
                    }
                });
            }
            let handles: Vec<_> = rxs
                .into_iter()
                .enumerate()
                .map(|(c, mut rx)| {
                    s.spawn(move || {
                        let _token = chaos::register_thread(PRODUCERS + c);
                        let mut stream = Vec::new();
                        loop {
                            match rx.recv_timeout(Duration::from_secs(10)) {
                                Ok(v) => stream.push(v),
                                Err(RecvTimeoutError::Disconnected) => break,
                                Err(RecvTimeoutError::Timeout) => {
                                    panic!("lost wakeup: receiver timed out with senders live")
                                }
                            }
                            // Think time so the ring refills and the
                            // senders genuinely park again.
                            if stream.len() % 16 == 0 {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                        }
                        stream
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("consumer panicked")).collect()
        });
        let mut seen = HashSet::new();
        for stream in &streams {
            let mut last = [None::<u64>; PRODUCERS];
            for &v in stream {
                assert!(seen.insert(v), "value {v:#x} delivered twice");
                let (p, seq) = ((v >> 48) as usize, v & 0xffff_ffff_ffff);
                if let Some(prev) = last[p] {
                    assert!(prev < seq, "producer {p} reordered: {prev} before {seq}");
                }
                last[p] = Some(seq);
            }
        }
        assert_eq!(seen.len(), PRODUCERS * per, "lost values");
        let report = session.report();
        assert!(
            report.stalls > 0,
            "send-park/wake stalls must fire (hit={hit} steps={})",
            report.total_steps
        );
        let snap = chan.health_snapshot();
        let parks: u64 = snap.shards.iter().map(|s| s.tx_parks).sum();
        assert!(parks > 0, "senders never parked — the round tested nothing: {snap:?}");
    }
}

/// Deadline accuracy under seeded adversarial stalls: with the chaos
/// plan free to park threads inside the park/wake/admit windows, a
/// timed wait may come back late — never early. Both directions are
/// pinned: `recv_timeout` against an empty channel, `send_timeout`
/// against a full ring and against a closed admission gate.
#[test]
fn channel_deadlines_never_fire_early_under_seeded_stalls() {
    quiet_chaos_kills();
    let timeout = Duration::from_millis(30);
    for seed in [11u64, 99, 0xD1A1] {
        let session = chaos::install(FaultPlan::seeded(seed, CHAN_WCQ_SITES, 2, 8));
        {
            // Full bounded ring: the engine refuses, the sender parks.
            let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(
                ChannelConfig::new().with_shards(1).with_max_senders(1).with_max_receivers(1),
                8,
            );
            let mut tx = chan.sender();
            let mut rx = chan.receiver();
            let _token = chaos::register_thread(0);
            while tx.try_send(0).is_ok() {}
            let start = std::time::Instant::now();
            assert!(matches!(
                tx.send_timeout(1, timeout),
                Err(SendTimeoutError::Timeout(1))
            ));
            assert!(
                start.elapsed() >= timeout,
                "send_timeout returned early under stalls (seed {seed})"
            );
            // Empty after a full drain: the receiver parks.
            while rx.try_recv().is_ok() {}
            let start = std::time::Instant::now();
            assert_eq!(rx.recv_timeout(timeout), Err(RecvTimeoutError::Timeout));
            assert!(
                start.elapsed() >= timeout,
                "recv_timeout returned early under stalls (seed {seed})"
            );
        }
        {
            // Closed admission gate over the unbounded engine: the
            // bounded re-poll park must still honor the deadline.
            let chan: Channel<u64, WfQueue<u64>> = Channel::kp(
                ChannelConfig::new()
                    .with_shards(1)
                    .with_max_senders(1)
                    .with_max_receivers(1)
                    .with_overload(OverloadConfig::disabled().with_depth_quota(4)),
            );
            let mut tx = chan.sender();
            let _rx = chan.receiver();
            while tx.try_send(0).is_ok() {}
            let start = std::time::Instant::now();
            assert!(matches!(
                tx.send_timeout(1, timeout),
                Err(SendTimeoutError::Timeout(1))
            ));
            assert!(
                start.elapsed() >= timeout,
                "gated send_timeout returned early under stalls (seed {seed})"
            );
        }
        drop(session);
    }
}

/// Kill-mid-quarantine: a consumer thread dies at an engine site while
/// draining a quarantined shard. The quarantine episode must still
/// converge — the surviving drain completes, the shard re-admits, and
/// the ledger balances minus at most the one value that unwound away
/// with the kill. (`chan.*` sites are stall-only, so the kill targets
/// the KP fast-path dequeue step underneath — the path the channel's
/// default `Config::fast()` engines drain through.)
#[test]
fn channel_quarantine_survives_consumer_killed_mid_drain() {
    quiet_chaos_kills();
    let session = chaos::install(
        FaultPlan::new()
            .kill("kp.fast.deq", ThreadSel::Id(0), 5)
            .with_storm(7, 1),
    );
    let chan: Channel<u64, WfQueue<u64>> = Channel::kp(
        ChannelConfig::new()
            .with_shards(1)
            .with_max_senders(1)
            .with_max_receivers(2)
            .with_overload(
                OverloadConfig::disabled()
                    .with_depth_quota(16)
                    .with_watchdog(2, Duration::from_millis(5))
                    .with_tick_interval(Duration::from_millis(1))
                    .with_probe_interval(Duration::from_millis(2)),
            ),
    );
    let mut tx = chan.sender();
    // Stalled-consumer overload: overfill, then offer until quarantined.
    let mut sent = 0u64;
    while tx.try_send(sent).is_ok() {
        sent += 1;
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while chan.health_snapshot().quarantined() == 0 {
        assert!(deadline > std::time::Instant::now(), "never quarantined");
        let _ = tx.try_send(sent);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Mint the survivor before the victim runs: the victim's drop must
    // not be the last receiver leaving (that would latch the channel
    // closed instead of testing recovery).
    let mut rx = chan.receiver();

    // The victim consumer drains the quarantined shard until the
    // planned kill unwinds out of a dequeue; the value it was claiming
    // may unwind away with it (at most one missing).
    let mut drained: Vec<u64> = Vec::new();
    let mut kills = 0usize;
    std::thread::scope(|s| {
        let drained = &mut drained;
        let kills = &mut kills;
        let chan = &chan;
        s.spawn(move || {
            let mut rx = chan.receiver();
            let _token = chaos::register_thread(0);
            loop {
                match catch_unwind(AssertUnwindSafe(|| rx.try_recv())) {
                    Ok(Ok(v)) => drained.push(v),
                    Ok(Err(_)) => break, // empty: stop, the survivor takes over
                    Err(e) => {
                        assert!(
                            e.downcast_ref::<ChaosKill>().is_some(),
                            "only the planned kill may escape"
                        );
                        *kills += 1;
                        break; // sudden death mid-quarantine
                    }
                }
            }
        });
    });
    assert_eq!(kills, 1, "the planned kill must land mid-drain");
    assert_eq!(session.report().kills, 1);

    // The surviving consumer finishes the drain; the shard re-admits.
    while let Ok(v) = rx.try_recv() {
        drained.push(v);
    }
    tx.send_timeout(sent, Duration::from_secs(30))
        .expect("shard never re-admitted after the mid-quarantine kill");
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(sent));
    assert_eq!(chan.health_snapshot().shards[0].state, HealthState::Healthy);

    // Ledger: nothing invented or duplicated, at most one value lost
    // to the kill, order preserved across both drain phases.
    let mut seen = HashSet::new();
    let mut last = None::<u64>;
    for &v in &drained {
        assert!(v < sent, "invented value {v}");
        assert!(seen.insert(v), "value {v} dequeued twice");
        if let Some(prev) = last {
            assert!(prev < v, "FIFO broke across the kill: {prev} before {v}");
        }
        last = Some(v);
    }
    let missing = sent as usize - seen.len();
    assert!(missing <= 1, "{missing} values lost to one kill (bound: 1)");
}
