//! Large-history linearizability screening: the exact WGL check is
//! exponential, so `tests/linearizability.rs` keeps its rounds tiny.
//! Here we record *big* concurrent histories (thousands of operations)
//! from every queue and screen them with the linear-time
//! necessary-condition checker — any violation is a hard proof of a
//! bug (invented/duplicated values, FIFO reordering between strictly
//! ordered enqueues, or a false empty observation).

use linearize::{check_necessary, History, QueueOp, Recorder};
use queue_traits::{ConcurrentQueue, QueueHandle};

use kp_queue::{Config, WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};

fn record_big<Q: ConcurrentQueue<u64> + Sync>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> History<QueueOp> {
    let recorder = Recorder::new();
    let mut logs = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let recorder = &recorder;
                let queue = &queue;
                s.spawn(move || {
                    let mut h = queue.register().expect("register");
                    let mut log = recorder.log::<QueueOp>(t);
                    let mut x = seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    for i in 0..ops_per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if x % 100 < 60 {
                            let v = ((t as u64) << 40) | i as u64; // unique
                            log.record(|| h.enqueue(v), |_| QueueOp::Enqueue(v));
                        } else {
                            log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
                        }
                    }
                    log
                })
            })
            .collect();
        for h in handles {
            logs.push(h.join().unwrap());
        }
    });
    History::from_logs(logs)
}

fn screen<Q: ConcurrentQueue<u64> + Sync>(make: impl Fn() -> Q, name: &str) {
    const THREADS: usize = 6;
    let ops = queue_traits::testing::scaled(4_000);
    const ROUNDS: usize = 3;
    for round in 0..ROUNDS {
        let queue = make();
        let history = record_big(&queue, THREADS, ops, 31 * round as u64 + 5);
        assert_eq!(history.len(), THREADS * ops);
        if let Some(v) = check_necessary(&history) {
            panic!("{name}: round {round}: necessary condition violated: {v:?}");
        }
    }
}

#[test]
fn big_histories_ms_epoch() {
    screen(MsQueue::<u64>::new, "MsQueue");
}

#[test]
fn big_histories_ms_hazard() {
    screen(MsQueueHp::<u64>::new, "MsQueueHp");
}

#[test]
fn big_histories_mutex() {
    screen(MutexQueue::<u64>::new, "MutexQueue");
}

#[test]
fn big_histories_wf_base() {
    screen(|| WfQueue::with_config(6, Config::base()), "WfQueue(base)");
}

#[test]
fn big_histories_wf_opt_both() {
    screen(
        || WfQueue::with_config(6, Config::opt_both()),
        "WfQueue(opt1+2)",
    );
}

#[test]
fn big_histories_wf_hazard() {
    screen(
        || WfQueueHp::with_config(6, Config::opt_both()),
        "WfQueueHp(opt1+2)",
    );
}

/// Meta-test: the screen catches a broken queue at scale (a stack
/// reorders strictly ordered enqueues almost immediately).
#[test]
fn screen_rejects_lifo_at_scale() {
    use parking_lot::Mutex;
    struct Lifo(Mutex<Vec<u64>>);
    struct H<'q>(&'q Lifo);
    impl QueueHandle<u64> for H<'_> {
        fn enqueue(&mut self, v: u64) {
            self.0 .0.lock().push(v);
        }
        fn dequeue(&mut self) -> Option<u64> {
            self.0 .0.lock().pop()
        }
    }
    impl ConcurrentQueue<u64> for Lifo {
        type Handle<'a> = H<'a>;
        fn register(&self) -> Result<H<'_>, queue_traits::RegistrationError> {
            Ok(H(self))
        }
    }

    // Single-threaded so enqueues are strictly ordered: any LIFO pop of
    // two resident elements violates the FIFO condition.
    let q = Lifo(Mutex::new(Vec::new()));
    let recorder = Recorder::new();
    let mut log = recorder.log::<QueueOp>(0);
    let mut h = q.register().unwrap();
    for v in 0..50u64 {
        log.record(|| h.enqueue(v), |_| QueueOp::Enqueue(v));
    }
    for _ in 0..50 {
        log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
    }
    let history = History::from_logs([log]);
    assert!(
        check_necessary(&history).is_some(),
        "LIFO order must violate the FIFO necessary condition"
    );
}
