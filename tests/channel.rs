//! Cross-engine integration tests for the sharded channel front-end
//! (DESIGN.md §15): the same MPMC contract — exactly-once delivery and
//! FIFO per producer within each consumer's stream — exercised over
//! both shard cores (bounded wCQ ring, unbounded Kogan–Petrank), plus
//! the capacity/disconnect edges and the async receiver running on the
//! tokio task pool.

use std::collections::HashSet;
use std::time::Duration;

use wfq_repro::kp_channel::{Channel, ChannelConfig, RecvTimeoutError, TrySendError};
use wfq_repro::kp_queue::WfQueue;
use wfq_repro::traits::ConcurrentQueue;
use wfq_repro::wcq::WcQueue;

fn cfg(shards: usize, senders: usize, receivers: usize) -> ChannelConfig {
    ChannelConfig::new()
        .with_shards(shards)
        .with_max_senders(senders)
        .with_max_receivers(receivers)
}

/// Tags a value with its producer so consumers can audit order.
fn tag(p: u64, seq: u64) -> u64 {
    (p << 48) | seq
}

/// Runs `producers x per` tagged values through `chan` with a mix of
/// scalar and batched sends, collects every consumer's stream, and
/// checks exactly-once delivery plus FIFO-per-producer within each
/// stream (the documented ordering contract: no cross-consumer claim).
fn mpmc_exactly_once<Q: ConcurrentQueue<u64>>(
    chan: &Channel<u64, Q>,
    producers: usize,
    consumers: usize,
    per: usize,
) {
    // Mint every handle up front: minting concurrently with the drop
    // of the last live sender is the documented logical race (a fast
    // producer could finish and drop before the next mint, latching
    // the channel closed).
    let txs: Vec<_> = (0..producers).map(|_| chan.sender()).collect();
    let rxs: Vec<_> = (0..consumers).map(|_| chan.receiver()).collect();
    let streams: Vec<Vec<u64>> = std::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            let p = p as u64;
            s.spawn(move || {
                let mut seq = 0u64;
                while (seq as usize) < per {
                    if seq.is_multiple_of(3) {
                        // A small batch...
                        let n = 8.min(per as u64 - seq);
                        tx.send_batch((0..n).map(|i| tag(p, seq + i)))
                            .expect("receivers vanished");
                        seq += n;
                    } else {
                        // ...then scalar sends, so both paths interleave.
                        tx.send(tag(p, seq)).expect("receivers vanished");
                        seq += 1;
                    }
                }
            });
        }
        let handles: Vec<_> = rxs
            .into_iter()
            .map(|mut rx| {
                s.spawn(move || {
                    let mut stream = Vec::new();
                    let mut buf = Vec::with_capacity(16);
                    while rx.recv_batch(&mut buf, 16).is_ok() {
                        stream.append(&mut buf);
                    }
                    stream
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("consumer panicked")).collect()
    });

    let mut seen = HashSet::new();
    for stream in &streams {
        let mut last = vec![None::<u64>; producers];
        for &v in stream {
            assert!(seen.insert(v), "value {v:#x} delivered twice");
            let (p, seq) = ((v >> 48) as usize, v & 0xffff_ffff_ffff);
            if let Some(prev) = last[p] {
                assert!(prev < seq, "producer {p} reordered within one consumer");
            }
            last[p] = Some(seq);
        }
    }
    assert_eq!(seen.len(), producers * per, "lost values");
}

#[test]
fn mpmc_exactly_once_over_wcq_core() {
    for shards in [1, 3] {
        let chan = Channel::wcq(cfg(shards, 3, 2), 256);
        mpmc_exactly_once(&chan, 3, 2, 600);
    }
}

#[test]
fn mpmc_exactly_once_over_kp_core() {
    for shards in [1, 3] {
        let chan = Channel::kp(cfg(shards, 3, 2));
        mpmc_exactly_once(&chan, 3, 2, 600);
    }
}

/// The bounded core surfaces capacity as `Full` without blocking, and
/// the same channel recovers once a receiver drains it.
#[test]
fn bounded_core_full_then_recovers() {
    let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg(1, 1, 1), 64);
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    let mut accepted = 0u64;
    let overflow = loop {
        match tx.try_send(accepted) {
            Ok(()) => accepted += 1,
            Err(TrySendError::Full(v)) => break v,
            Err(TrySendError::Disconnected(_)) => panic!("receiver still live"),
        }
    };
    assert_eq!(accepted, 64, "ring accepts exactly its capacity");
    assert_eq!(overflow, 64, "rejected value returned intact");
    for expect in 0..accepted {
        assert_eq!(rx.try_recv(), Ok(expect), "drain is FIFO");
    }
    tx.try_send(overflow).expect("drained ring accepts again");
    assert_eq!(rx.try_recv(), Ok(overflow));
}

/// The unbounded core never reports `Full`; a burst far beyond any
/// ring size just grows the queue.
#[test]
fn unbounded_core_absorbs_bursts() {
    let chan: Channel<u64, WfQueue<u64>> = Channel::kp(cfg(1, 1, 1));
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    let sent = tx.send_batch(0..20_000).expect("receiver live");
    assert_eq!(sent, 20_000);
    let mut buf = Vec::new();
    let mut got = 0;
    while got < 20_000 {
        got += rx.recv_batch(&mut buf, 1024).expect("values present");
        buf.clear();
    }
    assert_eq!(got, 20_000);
}

/// `recv_timeout` reports `Timeout` on a live-but-idle channel and
/// `Disconnected` after the last sender is gone and the queue drained.
#[test]
fn recv_timeout_distinguishes_idle_from_disconnected() {
    let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg(2, 1, 1), 64);
    let tx = chan.sender();
    let mut rx = chan.receiver();
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(10)),
        Err(RecvTimeoutError::Timeout)
    );
    drop(tx);
    assert_eq!(
        rx.recv_timeout(Duration::from_millis(10)),
        Err(RecvTimeoutError::Disconnected)
    );
}

/// The async receiver end to end on the tokio worker pool: OS-thread
/// producers, task consumers awaiting `recv_async`, disconnect resolves
/// every pending future to `None`. Exactly-once and FIFO-per-producer
/// audited per task.
#[test]
fn async_receivers_drain_thread_producers() {
    const PRODUCERS: usize = 2;
    const TASKS: usize = 3;
    const PER: usize = 2_000;
    // `tokio::spawn` wants `'static`; park the channel in a leaked
    // allocation as a process-lifetime service would.
    let chan: &'static Channel<u64, WcQueue<u64>> =
        Box::leak(Box::new(Channel::wcq(cfg(2, PRODUCERS, TASKS), 512)));

    // All senders minted before any can run to completion and drop
    // (see the mint-vs-last-drop note in `mpmc_exactly_once`).
    let txs: Vec<_> = (0..PRODUCERS).map(|_| chan.sender()).collect();
    let producers: Vec<_> = txs
        .into_iter()
        .enumerate()
        .map(|(p, mut tx)| {
            let p = p as u64;
            std::thread::spawn(move || {
                let mut seq = 0u64;
                while (seq as usize) < PER {
                    let n = 32.min(PER as u64 - seq);
                    tx.send_batch((0..n).map(|i| tag(p, seq + i)))
                        .expect("tasks vanished");
                    seq += n;
                }
            })
        })
        .collect();

    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(2)
        .enable_all()
        .build()
        .expect("runtime");
    let received: usize = rt.block_on(async {
        let mut tasks = Vec::new();
        for _ in 0..TASKS {
            let mut rx = chan.receiver();
            tasks.push(tokio::spawn(async move {
                let mut got = Vec::new();
                while let Some(v) = rx.recv_async().await {
                    got.push(v);
                }
                got
            }));
        }
        for p in producers {
            p.join().expect("producer panicked");
        }
        let mut seen = HashSet::new();
        for t in tasks {
            let stream = t.await.expect("task cancelled");
            let mut last = [None::<u64>; PRODUCERS];
            for v in stream {
                assert!(seen.insert(v), "value {v:#x} delivered twice");
                let (p, seq) = ((v >> 48) as usize, v & 0xffff_ffff_ffff);
                if let Some(prev) = last[p] {
                    assert!(prev < seq, "producer {p} reordered within one task");
                }
                last[p] = Some(seq);
            }
        }
        seen.len()
    });
    assert_eq!(received, PRODUCERS * PER);
}
