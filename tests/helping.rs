//! Cross-thread helping tests: a genuinely stalled OS thread (parked
//! after publishing its operation descriptor) has its operation
//! completed by peers running on other threads — the property that
//! makes the queue wait-free.
//!
//! These complement kp-queue's same-thread unit tests by exercising the
//! real multi-thread path with channels coordinating the stall.

use std::sync::mpsc;

use kp_queue::{Config, ConcurrentQueue, WfQueue};

#[test]
fn parked_enqueuer_is_helped_across_threads() {
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::base());
    let (ready_tx, ready_rx) = mpsc::channel();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel();

    std::thread::scope(|s| {
        // The stalled thread: publishes an enqueue descriptor and parks.
        {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                let pending = h.begin_enqueue_unhelped(42);
                ready_tx.send(pending.phase()).unwrap();
                resume_rx.recv().unwrap(); // park until the helper finished
                assert!(
                    !pending.is_pending(),
                    "helper thread must have completed the stalled enqueue"
                );
                pending.finish();
            });
        }

        // The helper thread: runs ordinary operations, which (base
        // policy) help all older pending operations first.
        {
            let q = &q;
            s.spawn(move || {
                let stalled_phase: i64 = ready_rx.recv().unwrap();
                let mut h = q.register().unwrap();
                h.enqueue(7);
                // FIFO: the stalled op (phase older than ours)
                // linearized before our enqueue.
                assert_eq!(h.dequeue(), Some(42), "stalled enqueue went first");
                assert_eq!(h.dequeue(), Some(7));
                assert!(stalled_phase >= 0);
                done_tx.send(()).unwrap();
            });
        }

        done_rx.recv().unwrap();
        resume_tx.send(()).unwrap();
    });

    assert!(q.stats().helped_appends >= 1);
    assert!(q.is_empty());
}

#[test]
fn parked_dequeuer_is_helped_across_threads() {
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::base());
    {
        let mut h = q.register().unwrap();
        h.enqueue(100);
        h.enqueue(200);
    }

    let (ready_tx, ready_rx) = mpsc::channel();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel();

    std::thread::scope(|s| {
        {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                let pending = h.begin_dequeue_unhelped();
                ready_tx.send(()).unwrap();
                resume_rx.recv().unwrap();
                assert!(!pending.is_pending());
                // The stalled dequeue linearized before the helper's own
                // dequeue, so it must receive the older element.
                assert_eq!(pending.finish(), Some(100));
            });
        }

        {
            let q = &q;
            s.spawn(move || {
                ready_rx.recv().unwrap();
                let mut h = q.register().unwrap();
                assert_eq!(h.dequeue(), Some(200), "stalled dequeue owns 100");
                done_tx.send(()).unwrap();
            });
        }

        done_rx.recv().unwrap();
        resume_tx.send(()).unwrap();
    });

    assert!(q.stats().helped_locks >= 1);
    assert!(q.is_empty());
}

#[test]
fn many_parked_ops_all_completed_by_one_helper() {
    // Three stalled enqueuers; a single helper operation completes all
    // of them (help() scans every older pending descriptor).
    let q: WfQueue<u64> = WfQueue::with_config(8, Config::base());
    let (ready_tx, ready_rx) = mpsc::channel();

    std::thread::scope(|s| {
        let mut resume_txs = Vec::new();
        for t in 0..3u64 {
            let q = &q;
            let ready_tx = ready_tx.clone();
            let (resume_tx, resume_rx) = mpsc::channel::<()>();
            resume_txs.push(resume_tx);
            s.spawn(move || {
                let mut h = q.register().unwrap();
                let pending = h.begin_enqueue_unhelped(t);
                ready_tx.send(()).unwrap();
                resume_rx.recv().unwrap();
                assert!(!pending.is_pending(), "thread {t} was not helped");
                pending.finish();
            });
        }

        for _ in 0..3 {
            ready_rx.recv().unwrap();
        }
        let mut h = q.register().unwrap();
        h.enqueue(99); // helps all three stalled ops first
        for tx in resume_txs {
            tx.send(()).unwrap();
        }
        // All four values present; the stalled trio precedes ours.
        let mut seen = Vec::new();
        while let Some(v) = h.dequeue() {
            seen.push(v);
        }
        assert_eq!(seen.len(), 4);
        assert_eq!(*seen.last().unwrap(), 99, "helper's value enqueued last");
        let mut trio = seen[..3].to_vec();
        trio.sort_unstable();
        assert_eq!(trio, vec![0, 1, 2]);
    });
    assert_eq!(q.stats().helped_appends, 3);
}

#[test]
fn stalled_op_survives_chunked_policies_eventually() {
    // Under opt1 (help one peer per op, cyclically) a stalled op is
    // reached within at most `n` helper operations.
    let q: WfQueue<u64> = WfQueue::with_config(4, Config::opt_both());
    let (ready_tx, ready_rx) = mpsc::channel();
    let (resume_tx, resume_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel();

    std::thread::scope(|s| {
        {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                let pending = h.begin_enqueue_unhelped(1234);
                ready_tx.send(()).unwrap();
                resume_rx.recv().unwrap();
                assert!(
                    !pending.is_pending(),
                    "after n helper ops the cyclic cursor must have visited us"
                );
                pending.finish();
            });
        }

        {
            let q = &q;
            s.spawn(move || {
                ready_rx.recv().unwrap();
                let mut h = q.register().unwrap();
                // n = 4 slots ⇒ 4 operations guarantee a full cursor lap.
                for i in 0..8 {
                    h.enqueue(i);
                }
                done_tx.send(()).unwrap();
            });
        }

        done_rx.recv().unwrap();
        resume_tx.send(()).unwrap();
    });
    // 1234 must be among the queue contents exactly once.
    let mut h = q.register().unwrap();
    let mut count = 0;
    while let Some(v) = h.dequeue() {
        if v == 1234 {
            count += 1;
        }
    }
    assert_eq!(count, 1);
}
