//! Overload-control integration tests (DESIGN.md §16): parked bounded
//! send with deadlines, admission control over the unbounded KP
//! engines, and the shard-health quarantine state machine — exercised
//! through the public channel API over both shard cores.
//!
//! The timing assertions here are one-sided on purpose: a deadline API
//! may return *late* under scheduler noise (CI boxes stall threads for
//! tens of milliseconds), but returning **early** is a correctness bug
//! — a caller pacing a retry loop off `send_timeout` would spin. The
//! upper bounds asserted are deliberately loose.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use wfq_repro::kp_channel::{
    Channel, ChannelConfig, HealthState, OverloadConfig, QuarantinePolicy, RecvTimeoutError,
    SendTimeoutError, TrySendError,
};
use wfq_repro::kp_queue::WfQueue;
use wfq_repro::wcq::WcQueue;

fn cfg(shards: usize, senders: usize, receivers: usize) -> ChannelConfig {
    ChannelConfig::new()
        .with_shards(shards)
        .with_max_senders(senders)
        .with_max_receivers(receivers)
}

/// An aggressive watchdog for tests: 1 ms ticks, 2-tick / 5 ms freeze
/// oracle, 2 ms probe pacing — tuned so a stalled shard quarantines in
/// milliseconds instead of the production-scale seconds.
fn hair_trigger(quota: usize) -> OverloadConfig {
    OverloadConfig::disabled()
        .with_depth_quota(quota)
        .with_watchdog(2, Duration::from_millis(5))
        .with_tick_interval(Duration::from_millis(1))
        .with_probe_interval(Duration::from_millis(2))
}

/// Loose upper bound on how late a timed wait may return on a noisy
/// box. Only the lower bound (never early) is a hard contract.
const SLACK: Duration = Duration::from_secs(5);

// ---------------------------------------------------------------------
// deadline accuracy: never early, not unboundedly late
// ---------------------------------------------------------------------

#[test]
fn recv_timeout_is_never_early_and_roughly_on_time() {
    let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg(1, 1, 1), 8);
    let _tx = chan.sender();
    let mut rx = chan.receiver();
    for timeout_ms in [5u64, 25, 60] {
        let timeout = Duration::from_millis(timeout_ms);
        let start = Instant::now();
        assert_eq!(rx.recv_timeout(timeout), Err(RecvTimeoutError::Timeout));
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "recv_timeout({timeout:?}) returned early at {elapsed:?}");
        assert!(elapsed <= timeout + SLACK, "recv_timeout({timeout:?}) took {elapsed:?}");
    }
}

#[test]
fn recv_deadline_is_never_early() {
    let chan: Channel<u64, WfQueue<u64>> = Channel::kp(cfg(1, 1, 1));
    let _tx = chan.sender();
    let mut rx = chan.receiver();
    let deadline = Instant::now() + Duration::from_millis(30);
    assert_eq!(rx.recv_deadline(deadline), Err(RecvTimeoutError::Timeout));
    assert!(Instant::now() >= deadline, "recv_deadline returned before its deadline");
}

#[test]
fn send_timeout_is_never_early_and_roughly_on_time() {
    let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg(1, 1, 1), 8);
    let mut tx = chan.sender();
    let _rx = chan.receiver();
    for v in 0..8 {
        tx.try_send(v).unwrap();
    }
    for timeout_ms in [5u64, 25, 60] {
        let timeout = Duration::from_millis(timeout_ms);
        let start = Instant::now();
        match tx.send_timeout(99, timeout) {
            Err(SendTimeoutError::Timeout(99)) => {}
            other => panic!("expected Timeout(99), got {other:?}"),
        }
        let elapsed = start.elapsed();
        assert!(elapsed >= timeout, "send_timeout({timeout:?}) returned early at {elapsed:?}");
        assert!(elapsed <= timeout + SLACK, "send_timeout({timeout:?}) took {elapsed:?}");
    }
}

#[test]
fn send_deadline_against_admission_gate_is_never_early() {
    // The refusal here comes from the admission gate (unbounded engine,
    // soft quota), not the ring: the gated park path re-polls on a
    // bounded timer and must still honor the deadline exactly.
    let chan: Channel<u64, WfQueue<u64>> =
        Channel::kp(cfg(1, 1, 1).with_overload(OverloadConfig::disabled().with_depth_quota(4)));
    let mut tx = chan.sender();
    let _rx = chan.receiver();
    while tx.try_send(0).is_ok() {}
    let deadline = Instant::now() + Duration::from_millis(30);
    match tx.send_deadline(1, deadline) {
        Err(SendTimeoutError::Timeout(1)) => {}
        other => panic!("expected Timeout(1), got {other:?}"),
    }
    assert!(Instant::now() >= deadline, "send_deadline returned before its deadline");
}

// ---------------------------------------------------------------------
// parked send: blocked senders sleep, then complete
// ---------------------------------------------------------------------

/// A full ring parks its senders; a receiver draining at its own pace
/// must hand every freed slot to exactly one parked sender until all
/// values land — exactly-once, with the sends actually parking (the
/// snapshot park counters prove they did not spin).
#[test]
fn parked_senders_complete_as_receiver_drains() {
    const SENDERS: usize = 3;
    const PER: usize = 400;
    let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg(2, SENDERS, 1), 16);
    let txs: Vec<_> = (0..SENDERS).map(|_| chan.sender()).collect();
    let mut rx = chan.receiver();
    let streams: Vec<u64> = std::thread::scope(|s| {
        for (p, mut tx) in txs.into_iter().enumerate() {
            s.spawn(move || {
                let p = p as u64;
                for seq in 0..PER as u64 {
                    tx.send((p << 48) | seq).expect("receiver vanished");
                }
            });
        }
        let mut got = Vec::with_capacity(SENDERS * PER);
        let mut buf = Vec::with_capacity(32);
        while got.len() < SENDERS * PER {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(v) => got.push(v),
                Err(e) => panic!("receiver starved with senders parked: {e:?}"),
            }
            // Drain opportunistically, then let the ring refill so the
            // senders park again (otherwise this is just a throughput
            // test).
            rx.try_recv_batch(&mut buf, 32);
            got.append(&mut buf);
            if got.len() % 97 == 0 {
                std::thread::sleep(Duration::from_micros(300));
            }
        }
        got
    });
    let seen: HashSet<u64> = streams.iter().copied().collect();
    assert_eq!(seen.len(), SENDERS * PER, "lost or duplicated values");
    let snap = chan.health_snapshot();
    let parks: u64 = snap.shards.iter().map(|s| s.tx_parks).sum();
    assert!(parks > 0, "senders never parked — the ring never filled: {snap:?}");
}

/// The same blocking send over the unbounded KP engine with a soft
/// quota: the *gate* (not the engine) refuses, the sender parks on the
/// bounded re-poll path, and a draining receiver releases it.
#[test]
fn quota_gated_senders_complete_as_receiver_drains() {
    const PER: usize = 600;
    let chan: Channel<u64, WfQueue<u64>> =
        Channel::kp(cfg(1, 1, 1).with_overload(OverloadConfig::disabled().with_depth_quota(32)));
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    std::thread::scope(|s| {
        s.spawn(move || {
            for seq in 0..PER as u64 {
                tx.send(seq).expect("receiver vanished");
            }
        });
        for expect in 0..PER as u64 {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(v) => assert_eq!(v, expect, "single-producer FIFO broke across the gate"),
                Err(e) => panic!("receiver starved behind the admission gate: {e:?}"),
            }
            if expect % 64 == 0 {
                std::thread::sleep(Duration::from_micros(200));
            }
        }
    });
    // The quota must have actually engaged: depth can never have
    // exceeded quota + in-flight slack. Quiescent now, so depth is 0.
    let snap = chan.health_snapshot();
    assert_eq!(snap.shards[0].depth, Some(0));
}

// ---------------------------------------------------------------------
// quarantine: detection, backpressure, re-admission
// ---------------------------------------------------------------------

/// A consumer stalls; the watchdog must walk the shard Healthy →
/// Suspect → Quarantined, keep refusing (Backpressure preserves FIFO),
/// and re-admit after the consumer resumes and drains — with every
/// value delivered exactly once across the whole episode.
#[test]
fn quarantine_detects_stall_and_readmits_after_drain() {
    let chan: Channel<u64, WfQueue<u64>> =
        Channel::kp(cfg(1, 1, 1).with_overload(hair_trigger(16)));
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    // Stalled consumer: overfill, then keep offering until quarantined.
    let mut sent = 0u64;
    while tx.try_send(sent).is_ok() {
        sent += 1;
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while chan.health_snapshot().quarantined() == 0 {
        assert!(
            Instant::now() < deadline,
            "watchdog never quarantined a stalled shard: {:?}",
            chan.health_snapshot()
        );
        let _ = tx.try_send(sent); // refused sends tick the watchdog
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(chan.health_snapshot().shards[0].state, HealthState::Quarantined);

    // Backpressure policy: still refusing while quarantined (modulo the
    // paced probe — tolerate a handful of accepted probes).
    let mut probe_accepts = 0u64;
    for _ in 0..50 {
        if tx.try_send(sent).is_ok() {
            sent += 1;
            probe_accepts += 1;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(probe_accepts <= 40, "quarantined shard accepted like a healthy one");

    // Consumer resumes: drain everything, exactly once, in order.
    for expect in 0..sent {
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(expect));
    }
    // Re-admission: blocking send must complete (inline readmit on the
    // refused-send path or at a probe tick).
    tx.send_timeout(sent, Duration::from_secs(30))
        .expect("drained shard never re-admitted");
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)), Ok(sent));
    let snap = chan.health_snapshot();
    assert_eq!(snap.shards[0].state, HealthState::Healthy);
    assert!(snap.shards[0].quarantines >= 1, "the episode was recorded: {snap:?}");
}

/// Reroute policy: with the sticky shard quarantined, sends detour to a
/// healthy shard and every value still arrives exactly once. (FIFO per
/// producer is explicitly forfeited across the detour — documented.)
#[test]
fn reroute_delivers_exactly_once_around_quarantined_shard() {
    let chan: Channel<u64, WfQueue<u64>> = Channel::kp(
        cfg(2, 1, 1).with_overload(hair_trigger(16).with_policy(QuarantinePolicy::Reroute)),
    );
    let mut tx = chan.sender();
    assert_eq!(tx.shard(), 0, "sticky routing starts at shard 0");
    let mut rx = chan.receiver();
    let mut sent = 0u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    while chan.health_snapshot().shards[0].state != HealthState::Quarantined {
        assert!(Instant::now() < deadline, "shard 0 never quarantined");
        if tx.try_send(sent).is_ok() {
            sent += 1;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    // Quarantined home shard + Reroute: blocking sends keep completing
    // without waiting for the stalled consumer.
    for _ in 0..200 {
        tx.send_timeout(sent, Duration::from_secs(10))
            .expect("reroute must keep accepting while home shard is quarantined");
        sent += 1;
    }
    assert!(
        chan.health_snapshot().shards[1].depth.unwrap() > 0,
        "detoured values must land on the healthy shard"
    );
    let mut seen = HashSet::new();
    while let Ok(v) = rx.try_recv() {
        assert!(seen.insert(v), "value {v} delivered twice across the detour");
    }
    assert_eq!(seen.len() as u64, sent, "values lost across the detour");
}

// ---------------------------------------------------------------------
// regression: a full, quarantined shard must not deadlock send_batch
// ---------------------------------------------------------------------

/// The trap: a bounded shard is both full (engine refuses) and
/// quarantined (gate refuses). The gate's refusal carries no Dekker
/// wakeup guarantee — re-admission is decided by a gauge, not by a
/// dequeue — so a sender parked unboundedly on it would sleep through
/// the shard's recovery. The gated park path re-polls on a bounded
/// timer; this pins a `send_batch` straddling the sick shard, recovers
/// the consumer, and requires the batch to complete.
#[test]
fn full_quarantined_shard_does_not_deadlock_send_batch() {
    const BATCH: u64 = 200;
    let chan: Channel<u64, WcQueue<u64>> =
        Channel::wcq(cfg(1, 1, 1).with_overload(hair_trigger(8)), 16);
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    // Fill the ring to Full — beyond the quota of 8, so the shard is
    // overloaded *and* the engine refuses.
    let mut preload = 0u64;
    while tx.try_send(preload).is_ok() {
        preload += 1;
    }
    assert!(preload >= 8, "ring should accept past the soft quota before filling");
    // Let the watchdog confirm the quarantine while nothing drains.
    let deadline = Instant::now() + Duration::from_secs(30);
    while chan.health_snapshot().quarantined() == 0 {
        assert!(Instant::now() < deadline, "shard never quarantined: {:?}", chan.health_snapshot());
        let _ = tx.try_send(preload);
        std::thread::sleep(Duration::from_millis(2));
    }

    let batch_done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let done = &batch_done;
        s.spawn(move || {
            // Straddles the sick shard: far larger than ring capacity,
            // so it must park repeatedly against both refusal kinds.
            tx.send_batch(preload..preload + BATCH).expect("receiver vanished");
            done.store(true, Ordering::SeqCst);
        });
        // Give the batch time to wedge against the quarantined shard,
        // then recover the consumer slowly (each drain frees one slot).
        std::thread::sleep(Duration::from_millis(50));
        assert!(!batch_done.load(Ordering::SeqCst), "batch cannot finish against a full ring");
        let mut expect = 0u64;
        let total = preload + BATCH;
        while expect < total {
            match rx.recv_timeout(Duration::from_secs(10)) {
                Ok(v) => {
                    assert_eq!(v, expect, "FIFO broke across the quarantine episode");
                    expect += 1;
                }
                Err(e) => panic!(
                    "batch sender deadlocked against the quarantined shard \
                     (stuck at {expect}/{total}): {e:?}"
                ),
            }
        }
    });
    assert!(batch_done.load(Ordering::SeqCst), "send_batch never returned");
}

// ---------------------------------------------------------------------
// snapshot plumbing
// ---------------------------------------------------------------------

#[test]
fn health_snapshot_reports_park_traffic() {
    let chan: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg(1, 1, 1), 4);
    let mut tx = chan.sender();
    let mut rx = chan.receiver();
    // Force one receiver park (empty) and one sender park (full).
    assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
    for v in 0..4 {
        tx.try_send(v).unwrap();
    }
    assert!(matches!(tx.try_send(4), Err(TrySendError::Full(4))));
    assert!(matches!(
        tx.send_timeout(4, Duration::from_millis(5)),
        Err(SendTimeoutError::Timeout(4))
    ));
    let snap = chan.health_snapshot();
    assert!(snap.rx_parks >= 1, "receiver park not recorded: {snap:?}");
    assert!(snap.shards[0].tx_parks >= 1, "sender park not recorded: {snap:?}");
    assert_eq!(snap.rx_sleepers, 0, "nobody is parked now");
    assert_eq!(snap.shards[0].tx_sleepers, 0);
}
