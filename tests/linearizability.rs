//! End-to-end linearizability checking: record real multi-threaded
//! histories from every queue implementation and verify them against
//! the sequential FIFO specification with the WGL checker.
//!
//! This is the testing counterpart of the paper's §5 proof. Histories
//! are kept small per round (the check is NP-hard) but many rounds run,
//! each with fresh interleavings.

use linearize::{check, History, Outcome, QueueModel, QueueOp, Recorder};
use queue_traits::{ConcurrentQueue, QueueHandle};

use kp_queue::{Config, WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};
use wcq::{Config as WcqConfig, WcQueue};

/// Records one round: `threads` workers each perform `ops_per_thread`
/// operations (alternating enqueue-biased and dequeue-biased patterns),
/// returning the merged history.
fn record_round<Q: ConcurrentQueue<u64> + Sync>(
    queue: &Q,
    threads: usize,
    ops_per_thread: usize,
    seed: u64,
) -> History<QueueOp> {
    let recorder = Recorder::new();
    let mut logs = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let recorder = &recorder;
                let queue = &queue;
                s.spawn(move || {
                    let mut h = queue.register().expect("register");
                    let mut log = recorder.log::<QueueOp>(t);
                    // Simple deterministic per-thread op pattern, varied
                    // by the seed so rounds explore different mixes.
                    let mut x = seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    for i in 0..ops_per_thread {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        if x % 100 < 55 {
                            let v = ((t as u64) << 32) | i as u64;
                            log.record(|| h.enqueue(v), |_| QueueOp::Enqueue(v));
                        } else {
                            log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
                        }
                    }
                    log
                })
            })
            .collect();
        for h in handles {
            logs.push(h.join().unwrap());
        }
    });
    History::from_logs(logs)
}

fn assert_linearizable<Q: ConcurrentQueue<u64> + Sync>(make: impl Fn() -> Q, name: &str) {
    const ROUNDS: usize = 25;
    const THREADS: usize = 3;
    const OPS: usize = 10;
    for round in 0..ROUNDS {
        let queue = make();
        let history = record_round(&queue, THREADS, OPS, round as u64 * 7919 + 1);
        assert!(history.validate_stamps());
        match check(&QueueModel, &history) {
            Outcome::Linearizable => {}
            Outcome::NotLinearizable => panic!(
                "{name}: round {round} produced a NON-LINEARIZABLE history:\n{:#?}",
                history.ops()
            ),
            Outcome::Unknown => panic!(
                "{name}: round {round} exhausted the checker budget (shrink the round)"
            ),
        }
    }
}

#[test]
fn ms_queue_epoch_is_linearizable() {
    assert_linearizable(MsQueue::<u64>::new, "MsQueue");
}

#[test]
fn ms_queue_hp_is_linearizable() {
    assert_linearizable(MsQueueHp::<u64>::new, "MsQueueHp");
}

#[test]
fn mutex_queue_is_linearizable() {
    assert_linearizable(MutexQueue::<u64>::new, "MutexQueue");
}

#[test]
fn wf_base_is_linearizable() {
    assert_linearizable(|| WfQueue::with_config(4, Config::base()), "WfQueue(base)");
}

#[test]
fn wf_opt1_is_linearizable() {
    assert_linearizable(|| WfQueue::with_config(4, Config::opt1()), "WfQueue(opt1)");
}

#[test]
fn wf_opt2_is_linearizable() {
    assert_linearizable(|| WfQueue::with_config(4, Config::opt2()), "WfQueue(opt2)");
}

#[test]
fn wf_opt_both_is_linearizable() {
    assert_linearizable(
        || WfQueue::with_config(4, Config::opt_both()),
        "WfQueue(opt1+2)",
    );
}

#[test]
fn wf_hazard_pointer_is_linearizable() {
    // The §3.4 variant: same algorithm, wait-free reclamation, value
    // couriered through the descriptor.
    assert_linearizable(
        || WfQueueHp::with_config(4, Config::base()),
        "WfQueueHp(base)",
    );
    assert_linearizable(
        || WfQueueHp::with_config(4, Config::opt_both()),
        "WfQueueHp(opt1+2)",
    );
}

/// Descriptor/node-reuse churn: heavier per-thread op counts than the
/// default rounds, so each thread recycles its state-slot descriptor
/// (version bump per operation) and the node caches serve recycled
/// nodes many times *within one checked history*. A version-tag bug
/// that let a stale helper CAS replay a step, or a node republished
/// before its reader finished, would surface here as a duplicated or
/// invented value that the checker rejects. Runs with reuse on and off
/// so a failure differentiates the reuse machinery from the base
/// algorithm.
#[test]
fn wf_reuse_churn_is_linearizable() {
    const ROUNDS: usize = 6;
    const THREADS: usize = 3;
    const OPS: usize = 20;
    type MkConfig = fn() -> Config;
    let configs: [(MkConfig, &str); 2] = [
        (Config::opt_both, "reuse"),
        (|| Config::opt_both().with_reuse(false), "alloc"),
    ];
    for (cfg, label) in configs {
        for round in 0..ROUNDS {
            let seed = round as u64 * 104_729 + 13;
            let q = WfQueue::<u64>::with_config(THREADS, cfg());
            let history = record_round(&q, THREADS, OPS, seed);
            assert!(history.validate_stamps());
            assert_eq!(
                check(&QueueModel, &history),
                Outcome::Linearizable,
                "WfQueue({label}) round {round}"
            );
            let q = WfQueueHp::<u64>::with_config(THREADS, cfg());
            let history = record_round(&q, THREADS, OPS, seed);
            assert!(history.validate_stamps());
            assert_eq!(
                check(&QueueModel, &history),
                Outcome::Linearizable,
                "WfQueueHp({label}) round {round}"
            );
        }
    }
}

/// Fast-path/slow-path interleaving (DESIGN.md §12): half the handles
/// run the bounded lock-free fast path (odd tids), half are pinned to
/// the descriptor slow path (`set_fast_path(0)`, even tids), so every
/// checked history mixes raw MS CASes with helped descriptor-driven
/// ops on the same queue. A fast append the helpers fail to linearize
/// consistently, or a fast `deqTid` lock racing a helper's staged
/// dequeue, shows up here as a value duplicated, invented, or
/// reordered past the FIFO spec. A macro rather than a generic helper:
/// `set_fast_path` lives on the concrete handle types, not the trait.
macro_rules! record_mixed_round {
    ($queue:expr, $threads:expr, $ops:expr, $seed:expr) => {{
        let queue = $queue;
        let (threads, ops_per_thread, seed) = ($threads, $ops, $seed);
        let recorder = Recorder::new();
        let mut logs = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let recorder = &recorder;
                    let queue = &queue;
                    s.spawn(move || {
                        let mut h = queue.register().expect("register");
                        if t % 2 == 0 {
                            h.set_fast_path(0); // slow-path-only handle
                        }
                        let mut log = recorder.log::<QueueOp>(t);
                        let mut x = seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                        for i in 0..ops_per_thread {
                            x ^= x << 13;
                            x ^= x >> 7;
                            x ^= x << 17;
                            if x % 100 < 55 {
                                let v = ((t as u64) << 32) | i as u64;
                                log.record(|| h.enqueue(v), |_| QueueOp::Enqueue(v));
                            } else {
                                log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
                            }
                        }
                        log
                    })
                })
                .collect();
            for h in handles {
                logs.push(h.join().unwrap());
            }
        });
        History::from_logs(logs)
    }};
}

#[test]
fn wf_fast_path_mixed_handles_are_linearizable() {
    const ROUNDS: usize = 12;
    const THREADS: usize = 4;
    const OPS: usize = 10;
    for round in 0..ROUNDS {
        let seed = round as u64 * 6151 + 3;
        let history = record_mixed_round!(
            WfQueue::<u64>::with_config(THREADS, Config::fast()),
            THREADS,
            OPS,
            seed
        );
        assert!(history.validate_stamps());
        assert_eq!(
            check(&QueueModel, &history),
            Outcome::Linearizable,
            "WfQueue(fast, mixed handles) round {round}"
        );
        let history = record_mixed_round!(
            WfQueueHp::<u64>::with_config(THREADS, Config::fast()),
            THREADS,
            OPS,
            seed
        );
        assert!(history.validate_stamps());
        assert_eq!(
            check(&QueueModel, &history),
            Outcome::Linearizable,
            "WfQueueHp(fast, mixed handles) round {round}"
        );
    }
}

/// A starvation-prone mix: one fast handle with patience 1 against
/// slow-path peers, so the demotion paths (budget exhaustion *and*
/// starvation peek) both fire inside checked histories.
#[test]
fn wf_fast_path_low_patience_is_linearizable() {
    const ROUNDS: usize = 8;
    const THREADS: usize = 3;
    const OPS: usize = 10;
    for round in 0..ROUNDS {
        let seed = round as u64 * 31_337 + 11;
        let cfg = Config::fast().with_fast_path(1).with_starvation_patience(1);
        let history =
            record_mixed_round!(WfQueue::<u64>::with_config(THREADS, cfg), THREADS, OPS, seed);
        assert!(history.validate_stamps());
        assert_eq!(
            check(&QueueModel, &history),
            Outcome::Linearizable,
            "WfQueue(fast, patience 1) round {round}"
        );
    }
}

/// The wCQ ring engine (DESIGN.md §14) against the same FIFO spec.
/// Capacity 64 exceeds any possible backlog of these rounds, so the
/// blocking `enqueue` never waits and histories cannot deadlock.
#[test]
fn wcq_is_linearizable() {
    assert_linearizable(
        || WcQueue::with_config(4, WcqConfig::new().with_capacity(64)),
        "WcQueue",
    );
}

/// Patience 0 pins every ring operation to the helping slow path, so
/// each checked history is made of published records driven by
/// whichever thread gets there first — the wait-free machinery with no
/// fast-path ops diluting coverage.
#[test]
fn wcq_slow_path_is_linearizable() {
    assert_linearizable(
        || WcQueue::with_config(4, WcqConfig::slow_only().with_capacity(64)),
        "WcQueue(slow-only)",
    );
}

/// Ring-churn rounds: a 4-slot ring under op counts that lap it many
/// times over, so entry cycle tags advance far within one checked
/// history and the full-queue path fires constantly. `try_enqueue`
/// rejections are no-ops on the queue state and are not recorded
/// (recording a blocking `enqueue` could deadlock a full ring with
/// every thread producing).
#[test]
fn wcq_tiny_ring_churn_is_linearizable() {
    const ROUNDS: usize = 8;
    const THREADS: usize = 3;
    const OPS: usize = 30;
    type MkConfig = fn() -> WcqConfig;
    let configs: [(MkConfig, &str); 2] = [
        (|| WcqConfig::new().with_capacity(4), "default"),
        (|| WcqConfig::slow_only().with_capacity(4), "slow-only"),
    ];
    for (cfg, label) in configs {
        for round in 0..ROUNDS {
            let seed = round as u64 * 92_821 + 5;
            let q = WcQueue::<u64>::with_config(THREADS, cfg());
            let recorder = Recorder::new();
            let mut records = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..THREADS)
                    .map(|t| {
                        let recorder = &recorder;
                        let q = &q;
                        s.spawn(move || {
                            let mut h = q.register().expect("register");
                            let mut recs = Vec::new();
                            let mut x = seed ^ (t as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15);
                            for i in 0..OPS {
                                x ^= x << 13;
                                x ^= x >> 7;
                                x ^= x << 17;
                                if x % 100 < 55 {
                                    let v = ((t as u64) << 32) | i as u64;
                                    let invoke = recorder.stamp();
                                    let accepted = h.try_enqueue(v).is_ok();
                                    let ret = recorder.stamp();
                                    if accepted {
                                        recs.push(linearize::OpRecord {
                                            thread: t,
                                            op: QueueOp::Enqueue(v),
                                            invoke,
                                            ret,
                                        });
                                    }
                                } else {
                                    let invoke = recorder.stamp();
                                    let r = h.dequeue();
                                    let ret = recorder.stamp();
                                    recs.push(linearize::OpRecord {
                                        thread: t,
                                        op: QueueOp::Dequeue(r),
                                        invoke,
                                        ret,
                                    });
                                }
                            }
                            recs
                        })
                    })
                    .collect();
                for h in handles {
                    records.extend(h.join().unwrap());
                }
            });
            let history = History::from_records(records);
            assert!(history.validate_stamps());
            assert_eq!(
                check(&QueueModel, &history),
                Outcome::Linearizable,
                "WcQueue({label}, tiny ring) round {round}"
            );
        }
    }
}

#[test]
fn wf_with_validation_is_linearizable() {
    assert_linearizable(
        || WfQueue::with_config(4, Config::opt_both().with_validation()),
        "WfQueue(opt1+2+validate)",
    );
}

/// Meta-test: the machinery catches an actually broken "queue" (a
/// stack), guarding against a vacuously green checker integration.
#[test]
fn checker_rejects_a_stack_masquerading_as_a_queue() {
    use parking_lot::Mutex;

    struct LifoQueue(Mutex<Vec<u64>>);
    struct LifoHandle<'q>(&'q LifoQueue);
    impl QueueHandle<u64> for LifoHandle<'_> {
        fn enqueue(&mut self, v: u64) {
            self.0 .0.lock().push(v);
        }
        fn dequeue(&mut self) -> Option<u64> {
            self.0 .0.lock().pop() // LIFO: wrong
        }
    }
    impl ConcurrentQueue<u64> for LifoQueue {
        type Handle<'a> = LifoHandle<'a>;
        fn register(&self) -> Result<LifoHandle<'_>, queue_traits::RegistrationError> {
            Ok(LifoHandle(self))
        }
    }

    // A single-threaded round suffices: enq a, enq b, deq must be b for
    // a stack, which the FIFO model rejects.
    let q = LifoQueue(Mutex::new(Vec::new()));
    let recorder = Recorder::new();
    let mut log = recorder.log::<QueueOp>(0);
    let mut h = q.register().unwrap();
    log.record(|| h.enqueue(1), |_| QueueOp::Enqueue(1));
    log.record(|| h.enqueue(2), |_| QueueOp::Enqueue(2));
    log.record(|| h.dequeue(), |r| QueueOp::Dequeue(*r));
    let history = History::from_logs([log]);
    assert_eq!(check(&QueueModel, &history), Outcome::NotLinearizable);
}
