//! Abandoned-handle reaper suite (DESIGN.md §13), fault-model half.
//!
//! These tests simulate *sudden death* — a thread that stops without
//! running any destructor — with the `begin_*_unhelped` test hooks plus
//! `mem::forget`: the descriptor stays pending, the virtual ID stays
//! claimed, and (for the epoch variant) a leaked pin can wedge
//! reclamation, exactly the state a SIGKILLed or leaked handle leaves
//! behind. The chaos-feature torture suite (tests/torture.rs) covers
//! the *unwind* half of the fault model, where panic recovery runs.
//!
//! What must then hold with the reaper enabled:
//!
//! * survivors complete the victim's pending operation (by ordinary
//!   helping, or by the reaper's adoption when nobody helps),
//! * the victim's virtual ID becomes acquirable again,
//! * reclamation resumes (epoch: quarantine unwedges the leaked pin;
//!   HP: quarantine parks the dead hazard record for adoption),
//! * a reaped-but-still-held handle is poisoned, panicking on its next
//!   operation and dropping safely.
//!
//! No chaos feature needed: everything here is deterministic.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;

use kp_queue::{Config, ConcurrentQueue, WfQueue, WfQueueHp};

/// Patience used throughout: small, so a handful of survivor
/// operations revoke a silent lease.
const PATIENCE: usize = 4;

/// Upper bound on survivor operations while waiting for a counter to
/// move; generous (reaping needs ~`n * PATIENCE` ticks).
const SPIN_OPS: usize = 200_000;

/// A fast-path-only configuration for survivors that must NOT help:
/// fast-path operations publish no phase and help nobody, so a
/// victim's pending descriptor survives until the *reaper* adopts it —
/// the only way to exercise adoption deterministically. Starvation
/// patience is pushed out of reach so the pending victim never demotes
/// the survivor to the (helping) slow path.
fn no_help_config() -> Config {
    Config::fast()
        .with_starvation_patience(usize::MAX)
        .with_reap_patience(PATIENCE)
        // No wall floor: the tests drive reaps with tiny op-count
        // patience on purpose; the production-default 1 s floor would
        // only stretch each round by a second without changing what is
        // exercised.
        .with_reap_min_silence_ms(0)
}

/// A helping (slow-path-only) configuration with the reaper on.
fn helping_config() -> Config {
    Config::opt_both()
        .with_reap_patience(PATIENCE)
        .with_reap_min_silence_ms(0) // as in `no_help_config`
}

// ---------------------------------------------------------------------
// epoch variant
// ---------------------------------------------------------------------

/// A thread dies (simulated: forgets everything) with an enqueue
/// published but unhelped. A helping survivor completes it, the reaper
/// retires the slot, and the virtual ID is acquirable again.
#[test]
fn epoch_survivors_complete_abandoned_enqueue_and_reclaim_slot() {
    let q: WfQueue<u64> = WfQueue::with_config(3, helping_config());
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut h = q.register().expect("victim registers");
            h.enqueue(7);
            let pending = h.begin_enqueue_unhelped(42);
            // Sudden death: no Drop for the op or the handle. (The
            // forgotten guard unpins when this thread exits — the
            // wedged-pin case is epoch_quarantine_unwedges_* below.)
            std::mem::forget(pending);
            std::mem::forget(h);
        })
        .join()
        .expect("victim thread exits cleanly");

        let mut survivor = q.register().expect("survivor registers");
        let mut drained = BTreeSet::new();
        for i in 0..SPIN_OPS {
            survivor.enqueue(1_000 + i as u64);
            if let Some(v) = survivor.dequeue() {
                drained.insert(v);
            }
            if q.stats().reaps >= 1 {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.reaps >= 1, "victim slot never reaped: {stats:?}");
        while let Some(v) = survivor.dequeue() {
            drained.insert(v);
        }
        assert!(drained.contains(&7), "victim's completed enqueue lost");
        assert!(
            drained.contains(&42),
            "victim's pending enqueue was never completed by survivors"
        );
        // The victim's virtual ID must be acquirable again: with one
        // survivor holding a slot, a 3-slot pool has exactly two left.
        let extra1 = q.register().expect("reaped slot reclaimable");
        let extra2 = q.register().expect("third slot");
        assert!(q.register().is_err(), "pool must hold exactly 3 slots");
        drop((extra1, extra2));
    });
}

/// Nobody helps (fast-path-only survivor): the reaper itself must
/// adopt the victim's pending enqueue through the helping machinery.
#[test]
fn epoch_reaper_adopts_pending_enqueue_when_nobody_helps() {
    let q: WfQueue<u64> = WfQueue::with_config(2, no_help_config());
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut h = q.register().expect("victim registers");
            let pending = h.begin_enqueue_unhelped(42);
            std::mem::forget(pending);
            std::mem::forget(h);
        })
        .join()
        .expect("victim thread exits cleanly");

        let mut survivor = q.register().expect("survivor registers");
        for i in 0..SPIN_OPS {
            survivor.enqueue(1_000 + i as u64);
            let stats = q.stats();
            if stats.reaps >= 1 {
                assert!(
                    stats.reap_adoptions >= 1,
                    "slot reaped but the pending op was never adopted: {stats:?}"
                );
                break;
            }
        }
        assert!(q.stats().reaps >= 1, "victim slot never reaped");
        let mut saw42 = false;
        while let Some(v) = survivor.dequeue() {
            saw42 |= v == 42;
        }
        assert!(saw42, "adopted enqueue's value never surfaced");
        drop(q.register().expect("reaped slot reclaimable"));
    });
}

/// Adoption of a pending *dequeue*: the reaper completes it and — as
/// the retire-election winner — claims and discards the result, so
/// exactly one value goes missing and none duplicate.
#[test]
fn epoch_reaper_claims_abandoned_dequeue_result() {
    let q: WfQueue<u64> = WfQueue::with_config(2, no_help_config());
    std::thread::scope(|s| {
        s.spawn(|| {
            // Pre-load through the victim itself (its slow enqueues may
            // help nobody: the queue is otherwise idle).
            let mut h = q.register().expect("victim registers");
            for v in 1..=8 {
                h.enqueue(v);
            }
            let pending = h.begin_dequeue_unhelped();
            std::mem::forget(pending);
            std::mem::forget(h);
        })
        .join()
        .expect("victim thread exits cleanly");

        let mut survivor = q.register().expect("survivor registers");
        for i in 0..SPIN_OPS {
            survivor.enqueue(1_000 + i as u64);
            if q.stats().reaps >= 1 {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.reaps >= 1, "victim slot never reaped: {stats:?}");
        assert!(stats.reap_adoptions >= 1, "dequeue never adopted: {stats:?}");
        let mut drained = BTreeSet::new();
        while let Some(v) = survivor.dequeue() {
            assert!(drained.insert(v), "duplicated value {v}");
        }
        let missing: Vec<u64> = (1..=8).filter(|v| !drained.contains(v)).collect();
        assert_eq!(
            missing.len(),
            1,
            "the adopted dequeue consumes exactly one value; missing: {missing:?}"
        );
        drop(q.register().expect("reaped slot reclaimable"));
    });
}

/// The epoch variant's stalled-reader memory bound (ISSUE satellite):
/// a leaked pin wedges the global epoch — unbounded garbage — until
/// the reaper quarantines the dead participant, after which the epoch
/// advances again. This is the degradation bound DESIGN.md §13
/// documents: wedged memory is bounded by what accumulates within one
/// patience window.
#[test]
fn epoch_quarantine_unwedges_a_dead_handles_leaked_pin() {
    // Leaked: the victim thread parks forever (a dead-but-registered
    // participant must outlive the test body).
    let q: &'static WfQueue<u64> = Box::leak(Box::new(WfQueue::with_config(2, helping_config())));
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut h = q.register().expect("victim registers");
        // A completed op publishes this thread's epoch token.
        h.enqueue(1);
        let pending = h.begin_enqueue_unhelped(2);
        // Leak the PendingOp: its pinned guard never drops, so this
        // thread stays pinned at today's epoch forever.
        std::mem::forget(pending);
        std::mem::forget(h);
        tx.send(()).expect("main thread waits");
        // Parked, never exits: TLS destructors never run, exactly like
        // a thread wedged in a signal handler or leaked by an FFI host.
        loop {
            std::thread::park();
        }
    });
    rx.recv().expect("victim parked");

    // Wedged: the victim is pinned at some epoch `p`, so the global
    // epoch can never move past `p + 1`, no matter how often anyone
    // nudges the collector.
    let e0 = crossbeam_epoch::global_epoch();
    for _ in 0..64 {
        crossbeam_epoch::advance();
    }
    assert!(
        crossbeam_epoch::global_epoch() <= e0 + 1,
        "a leaked pin must wedge epoch advancement"
    );

    let mut survivor = q.register().expect("survivor registers");
    for i in 0..SPIN_OPS {
        survivor.enqueue(1_000 + i as u64);
        survivor.dequeue();
        if q.stats().quarantines >= 1 {
            break;
        }
    }
    let stats = q.stats();
    assert!(stats.reaps >= 1, "victim slot never reaped: {stats:?}");
    assert!(
        stats.quarantines >= 1,
        "wedged participant never quarantined: {stats:?}"
    );
    // Reclamation resumes: the epoch moves past the (erased) pin.
    // Bounded retry because concurrently running tests in this binary
    // pin transiently, which can defeat any single advance() call.
    let target = e0 + 3;
    for _ in 0..SPIN_OPS {
        crossbeam_epoch::advance();
        if crossbeam_epoch::global_epoch() >= target {
            break;
        }
    }
    assert!(
        crossbeam_epoch::global_epoch() >= target,
        "quarantine must unwedge epoch advancement"
    );
    drop(q.register().expect("reaped slot reclaimable"));
}

/// A reaped handle that is still held (lease-contract violation: the
/// owner was silent past the patience window but is in fact alive) is
/// poisoned — its next operation panics before touching the queue —
/// and still drops safely. Also pins down the reaper's self-token
/// guard: victim and reaper share one OS thread here, so quarantining
/// the "victim's" epoch participant would erase the *reaper's* live
/// pin; the reap must skip it.
#[test]
fn epoch_reaped_handle_is_poisoned_and_drops_safely() {
    let q: WfQueue<u64> = WfQueue::with_config(3, helping_config());
    let mut victim = q.register().expect("victim registers");
    victim.enqueue(5); // publishes this (shared!) thread's epoch token
    let mut survivor = q.register().expect("survivor registers");
    let mut drained = BTreeSet::new();
    for i in 0..SPIN_OPS {
        survivor.enqueue(1_000 + i as u64);
        if let Some(v) = survivor.dequeue() {
            drained.insert(v);
        }
        if q.stats().reaps >= 1 {
            break;
        }
    }
    let stats = q.stats();
    assert!(stats.reaps >= 1, "idle victim never reaped: {stats:?}");
    assert_eq!(
        stats.quarantines, 0,
        "the reaper quarantined its own OS thread's participant"
    );

    let err = catch_unwind(AssertUnwindSafe(|| victim.enqueue(9)))
        .expect_err("a reaped handle's next operation must panic");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .expect("lease poisoning panics with a static message");
    assert!(
        msg.contains("handle reaped"),
        "unexpected poison message: {msg}"
    );
    // Safe drop: the reaped path must not touch the (possibly
    // re-owned) slot. The successor registration below would be
    // corrupted otherwise.
    drop(victim);
    drop(survivor);
    let a = q.register().expect("slot 1");
    let b = q.register().expect("slot 2");
    let mut c = q.register().expect("reaped slot reclaimable");
    c.enqueue(77);
    drained.extend(std::iter::from_fn(|| c.dequeue()));
    assert!(drained.contains(&5), "victim's completed enqueue lost");
    assert!(drained.contains(&77), "queue unusable after reap");
    drop((a, b, c));
}

// ---------------------------------------------------------------------
// hazard-pointer variant
// ---------------------------------------------------------------------

/// HP twin of the abandoned-enqueue test, plus the HP-specific
/// reclamation claim: the dead handle's hazard record is always
/// quarantined (records are per-handle, so no self-token subtlety).
#[test]
fn hp_survivors_complete_abandoned_enqueue_and_reclaim_slot() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(3, helping_config());
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut h = q.register().expect("victim registers");
            h.enqueue(7);
            let pending = h.begin_enqueue_unhelped(42);
            std::mem::forget(pending);
            std::mem::forget(h);
        })
        .join()
        .expect("victim thread exits cleanly");

        let mut survivor = q.register().expect("survivor registers");
        let mut drained = BTreeSet::new();
        for i in 0..SPIN_OPS {
            survivor.enqueue(1_000 + i as u64);
            if let Some(v) = survivor.dequeue() {
                drained.insert(v);
            }
            if q.stats().reaps >= 1 {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.reaps >= 1, "victim slot never reaped: {stats:?}");
        assert!(
            stats.quarantines >= 1,
            "dead hazard record never quarantined: {stats:?}"
        );
        while let Some(v) = survivor.dequeue() {
            drained.insert(v);
        }
        assert!(drained.contains(&7), "victim's completed enqueue lost");
        assert!(
            drained.contains(&42),
            "victim's pending enqueue was never completed by survivors"
        );
        let extra1 = q.register().expect("reaped slot reclaimable");
        let extra2 = q.register().expect("third slot");
        assert!(q.register().is_err(), "pool must hold exactly 3 slots");
        drop((extra1, extra2));
    });
}

/// HP twin of the adopted-dequeue test: the reaper adopts, then closes
/// the value node's token gate by claiming-and-discarding, so the node
/// leaves limbo and exactly one value goes missing.
#[test]
fn hp_reaper_claims_abandoned_dequeue_result() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(2, no_help_config());
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut h = q.register().expect("victim registers");
            for v in 1..=8 {
                h.enqueue(v);
            }
            let pending = h.begin_dequeue_unhelped();
            std::mem::forget(pending);
            std::mem::forget(h);
        })
        .join()
        .expect("victim thread exits cleanly");

        let mut survivor = q.register().expect("survivor registers");
        for i in 0..SPIN_OPS {
            survivor.enqueue(1_000 + i as u64);
            if q.stats().reaps >= 1 {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.reaps >= 1, "victim slot never reaped: {stats:?}");
        assert!(stats.reap_adoptions >= 1, "dequeue never adopted: {stats:?}");
        let mut drained = BTreeSet::new();
        while let Some(v) = survivor.dequeue() {
            assert!(drained.insert(v), "duplicated value {v}");
        }
        let missing: Vec<u64> = (1..=8).filter(|v| !drained.contains(v)).collect();
        assert_eq!(
            missing.len(),
            1,
            "the adopted dequeue consumes exactly one value; missing: {missing:?}"
        );
        drop(q.register().expect("reaped slot reclaimable"));
    });
}

/// HP poisoning twin: reaped-but-held handle panics on its next op and
/// drops safely (the `ManuallyDrop` participant is leaked, not
/// dropped, so a successor's adopted record is never clobbered).
#[test]
fn hp_reaped_handle_is_poisoned_and_drops_safely() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(3, helping_config());
    let mut victim = q.register().expect("victim registers");
    victim.enqueue(5);
    let mut survivor = q.register().expect("survivor registers");
    let mut drained = BTreeSet::new();
    for i in 0..SPIN_OPS {
        survivor.enqueue(1_000 + i as u64);
        if let Some(v) = survivor.dequeue() {
            drained.insert(v);
        }
        if q.stats().reaps >= 1 {
            break;
        }
    }
    assert!(q.stats().reaps >= 1, "idle victim never reaped");

    let err = catch_unwind(AssertUnwindSafe(|| victim.enqueue(9)))
        .expect_err("a reaped handle's next operation must panic");
    let msg = err
        .downcast_ref::<&str>()
        .copied()
        .expect("lease poisoning panics with a static message");
    assert!(
        msg.contains("handle reaped"),
        "unexpected poison message: {msg}"
    );
    drop(victim);
    drop(survivor);
    let a = q.register().expect("slot 1");
    let b = q.register().expect("slot 2");
    let mut c = q.register().expect("reaped slot reclaimable");
    c.enqueue(77);
    drained.extend(std::iter::from_fn(|| c.dequeue()));
    assert!(drained.contains(&5), "victim's completed enqueue lost");
    assert!(drained.contains(&77), "queue unusable after reap");
    drop((a, b, c));
}

/// Publisher-scan guard: a *live* handle sharing the abandoned
/// handle's OS thread publishes the same epoch token, and the reaper
/// runs on a different thread (so the self-token guard alone cannot
/// save it). The reap must complete but skip the quarantine — erasing
/// the shared participant would strip the live handle's pins and let
/// the collector free nodes it still reads.
#[test]
fn epoch_reap_spares_live_handle_sharing_victims_thread() {
    let q: WfQueue<u64> = WfQueue::with_config(3, helping_config());
    let (tx, rx) = mpsc::channel();
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let q = &q;
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut abandoned = q.register().expect("abandoned registers");
            abandoned.enqueue(5); // publishes this thread's epoch token
            std::mem::forget(abandoned);
            let mut live = q.register().expect("live registers");
            live.enqueue(6); // publishes the *same* token in its slot
            tx.send(()).expect("main thread waits");
            // Keep operating (and epoch-pinning) through the reap; a
            // quarantined participant here turns these dereferences
            // into use-after-free under the collector.
            let mut i = 0u64;
            while stop_rx.try_recv().is_err() {
                live.enqueue(1_000_000 + i);
                live.dequeue();
                i += 1;
            }
            drop(live);
        });
        rx.recv().expect("peer thread started");
        let mut survivor = q.register().expect("survivor registers");
        for i in 0..SPIN_OPS {
            survivor.enqueue(2_000_000 + i as u64);
            survivor.dequeue();
            if q.stats().reaps >= 1 {
                break;
            }
        }
        stop_tx.send(()).expect("peer thread still looping");
        let stats = q.stats();
        assert!(stats.reaps >= 1, "abandoned slot never reaped: {stats:?}");
        assert_eq!(
            stats.quarantines, 0,
            "quarantined a token still published by a live handle: {stats:?}"
        );
        drop(survivor);
    });
    // The reaped slot (and the live handle's, after its clean drop) is
    // reclaimable, and the queue still works.
    let a = q.register().expect("slot 1");
    let b = q.register().expect("slot 2");
    let mut c = q.register().expect("reaped slot reclaimable");
    c.enqueue(77);
    let mut drained = BTreeSet::new();
    drained.extend(std::iter::from_fn(|| c.dequeue()));
    assert!(drained.contains(&77), "queue unusable after reap");
    drop((a, b, c));
}

// ---------------------------------------------------------------------
// memory-pressure degradation (tentpole part c)
// ---------------------------------------------------------------------

/// The epoch retire cache is capped: a dequeue-heavy burst past
/// `CACHE_CAP` spills to the epoch collector and counts as
/// backpressure in `cache_overflows`.
#[test]
fn epoch_retire_cache_overflow_is_counted() {
    let q: WfQueue<u64> = WfQueue::with_config(1, Config::opt_both());
    let mut h = q.register().expect("register");
    // Enqueue-all then dequeue-all: every dequeue retires a sentinel
    // while no enqueue drains the cache, so it must overflow past 256.
    for v in 0..600 {
        h.enqueue(v);
    }
    for _ in 0..600 {
        h.dequeue().expect("value present");
    }
    let stats = q.stats();
    assert!(
        stats.cache_overflows >= 1,
        "600 uninterrupted retirements must overflow a 256-cap cache: {stats:?}"
    );
    drop(h);
}

/// Same bound for the HP shared freelist, surfaced through the same
/// counter by `WfQueueHp::stats`.
#[test]
fn hp_node_pool_overflow_is_counted() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(1, Config::opt_both());
    let mut h = q.register().expect("register");
    for v in 0..2_000 {
        h.enqueue(v);
    }
    for _ in 0..2_000 {
        h.dequeue().expect("value present");
    }
    drop(h); // handle exit flushes its local cache into the pool
    let stats = q.stats();
    assert!(
        stats.cache_overflows >= 1,
        "2000 uninterrupted retirements must overflow a 256-cap pool: {stats:?}"
    );
}
