//! The bounded-memory gate: wCQ under a stalled reader (ISSUE 7,
//! DESIGN.md §14.4).
//!
//! The experiment the KP engines fundamentally cannot win: register a
//! consumer, let it go silent, and keep producing. KP allocates a node
//! per enqueue, so the backlog grows the live heap without bound (the
//! reclamation schemes bound *garbage*, not *backlog*). wCQ allocated
//! its data array and both index rings at construction; a producer that
//! outruns the dead consumer hits `Full` and is rejected, so live heap
//! growth is exactly zero and steady-state operation is allocation-free.
//!
//! One `#[test]` function: the `alloc-track` counters are
//! process-global, so parallel tests in this binary would race them.

use kp_channel::{Channel, ChannelConfig, OverloadConfig, TrySendError};
use kp_queue::Config as KpConfig;
use kp_queue::{ConcurrentQueue, QueueHandle, WfQueue, WfQueueHp};
use wcq::{Config as WcqConfig, WcQueue};

#[global_allocator]
static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;

/// Items offered while the reader stalls — far above the wCQ capacity,
/// so the cap is what stops growth, not the workload size.
const OFFERED: usize = 50_000;
const WCQ_CAPACITY: usize = 1 << 11;

/// One full stalled-reader run on a fresh ring; returns (live-byte,
/// allocation-count) deltas over the measured window. The functional
/// assertions (ring filled, order preserved on drain) stay inside.
fn wcq_stalled_reader_run() -> (isize, isize) {
    let q: WcQueue<u64> = WcQueue::with_config(2, WcqConfig::new().with_capacity(WCQ_CAPACITY));
    let _stalled_reader = q.register().unwrap();
    let mut producer = q.register().unwrap();
    // Warm: a few accepted enqueues before the mark, so lazy one-time
    // initialization (if any ever appears) is not mistaken for growth.
    for i in 0..16 {
        producer.try_enqueue(i).unwrap();
    }
    let mark_bytes = alloc_track::live_bytes() as isize;
    let mark_allocs = alloc_track::total_allocs() as isize;
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for i in 0..OFFERED {
        match producer.try_enqueue(16 + i as u64) {
            Ok(()) => accepted += 1,
            Err(_full) => rejected += 1,
        }
    }
    let live_delta = alloc_track::live_bytes() as isize - mark_bytes;
    let alloc_delta = alloc_track::total_allocs() as isize - mark_allocs;
    // The ring really filled: everything beyond capacity was rejected,
    // nothing was silently dropped.
    assert_eq!(accepted, WCQ_CAPACITY - 16, "accepted up to capacity");
    assert_eq!(accepted + rejected, OFFERED);
    drop(producer);

    // The stalled reader waking up drains every accepted item, in order.
    let mut reader = q.register().unwrap();
    for expect in 0..(16 + accepted) as u64 {
        assert_eq!(reader.dequeue(), Some(expect));
    }
    assert_eq!(reader.dequeue(), None);
    drop(reader);
    (live_delta, alloc_delta)
}

#[test]
fn stalled_reader_memory_is_bounded_for_wcq_not_for_kp() {
    // --- wCQ: live heap must not grow at all --------------------------
    // The process-global counters can catch one-time lazy initialization
    // from outside the queue (libtest's machinery, std internals) inside
    // the measured window; a second fresh run cannot blame it, while a
    // genuinely allocating op path fails both runs.
    let (mut live_delta, mut alloc_delta) = wcq_stalled_reader_run();
    if live_delta != 0 || alloc_delta != 0 {
        (live_delta, alloc_delta) = wcq_stalled_reader_run();
    }
    assert_eq!(live_delta, 0, "wCQ live heap grew under a stalled reader");
    assert_eq!(alloc_delta, 0, "wCQ allocated on the enqueue path");

    // --- KP engines: the same workload grows the live heap ------------
    // A node per enqueue is the design (that is what reclamation is
    // for); under a stalled reader that becomes unbounded backlog. The
    // floor asserted here is deliberately loose — one pointer-word per
    // item — reality is several words per node.
    let floor = (OFFERED * std::mem::size_of::<usize>()) as isize;

    {
        let q: WfQueue<u64> = WfQueue::with_config(2, KpConfig::opt_both());
        let _stalled_reader = q.register().unwrap();
        let mut producer = q.register().unwrap();
        let mark = alloc_track::live_bytes() as isize;
        for i in 0..OFFERED {
            producer.enqueue(i as u64);
        }
        let growth = alloc_track::live_bytes() as isize - mark;
        assert!(
            growth >= floor,
            "wf-epoch backlog should grow the heap (grew {growth}, floor {floor})"
        );
    }

    {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(2, KpConfig::opt_both());
        let _stalled_reader = q.register().unwrap();
        let mut producer = q.register().unwrap();
        let mark = alloc_track::live_bytes() as isize;
        for i in 0..OFFERED {
            producer.enqueue(i as u64);
        }
        let growth = alloc_track::live_bytes() as isize - mark;
        assert!(
            growth >= floor,
            "wf-hp backlog should grow the heap (grew {growth}, floor {floor})"
        );
    }

    // --- KP behind the admission gate: backlog bounded by the quota ---
    // The DESIGN.md §16 claim: an unbounded engine plus a soft depth
    // quota behaves like a bounded one under a stalled consumer — the
    // gate converts enqueues into `Full` refusals once the shard holds
    // `quota` values, so live-heap growth is proportional to the quota,
    // not to the offered load, and the refusal path itself is
    // allocation-free (a gauge read and a compare, no node is built).
    {
        const QUOTA: usize = 256;
        let chan: Channel<u64, WfQueue<u64>> = Channel::kp(
            ChannelConfig::new()
                .with_shards(1)
                .with_max_senders(1)
                .with_max_receivers(1)
                .with_overload(OverloadConfig::disabled().with_depth_quota(QUOTA)),
        );
        let mut rx = chan.receiver(); // stalled: never drains during the window
        let mut tx = chan.sender();
        // Warm: a few accepted sends before the mark (first-touch lazy
        // state: the engine's first nodes, epoch participant, etc.).
        for i in 0..16u64 {
            tx.try_send(i).unwrap();
        }
        let mark = alloc_track::live_bytes() as isize;
        let mut accepted = 16usize;
        let mut refused = 0usize;
        let mut refusal_alloc_mark = None::<isize>;
        for i in 16..OFFERED {
            match tx.try_send(i as u64) {
                Ok(()) => accepted += 1,
                Err(TrySendError::Full(_)) => {
                    // From the first refusal on, the shard is saturated:
                    // every further offered value must run the
                    // allocation-free refusal path.
                    refusal_alloc_mark
                        .get_or_insert_with(|| alloc_track::total_allocs() as isize);
                    refused += 1;
                }
                Err(TrySendError::Disconnected(_)) => unreachable!("receiver is live"),
            }
        }
        let growth = alloc_track::live_bytes() as isize - mark;
        assert!(refused > 0, "the quota never engaged over {OFFERED} offers");
        assert!(
            accepted <= QUOTA + 2,
            "gate admitted {accepted} values against a soft quota of {QUOTA}"
        );
        // Generous per-node budget (node + descriptor amortization);
        // the point is the bound scales with QUOTA, not with OFFERED.
        let quota_bound = (QUOTA as isize + 64) * 256;
        assert!(
            growth <= quota_bound,
            "gated backlog grew {growth} bytes (bound {quota_bound}) — \
             admission control failed to bound the live heap"
        );
        assert!(
            growth < floor / 4,
            "gated KP grew {growth}, within 4x of the ungated floor {floor}"
        );
        let refusal_allocs =
            alloc_track::total_allocs() as isize - refusal_alloc_mark.unwrap();
        assert_eq!(refusal_allocs, 0, "the refusal path allocated");

        // The stalled consumer waking: everything accepted is there, in
        // order, exactly once.
        for expect in 0..accepted as u64 {
            assert_eq!(rx.try_recv(), Ok(expect));
        }
        assert!(rx.try_recv().is_err());
    }
}
