//! Cross-crate stress tests: heavier, longer-running checks than the
//! per-crate unit suites, exercising every queue implementation through
//! the shared conformance helpers plus scenarios that combine features
//! (handle churn during traffic, mixed payload types, stats sanity).

use queue_traits::testing;
use queue_traits::{ConcurrentQueue, QueueHandle};

use kp_queue::{Config, HelpPolicy, WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 4;
const PER_PRODUCER: usize = 4_000; // scaled() further in debug

#[test]
fn mpmc_conservation_heavy_lf() {
    testing::check_mpmc_conservation(&MsQueue::new(), PRODUCERS, CONSUMERS, testing::scaled(PER_PRODUCER));
}

#[test]
fn mpmc_conservation_heavy_lf_hp() {
    testing::check_mpmc_conservation(&MsQueueHp::new(), PRODUCERS, CONSUMERS, testing::scaled(PER_PRODUCER));
}

#[test]
fn mpmc_conservation_heavy_mutex() {
    testing::check_mpmc_conservation(&MutexQueue::new(), PRODUCERS, CONSUMERS, testing::scaled(PER_PRODUCER));
}

#[test]
fn mpmc_conservation_heavy_wf_base() {
    let q: WfQueue<u64> = WfQueue::with_config(PRODUCERS + CONSUMERS, Config::base());
    testing::check_mpmc_conservation(&q, PRODUCERS, CONSUMERS, testing::scaled(PER_PRODUCER));
}

#[test]
fn mpmc_conservation_heavy_wf_opt() {
    let q: WfQueue<u64> = WfQueue::with_config(PRODUCERS + CONSUMERS, Config::opt_both());
    testing::check_mpmc_conservation(&q, PRODUCERS, CONSUMERS, testing::scaled(PER_PRODUCER));
}

#[test]
fn mpmc_conservation_heavy_wf_hazard() {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(PRODUCERS + CONSUMERS, Config::opt_both());
    testing::check_mpmc_conservation(&q, PRODUCERS, CONSUMERS, testing::scaled(PER_PRODUCER) / 2 + 1);
}

#[test]
fn wf_handle_churn_during_traffic() {
    // Threads repeatedly register, do a burst, and deregister while
    // other threads are mid-flight — exercising virtual-ID recycling
    // under contention (§3.3) together with the helping machinery.
    let q: WfQueue<u64> = WfQueue::with_config(6, Config::opt_both());
    let total = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..4 {
            let q = &q;
            let total = &total;
            s.spawn(move || {
                for gen in 0..50 {
                    let mut h = loop {
                        // Capacity 6 > 4 workers, so registration can
                        // only fail transiently while another thread's
                        // drop is racing; retry.
                        if let Ok(h) = q.register() {
                            break h;
                        }
                        std::hint::spin_loop();
                    };
                    for i in 0..200u64 {
                        h.enqueue(t * 1_000_000 + gen * 1_000 + i);
                        if let Some(v) = h.dequeue() {
                            total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    // Every enqueued element was dequeued (pairs pattern leaves empty).
    assert!(q.is_empty());
    assert_eq!(q.stats().ops(), 4 * 50 * 200 * 2);
}

#[test]
fn wf_string_payloads_roundtrip() {
    let q: WfQueue<String> = WfQueue::new(4);
    std::thread::scope(|s| {
        for t in 0..2 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..testing::scaled(5_000) {
                    h.enqueue(format!("{t}:{i}"));
                    let got = loop {
                        if let Some(v) = h.dequeue() {
                            break v;
                        }
                    };
                    // The dequeued string must be a well-formed tagged
                    // value (not necessarily ours).
                    let mut parts = got.splitn(2, ':');
                    let tt: usize = parts.next().unwrap().parse().unwrap();
                    let ii: usize = parts.next().unwrap().parse().unwrap();
                    assert!(tt < 2 && ii < 5_000);
                }
            });
        }
    });
    assert!(q.is_empty());
}

#[test]
fn wf_large_chunk_policy_under_stress() {
    let q: WfQueue<u64> =
        WfQueue::with_config(8, Config::opt_both().with_help(HelpPolicy::Cyclic { chunk: 7 }));
    testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(5_000));
}

#[test]
fn wf_random_chunk_policy_under_stress() {
    let q: WfQueue<u64> = WfQueue::with_config(
        8,
        Config::opt2().with_help(HelpPolicy::RandomChunk { chunk: 2 }),
    );
    testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(5_000));
}

#[test]
fn alternating_producers_consumers_fifo_per_producer() {
    // One producer, one consumer: the consumer must observe the
    // producer's exact order (single-producer FIFO is total).
    fn run<Q: ConcurrentQueue<u64> + Sync>(q: &Q) {
        let n: u64 = testing::scaled(30_000) as u64;
        std::thread::scope(|s| {
            s.spawn(|| {
                let mut h = q.register().unwrap();
                for i in 0..n {
                    h.enqueue(i);
                }
            });
            s.spawn(|| {
                let mut h = q.register().unwrap();
                let mut expect = 0;
                while expect < n {
                    if let Some(v) = h.dequeue() {
                        assert_eq!(v, expect, "SPSC order must be exact");
                        expect += 1;
                    }
                }
            });
        });
    }
    run(&MsQueue::new());
    run(&MsQueueHp::new());
    run(&WfQueue::with_config(2, Config::base()));
    run(&WfQueue::with_config(2, Config::opt_both()));
    run(&WfQueueHp::with_config(2, Config::opt_both()));
}

#[test]
fn helping_stats_accumulate_under_oversubscription() {
    // With 8 threads on few cores and the ScanAll policy, helpers finish
    // a measurable number of peer operations. The allocation-free hot
    // path can, rarely, race through a whole round with no operation
    // overlap at all, so re-hammer a bounded number of rounds until the
    // stats show helping happened.
    let q: WfQueue<u64> = WfQueue::with_config(8, Config::base());
    let mut rounds = 0u64;
    while rounds < 10 {
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut h = q.register().unwrap();
                    for i in 0..testing::scaled(10_000) as u64 {
                        h.enqueue(i);
                        h.dequeue();
                    }
                });
            }
        });
        rounds += 1;
        if q.stats().help_calls > 0 {
            break;
        }
    }
    let stats = q.stats();
    let per = testing::scaled(10_000) as u64;
    assert_eq!(stats.enqueues, rounds * 8 * per);
    assert_eq!(stats.dequeues, rounds * 8 * per);
    assert!(
        stats.help_calls > 0,
        "base policy must enter peer helping under contention"
    );
}
