//! Property-based sequential equivalence: any single-threaded sequence
//! of operations applied to each queue implementation must produce
//! exactly the results a `VecDeque` produces.

use std::collections::VecDeque;

use proptest::prelude::*;
use queue_traits::{ConcurrentQueue, QueueHandle};

use kp_queue::{Config, HelpPolicy, PhasePolicy, WfQueue};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};

/// A scripted operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Enq(u64),
    Deq,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..1000).prop_map(Op::Enq),
        Just(Op::Deq),
    ]
}

fn check_against_model<Q: ConcurrentQueue<u64>>(queue: &Q, script: &[Op]) {
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut h = queue.register().expect("register");
    for (i, op) in script.iter().enumerate() {
        match *op {
            Op::Enq(v) => {
                model.push_back(v);
                h.enqueue(v);
            }
            Op::Deq => {
                let expected = model.pop_front();
                let got = h.dequeue();
                assert_eq!(got, expected, "divergence at step {i} ({script:?})");
            }
        }
    }
    // Drain both and compare the tails.
    loop {
        let expected = model.pop_front();
        let got = h.dequeue();
        assert_eq!(got, expected);
        if got.is_none() {
            break;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ms_epoch_matches_vecdeque(script in prop::collection::vec(op_strategy(), 0..200)) {
        check_against_model(&MsQueue::new(), &script);
    }

    #[test]
    fn ms_hp_matches_vecdeque(script in prop::collection::vec(op_strategy(), 0..200)) {
        check_against_model(&MsQueueHp::new(), &script);
    }

    #[test]
    fn mutex_matches_vecdeque(script in prop::collection::vec(op_strategy(), 0..200)) {
        check_against_model(&MutexQueue::new(), &script);
    }

    #[test]
    fn wf_base_matches_vecdeque(script in prop::collection::vec(op_strategy(), 0..200)) {
        check_against_model(&WfQueue::with_config(3, Config::base()), &script);
    }

    #[test]
    fn wf_opt_both_matches_vecdeque(script in prop::collection::vec(op_strategy(), 0..200)) {
        check_against_model(&WfQueue::with_config(3, Config::opt_both()), &script);
    }

    #[test]
    fn wf_random_policy_matches_vecdeque(script in prop::collection::vec(op_strategy(), 0..200)) {
        let cfg = Config::base()
            .with_help(HelpPolicy::RandomChunk { chunk: 2 })
            .with_phase(PhasePolicy::AtomicCounter)
            .with_validation();
        check_against_model(&WfQueue::with_config(5, cfg), &script);
    }

    /// Handle churn mid-script must not change sequential semantics
    /// (the virtual-ID relaxation of §3.3).
    #[test]
    fn wf_matches_vecdeque_across_reregistration(
        scripts in prop::collection::vec(prop::collection::vec(op_strategy(), 0..60), 1..5)
    ) {
        let queue: WfQueue<u64> = WfQueue::new(2);
        let mut model: VecDeque<u64> = VecDeque::new();
        for script in &scripts {
            // Fresh handle (potentially a different virtual ID) per
            // segment; state must carry over in the queue itself.
            let mut h = queue.register().expect("register");
            for op in script {
                match *op {
                    Op::Enq(v) => {
                        model.push_back(v);
                        h.enqueue(v);
                    }
                    Op::Deq => {
                        prop_assert_eq!(h.dequeue(), model.pop_front());
                    }
                }
            }
        }
    }
}
