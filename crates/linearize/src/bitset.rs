//! A small fixed-capacity bit set used as the "linearized operations"
//! mask in the checker's memo table.

use std::hash::{Hash, Hasher};

/// Fixed-capacity bit set over `0..len`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) struct BitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl BitSet {
    pub(crate) fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
        }
    }

    #[inline]
    pub(crate) fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    #[inline]
    pub(crate) fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        debug_assert!(*w & bit == 0, "inserting an already-present bit");
        *w |= bit;
        self.ones += 1;
    }

    #[inline]
    pub(crate) fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let bit = 1 << (i % 64);
        debug_assert!(*w & bit != 0, "removing an absent bit");
        *w &= !bit;
        self.ones -= 1;
    }

    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.ones
    }

    #[inline]
    pub(crate) fn is_full(&self) -> bool {
        self.ones == self.len
    }
}

impl Hash for BitSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.words.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(130);
        assert!(!s.contains(0));
        assert!(!s.contains(129));
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn full_detection() {
        let mut s = BitSet::new(3);
        for i in 0..3 {
            assert!(!s.is_full());
            s.insert(i);
        }
        assert!(s.is_full());
    }

    #[test]
    fn equal_sets_hash_equal() {
        use std::collections::hash_map::DefaultHasher;
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.insert(5);
        a.insert(99);
        b.insert(99);
        b.insert(5);
        assert_eq!(a, b);
        let h = |s: &BitSet| {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        };
        assert_eq!(h(&a), h(&b));
    }
}
