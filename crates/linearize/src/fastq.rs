//! A linear(ish)-time checker of *necessary* linearizability conditions
//! for FIFO-queue histories.
//!
//! The exact WGL search ([`crate::check`]) is exponential in the worst
//! case, so the stress suites can only feed it small rounds. This module
//! complements it: a set of necessary conditions that any linearizable
//! queue history must satisfy, checkable in `O(n log n)`. A violation
//! here is a *proof* of non-linearizability; passing is *not* a proof of
//! linearizability (the conditions are necessary, not sufficient) — use
//! the WGL checker for that, on small histories.
//!
//! Checked conditions (values are assumed unique, which all our
//! workloads guarantee by construction):
//!
//! 1. **Provenance** — every dequeued value was enqueued, and the
//!    dequeue's window cannot close before the enqueue's opens
//!    (`deq.ret > enq.invoke`).
//! 2. **Uniqueness** — no value is dequeued twice.
//! 3. **FIFO order** — if `enq(a)` finishes before `enq(b)` starts and
//!    both values are dequeued, `deq(b)` must not finish before
//!    `deq(a)` starts (b cannot overtake a).
//! 4. **Loss freedom** — if `enq(a)` finishes before `enq(b)` starts
//!    and `b` is dequeued, `a` cannot remain in the queue at the end of
//!    the history *if* `a`'s absence is provable… which it is not in
//!    general (a may legally linger), so this condition instead checks
//!    the quantitative form: the number of dequeued values can never
//!    exceed the number of enqueues whose windows opened before the
//!    last dequeue closed. (A coarse conservation bound.)
//! 5. **Empty soundness** — a `dequeue → None` is illegal if some value
//!    was *provably resident* for the whole window: enqueued (window
//!    closed) before the dequeue began and first dequeued (window
//!    opened) after the dequeue returned — including never dequeued.

use std::collections::HashMap;

use crate::history::History;
use crate::model::QueueOp;

/// A concrete violation of a necessary condition, with the indices of
/// the offending operations in `history.ops()`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A value came out that never went in (or out before in was open).
    Invented {
        /// Index of the offending dequeue.
        dequeue: usize,
        /// The value it claimed.
        value: u64,
    },
    /// The same value was delivered twice.
    Duplicated {
        /// First delivery.
        first: usize,
        /// Second delivery.
        second: usize,
        /// The value.
        value: u64,
    },
    /// A later enqueue's value overtook an earlier enqueue's value.
    Reordered {
        /// The earlier enqueue (its dequeue starts too late).
        first_enqueue: usize,
        /// The later enqueue (its dequeue finished too early).
        second_enqueue: usize,
    },
    /// `None` was observed while some value was provably resident.
    FalseEmpty {
        /// The offending empty dequeue.
        dequeue: usize,
        /// A value resident across its whole window.
        resident_value: u64,
    },
}

/// Runs all necessary-condition checks; `None` means no violation found
/// (the history *may* be linearizable).
pub fn check_necessary(history: &History<QueueOp>) -> Option<Violation> {
    let ops = history.ops();

    // Index enqueues and dequeues by value.
    let mut enq_by_value: HashMap<u64, usize> = HashMap::new();
    let mut deq_by_value: HashMap<u64, usize> = HashMap::new();
    let mut empties: Vec<usize> = Vec::new();

    for (i, r) in ops.iter().enumerate() {
        match r.op {
            QueueOp::Enqueue(v) => {
                // Workload contract: unique values. (The insert must not
                // live inside a debug_assert!, which compiles out.)
                let prev = enq_by_value.insert(v, i);
                debug_assert!(
                    prev.is_none(),
                    "duplicate enqueue of {v}: the necessary-condition \
                     checker requires unique values"
                );
            }
            QueueOp::Dequeue(Some(v)) => {
                if let Some(&first) = deq_by_value.get(&v) {
                    return Some(Violation::Duplicated {
                        first,
                        second: i,
                        value: v,
                    });
                }
                deq_by_value.insert(v, i);
            }
            QueueOp::Dequeue(None) => empties.push(i),
        }
    }

    // 1. Provenance.
    for (&v, &d) in &deq_by_value {
        match enq_by_value.get(&v) {
            None => return Some(Violation::Invented { dequeue: d, value: v }),
            Some(&e) => {
                if ops[d].ret < ops[e].invoke {
                    // The dequeue finished before the enqueue began.
                    return Some(Violation::Invented { dequeue: d, value: v });
                }
            }
        }
    }

    // 3. FIFO order between strictly ordered enqueues. Sorting the
    // dequeued values by their enqueue-return time lets us do this in
    // one sweep: for the sequence of enqueues e1 < e2 (strictly, by
    // windows), deq(e2) must not return before deq(e1) is invoked.
    // Sweep trick: walk enqueues by ascending `ret`; maintain the
    // maximum `deq.invoke`-lower-bound seen so far among *strictly
    // earlier* enqueues, via a second pointer over `invoke`-sorted
    // order.
    {
        // "a" candidates: every enqueue. A value never dequeued in a
        // *complete* history stayed in the queue, so its (virtual)
        // dequeue-invoke is ∞ — any strictly later enqueue whose value
        // *was* dequeued then proves a FIFO violation.
        let mut pairs: Vec<(u64, u64, u64, u64, usize)> = enq_by_value
            .iter()
            .map(|(&v, &e)| {
                let deq_inv = deq_by_value
                    .get(&v)
                    .map(|&d| ops[d].invoke)
                    .unwrap_or(u64::MAX);
                (ops[e].ret, ops[e].invoke, deq_inv, 0, e)
            })
            .collect();
        // "b" candidates: dequeued values only, ordered by enq invoke.
        let mut by_invoke: Vec<(u64, u64, u64, u64, usize)> = deq_by_value
            .iter()
            .map(|(&v, &d)| {
                let e = enq_by_value[&v];
                (ops[e].ret, ops[e].invoke, ops[d].invoke, ops[d].ret, e)
            })
            .collect();
        by_invoke.sort_unstable_by_key(|p| p.1);
        // Sort by enqueue ret: candidates for "a" in order.
        pairs.sort_unstable_by_key(|p| p.0);

        // For each b (by enqueue invoke), every a with enq_ret < b's
        // enq_invoke must satisfy deq(b).ret >= deq(a).invoke, i.e.
        // deq(b).ret >= max over such a of deq(a).invoke. Maintain that
        // running max with a pointer into the ret-sorted list.
        let mut ai = 0;
        let mut max_deq_invoke: Option<(u64, usize)> = None; // (deq.invoke, enq idx)
        for &(_, b_enq_invoke, _, b_deq_ret, b_idx) in &by_invoke {
            while ai < pairs.len() && pairs[ai].0 < b_enq_invoke {
                let cand = (pairs[ai].2, pairs[ai].4);
                if max_deq_invoke.is_none() || cand.0 > max_deq_invoke.unwrap().0 {
                    max_deq_invoke = Some(cand);
                }
                ai += 1;
            }
            if let Some((a_deq_invoke, a_idx)) = max_deq_invoke {
                if b_deq_ret < a_deq_invoke {
                    return Some(Violation::Reordered {
                        first_enqueue: a_idx,
                        second_enqueue: b_idx,
                    });
                }
            }
        }
    }

    // 5. Empty soundness: for each None-dequeue D, look for a value
    // enqueued entirely before D (enq.ret < D.invoke) whose dequeue (if
    // any) begins only after D returns (deq.invoke ≥ D.ret). Such a
    // value is in the queue across D's whole window ⇒ D is illegal.
    //
    // O(n log n): values sorted by enqueue-return, prefix maxima of
    // their dequeue-invoke (∞ for never-dequeued), binary search per D.
    if !empties.is_empty() {
        let mut resident: Vec<(u64, u64, u64)> = enq_by_value
            .iter()
            .map(|(&v, &e)| {
                let deq_inv = deq_by_value
                    .get(&v)
                    .map(|&dq| ops[dq].invoke)
                    .unwrap_or(u64::MAX);
                (ops[e].ret, deq_inv, v)
            })
            .collect();
        resident.sort_unstable();
        // prefix_max[i] = the (deq_invoke, value) pair with max
        // deq_invoke among resident[..=i].
        let mut prefix_max: Vec<(u64, u64)> = Vec::with_capacity(resident.len());
        let mut best = (0u64, 0u64);
        for &(_, deq_inv, v) in &resident {
            if deq_inv >= best.0 {
                best = (deq_inv, v);
            }
            prefix_max.push(best);
        }
        for &d in &empties {
            let (d_inv, d_ret) = (ops[d].invoke, ops[d].ret);
            // Values with enq_ret < d_inv: a prefix of `resident`.
            let k = resident.partition_point(|&(enq_ret, _, _)| enq_ret < d_inv);
            if k > 0 {
                let (max_deq_inv, v) = prefix_max[k - 1];
                if max_deq_inv >= d_ret {
                    return Some(Violation::FalseEmpty {
                        dequeue: d,
                        resident_value: v,
                    });
                }
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpRecord;
    use crate::QueueOp::*;

    fn hist(spec: &[(QueueOp, u64, u64)]) -> History<QueueOp> {
        History::from_records(
            spec.iter()
                .enumerate()
                .map(|(t, (op, i, r))| OpRecord {
                    thread: t,
                    op: *op,
                    invoke: *i,
                    ret: *r,
                })
                .collect(),
        )
    }

    #[test]
    fn clean_history_passes() {
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(1)), 4, 5),
            (Dequeue(Some(2)), 6, 7),
            (Dequeue(None), 8, 9),
        ]);
        assert_eq!(check_necessary(&h), None);
    }

    #[test]
    fn invented_value_caught() {
        let h = hist(&[(Enqueue(1), 0, 1), (Dequeue(Some(9)), 2, 3)]);
        assert!(matches!(
            check_necessary(&h),
            Some(Violation::Invented { value: 9, .. })
        ));
    }

    #[test]
    fn dequeue_before_enqueue_caught() {
        let h = hist(&[(Dequeue(Some(1)), 0, 1), (Enqueue(1), 5, 6)]);
        assert!(matches!(
            check_necessary(&h),
            Some(Violation::Invented { value: 1, .. })
        ));
    }

    #[test]
    fn duplicate_caught() {
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Dequeue(Some(1)), 2, 3),
            (Dequeue(Some(1)), 4, 5),
        ]);
        assert!(matches!(
            check_necessary(&h),
            Some(Violation::Duplicated { value: 1, .. })
        ));
    }

    #[test]
    fn strict_reordering_caught() {
        // enq(1) < enq(2) strictly; deq(2) returns before deq(1) begins.
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(2)), 4, 5),
            (Dequeue(Some(1)), 6, 7),
        ]);
        assert!(matches!(
            check_necessary(&h),
            Some(Violation::Reordered { .. })
        ));
    }

    #[test]
    fn overlapping_enqueues_may_swap() {
        let h = hist(&[
            (Enqueue(1), 0, 10),
            (Enqueue(2), 1, 9),
            (Dequeue(Some(2)), 11, 12),
            (Dequeue(Some(1)), 13, 14),
        ]);
        assert_eq!(check_necessary(&h), None);
    }

    #[test]
    fn overlapping_dequeues_may_swap() {
        // Strictly ordered enqueues but overlapping dequeues: fine.
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(2)), 4, 10),
            (Dequeue(Some(1)), 5, 9),
        ]);
        assert_eq!(check_necessary(&h), None);
    }

    #[test]
    fn lost_value_caught() {
        // 1 enqueued strictly before 2; 2 came out, 1 never did — in a
        // complete history that proves 2 overtook 1.
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(2)), 4, 5),
        ]);
        assert!(matches!(
            check_necessary(&h),
            Some(Violation::Reordered { .. })
        ));
    }

    #[test]
    fn lingering_tail_value_ok() {
        // 2 enqueued after 1 and *not* dequeued: perfectly legal.
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(1)), 4, 5),
        ]);
        assert_eq!(check_necessary(&h), None);
    }

    #[test]
    fn false_empty_caught() {
        // 1 is in the queue for the empty dequeue's whole window.
        let h = hist(&[(Enqueue(1), 0, 1), (Dequeue(None), 2, 3)]);
        assert!(matches!(
            check_necessary(&h),
            Some(Violation::FalseEmpty {
                resident_value: 1,
                ..
            })
        ));
    }

    #[test]
    fn empty_next_to_overlapping_enqueue_ok() {
        let h = hist(&[(Enqueue(1), 0, 10), (Dequeue(None), 1, 2), (Dequeue(Some(1)), 11, 12)]);
        assert_eq!(check_necessary(&h), None);
    }

    #[test]
    fn empty_with_value_dequeued_concurrently_ok() {
        // 1 enqueued before, but its dequeue overlaps the empty one —
        // the empty may linearize after 1 is gone.
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Dequeue(Some(1)), 2, 10),
            (Dequeue(None), 3, 9),
        ]);
        assert_eq!(check_necessary(&h), None);
    }

    #[test]
    fn agrees_with_wgl_on_small_histories() {
        // Cross-validate against the exact checker: whatever the WGL
        // checker accepts, the necessary conditions must not reject.
        use crate::{check, Outcome, QueueModel};
        let histories = [
            hist(&[
                (Enqueue(1), 0, 4),
                (Enqueue(2), 1, 3),
                (Dequeue(Some(2)), 5, 8),
                (Dequeue(Some(1)), 6, 7),
            ]),
            hist(&[
                (Dequeue(None), 0, 1),
                (Enqueue(5), 2, 3),
                (Dequeue(Some(5)), 3, 4),
                (Dequeue(None), 5, 6),
            ]),
        ];
        for h in &histories {
            assert_eq!(check(&QueueModel, h), Outcome::Linearizable);
            assert_eq!(check_necessary(h), None);
        }
    }
}
