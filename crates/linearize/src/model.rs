//! Sequential specifications the checker validates histories against.

use std::collections::VecDeque;
use std::hash::Hash;

/// A sequential specification: a deterministic state machine whose
/// transitions validate an operation's *observed* result.
pub trait Model {
    /// Operation-with-result type recorded in histories.
    type Op: Clone;
    /// Abstract state. `Hash + Eq` feeds the checker's memo table.
    type State: Clone + Hash + Eq;

    /// The state before any operation.
    fn initial(&self) -> Self::State;

    /// If `op` (including its observed result) is legal in `state`,
    /// returns the successor state; otherwise `None`.
    fn step(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State>;
}

/// An operation on a FIFO queue of `u64`s, together with its observed
/// result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueOp {
    /// `enqueue(value)` (always succeeds).
    Enqueue(u64),
    /// `dequeue()` observing `Some(value)` or empty (`None`).
    Dequeue(Option<u64>),
}

/// The sequential FIFO queue specification.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueModel;

impl Model for QueueModel {
    type Op = QueueOp;
    type State = VecDeque<u64>;

    fn initial(&self) -> Self::State {
        VecDeque::new()
    }

    fn step(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        match *op {
            QueueOp::Enqueue(v) => {
                let mut s = state.clone();
                s.push_back(v);
                Some(s)
            }
            QueueOp::Dequeue(None) => state.is_empty().then(|| state.clone()),
            QueueOp::Dequeue(Some(v)) => {
                if state.front() == Some(&v) {
                    let mut s = state.clone();
                    s.pop_front();
                    Some(s)
                } else {
                    None
                }
            }
        }
    }
}

/// An operation on a single read/write register (used to self-test the
/// checker against the textbook examples).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegisterOp {
    /// `write(value)`.
    Write(u64),
    /// `read()` observing `value`.
    Read(u64),
}

/// A sequential read/write register specification (initial value 0).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegisterModel;

impl Model for RegisterModel {
    type Op = RegisterOp;
    type State = u64;

    fn initial(&self) -> Self::State {
        0
    }

    fn step(&self, state: &Self::State, op: &Self::Op) -> Option<Self::State> {
        match *op {
            RegisterOp::Write(v) => Some(v),
            RegisterOp::Read(v) => (*state == v).then_some(*state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_model_fifo() {
        let m = QueueModel;
        let s0 = m.initial();
        let s1 = m.step(&s0, &QueueOp::Enqueue(1)).unwrap();
        let s2 = m.step(&s1, &QueueOp::Enqueue(2)).unwrap();
        assert!(m.step(&s2, &QueueOp::Dequeue(Some(2))).is_none(), "LIFO rejected");
        let s3 = m.step(&s2, &QueueOp::Dequeue(Some(1))).unwrap();
        let s4 = m.step(&s3, &QueueOp::Dequeue(Some(2))).unwrap();
        assert!(m.step(&s4, &QueueOp::Dequeue(Some(9))).is_none());
        assert!(m.step(&s4, &QueueOp::Dequeue(None)).is_some());
        assert!(m.step(&s2, &QueueOp::Dequeue(None)).is_none(), "non-empty can't observe empty");
    }

    #[test]
    fn register_model() {
        let m = RegisterModel;
        let s = m.initial();
        assert!(m.step(&s, &RegisterOp::Read(0)).is_some());
        assert!(m.step(&s, &RegisterOp::Read(1)).is_none());
        let s = m.step(&s, &RegisterOp::Write(7)).unwrap();
        assert!(m.step(&s, &RegisterOp::Read(7)).is_some());
    }
}
