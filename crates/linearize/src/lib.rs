//! A linearizability checker for concurrent histories.
//!
//! The paper's §5 proves the queue linearizable by identifying the
//! linearization points of `enqueue` (the successful append CAS, L74)
//! and `dequeue` (the successful `deqTid` CAS, L135, or the tail read
//! L112 for the empty case). This crate provides the *testing*
//! counterpart of that proof: it records real multi-threaded histories
//! (operation invocations and responses with their observed results) and
//! decides whether some legal sequential order of the operations exists
//! that (a) matches every observed result and (b) respects real-time
//! order — Herlihy & Wing's definition of linearizability.
//!
//! The decision procedure is the classic Wing–Gong tree search in the
//! Lowe/"Porcupine" formulation, with memoization on
//! *(set of linearized operations, abstract state)* pairs. The abstract
//! state is supplied by a [`Model`]; [`QueueModel`] is the sequential
//! FIFO spec used throughout this workspace.
//!
//! Checking is NP-hard in general, so the checker carries a step budget
//! and returns [`Outcome::Unknown`] when exceeded; the test suites keep
//! histories small enough that this never triggers in practice.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod checker;
mod fastq;
mod history;
mod model;

pub use checker::{check, check_with_budget, Outcome, DEFAULT_BUDGET};
pub use fastq::{check_necessary, Violation};
pub use history::{History, OpRecord, Recorder, ThreadLog};
pub use model::{Model, QueueModel, QueueOp, RegisterModel, RegisterOp};
