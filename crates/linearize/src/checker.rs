//! The Wing–Gong linearizability search with memoization.

use std::collections::HashSet;

use crate::bitset::BitSet;
use crate::history::{History, OpRecord};
use crate::model::Model;

/// Default search budget (DFS nodes visited) before giving up.
pub const DEFAULT_BUDGET: u64 = 20_000_000;

/// Verdict of a linearizability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A legal sequential order respecting real time exists.
    Linearizable,
    /// No such order exists: the implementation misbehaved.
    NotLinearizable,
    /// The search budget was exhausted before a verdict was reached.
    Unknown,
}

/// Checks `history` against `model` with the [`DEFAULT_BUDGET`].
pub fn check<M: Model>(model: &M, history: &History<M::Op>) -> Outcome {
    check_with_budget(model, history, DEFAULT_BUDGET)
}

/// Checks `history` against `model`, visiting at most `budget` search
/// nodes.
pub fn check_with_budget<M: Model>(model: &M, history: &History<M::Op>, budget: u64) -> Outcome {
    if history.is_empty() {
        return Outcome::Linearizable;
    }
    debug_assert!(history.validate_stamps(), "malformed history stamps");

    // Sort by invocation time: the candidate set at every node is then a
    // prefix of the not-yet-linearized operations.
    let mut ops: Vec<&OpRecord<M::Op>> = history.ops().iter().collect();
    ops.sort_by_key(|r| r.invoke);

    let mut search = Search {
        model,
        ops: &ops,
        done: BitSet::new(ops.len()),
        memo: HashSet::new(),
        remaining: budget,
    };
    match search.dfs(model.initial()) {
        Ok(true) => Outcome::Linearizable,
        Ok(false) => Outcome::NotLinearizable,
        Err(Exhausted) => Outcome::Unknown,
    }
}

/// Marker for budget exhaustion.
struct Exhausted;

struct Search<'a, M: Model> {
    model: &'a M,
    /// Operations sorted by invocation stamp.
    ops: &'a [&'a OpRecord<M::Op>],
    /// Operations already placed in the linearization order.
    done: BitSet,
    /// (done-mask, state) pairs from which no completion exists.
    memo: HashSet<(BitSet, M::State)>,
    remaining: u64,
}

impl<M: Model> Search<'_, M> {
    /// Returns whether the not-yet-linearized suffix can be completed
    /// from `state`.
    fn dfs(&mut self, state: M::State) -> Result<bool, Exhausted> {
        debug_assert!(self.done.count() <= self.ops.len());
        if self.done.is_full() {
            return Ok(true);
        }
        if self.remaining == 0 {
            return Err(Exhausted);
        }
        self.remaining -= 1;
        if !self.memo.insert((self.done.clone(), state.clone())) {
            // Same frontier explored before and it failed (success exits
            // the whole search immediately).
            return Ok(false);
        }
        // An operation may linearize next only if no *pending* operation
        // returned before it was invoked (real-time order). All stamps
        // are unique, so strict comparison is exact.
        let min_ret = self
            .ops
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.done.contains(*i))
            .map(|(_, r)| r.ret)
            .min()
            .expect("not full ⇒ at least one pending op");
        for i in 0..self.ops.len() {
            let rec = self.ops[i];
            if rec.invoke > min_ret {
                break; // sorted by invoke: no further candidates
            }
            if self.done.contains(i) {
                continue;
            }
            if let Some(next) = self.model.step(&state, &rec.op) {
                self.done.insert(i);
                let found = self.dfs(next)?;
                self.done.remove(i);
                if found {
                    return Ok(true);
                }
            }
        }
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{History, OpRecord};
    use crate::model::{QueueModel, QueueOp, RegisterModel, RegisterOp};

    /// Builds a history from `(op, invoke, ret)` triples.
    fn hist<O: Clone>(spec: &[(O, u64, u64)]) -> History<O> {
        History::from_records(
            spec.iter()
                .enumerate()
                .map(|(t, (op, i, r))| OpRecord {
                    thread: t,
                    op: op.clone(),
                    invoke: *i,
                    ret: *r,
                })
                .collect(),
        )
    }

    #[test]
    fn empty_history() {
        let h: History<QueueOp> = History::from_records(vec![]);
        assert_eq!(check(&QueueModel, &h), Outcome::Linearizable);
    }

    #[test]
    fn sequential_fifo_accepted() {
        use QueueOp::*;
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(1)), 4, 5),
            (Dequeue(Some(2)), 6, 7),
            (Dequeue(None), 8, 9),
        ]);
        assert_eq!(check(&QueueModel, &h), Outcome::Linearizable);
    }

    #[test]
    fn sequential_lifo_rejected() {
        use QueueOp::*;
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3),
            (Dequeue(Some(2)), 4, 5), // stack order: illegal for a queue
        ]);
        assert_eq!(check(&QueueModel, &h), Outcome::NotLinearizable);
    }

    #[test]
    fn overlapping_enqueues_may_reorder() {
        use QueueOp::*;
        // enqueue(1) and enqueue(2) overlap in real time, so either
        // insertion order is a valid linearization.
        let h = hist(&[
            (Enqueue(1), 0, 10),
            (Enqueue(2), 1, 9),
            (Dequeue(Some(2)), 11, 12),
            (Dequeue(Some(1)), 13, 14),
        ]);
        assert_eq!(check(&QueueModel, &h), Outcome::Linearizable);
    }

    #[test]
    fn non_overlapping_enqueues_must_not_reorder() {
        use QueueOp::*;
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Enqueue(2), 2, 3), // strictly after enqueue(1)
            (Dequeue(Some(2)), 4, 5),
            (Dequeue(Some(1)), 6, 7),
        ]);
        assert_eq!(check(&QueueModel, &h), Outcome::NotLinearizable);
    }

    #[test]
    fn empty_observation_with_resident_element_rejected() {
        use QueueOp::*;
        // The element is in the queue for the dequeue's whole window, so
        // observing "empty" is illegal.
        let h = hist(&[(Enqueue(1), 0, 1), (Dequeue(None), 2, 3)]);
        assert_eq!(check(&QueueModel, &h), Outcome::NotLinearizable);
    }

    #[test]
    fn empty_observation_overlapping_enqueue_accepted() {
        use QueueOp::*;
        // The dequeue overlaps the enqueue: it may linearize first.
        let h = hist(&[(Enqueue(1), 0, 10), (Dequeue(None), 1, 2), (Dequeue(Some(1)), 11, 12)]);
        assert_eq!(check(&QueueModel, &h), Outcome::Linearizable);
    }

    #[test]
    fn duplicate_dequeue_rejected() {
        use QueueOp::*;
        let h = hist(&[
            (Enqueue(1), 0, 1),
            (Dequeue(Some(1)), 2, 3),
            (Dequeue(Some(1)), 4, 5), // value delivered twice
        ]);
        assert_eq!(check(&QueueModel, &h), Outcome::NotLinearizable);
    }

    #[test]
    fn register_textbook_examples() {
        use RegisterOp::*;
        // w(1) overlaps r→1 then r→0 afterwards: the late read of 0 is
        // illegal once 1 was observably written.
        let bad = hist(&[(Write(1), 0, 10), (Read(1), 1, 2), (Read(0), 3, 4)]);
        assert_eq!(check(&RegisterModel, &bad), Outcome::NotLinearizable);
        // Without the early read of 1, both orders are possible.
        let ok = hist(&[(Write(1), 0, 10), (Read(0), 3, 4)]);
        assert_eq!(check(&RegisterModel, &ok), Outcome::Linearizable);
    }

    #[test]
    fn budget_exhaustion_reports_unknown() {
        use QueueOp::*;
        let h = hist(&[(Enqueue(1), 0, 1), (Dequeue(Some(1)), 2, 3)]);
        assert_eq!(check_with_budget(&QueueModel, &h, 1), Outcome::Unknown);
    }

    #[test]
    fn wide_concurrency_is_tractable() {
        use QueueOp::*;
        // 8 fully-overlapping enqueues followed by 8 dequeues in an
        // arbitrary but matching order. (The frontier of k overlapping
        // enqueues has Σ P(k, i) distinct (mask, state) pairs — ~10^5 at
        // k = 8 but ~10^9 at k = 12, so this width is deliberate.)
        let mut spec = Vec::new();
        for v in 0..8u64 {
            spec.push((Enqueue(v), 0, 100));
        }
        for (k, v) in [3u64, 0, 7, 1, 2, 4, 5, 6].iter().enumerate() {
            let t = 101 + 2 * k as u64;
            spec.push((Dequeue(Some(*v)), t, t + 1));
        }
        let h = hist(&spec);
        assert_eq!(check(&QueueModel, &h), Outcome::Linearizable);
    }

    #[test]
    fn wide_concurrency_negative_case() {
        use QueueOp::*;
        // As above but one dequeued value was never enqueued.
        let mut spec = Vec::new();
        for v in 0..8u64 {
            spec.push((Enqueue(v), 0, 100));
        }
        for (k, v) in [3u64, 0, 7, 99, 2, 4, 5, 6].iter().enumerate() {
            let t = 101 + 2 * k as u64;
            spec.push((Dequeue(Some(*v)), t, t + 1));
        }
        let h = hist(&spec);
        assert_eq!(check(&QueueModel, &h), Outcome::NotLinearizable);
    }
}
