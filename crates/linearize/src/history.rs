//! Concurrent-history recording.
//!
//! A [`Recorder`] hands out monotone timestamps from a shared atomic
//! counter; each worker thread stamps its operations into a private
//! [`ThreadLog`] (no cross-thread contention beyond the counter), and
//! the logs are merged into a [`History`] afterwards.
//!
//! Because the invocation stamp is taken *before* the operation starts
//! and the response stamp *after* it returns, the interval
//! `[invoke, ret]` contains the operation's real-time window, which is
//! exactly what the linearizability definition constrains.

use std::sync::atomic::{AtomicU64, Ordering};

/// One completed operation in a history.
#[derive(Debug, Clone)]
pub struct OpRecord<O> {
    /// Recording thread (diagnostics only; the checker ignores it).
    pub thread: usize,
    /// The operation together with its observed result.
    pub op: O,
    /// Timestamp taken immediately before invoking the operation.
    pub invoke: u64,
    /// Timestamp taken immediately after the operation returned.
    pub ret: u64,
}

/// A complete concurrent history: the merged logs of all threads.
#[derive(Debug, Clone, Default)]
pub struct History<O> {
    ops: Vec<OpRecord<O>>,
}

impl<O> History<O> {
    /// Builds a history from per-thread logs.
    pub fn from_logs<'r>(logs: impl IntoIterator<Item = ThreadLog<'r, O>>) -> Self
    where
        O: 'r,
    {
        let mut ops = Vec::new();
        for log in logs {
            ops.extend(log.records);
        }
        History { ops }
    }

    /// Builds a history directly from records (tests, generators).
    pub fn from_records(ops: Vec<OpRecord<O>>) -> Self {
        History { ops }
    }

    /// The recorded operations (unordered).
    pub fn ops(&self) -> &[OpRecord<O>] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Sanity-checks stamp consistency (`invoke < ret` for every op).
    pub fn validate_stamps(&self) -> bool {
        self.ops.iter().all(|r| r.invoke < r.ret)
    }
}

/// Shared monotone clock for history recording.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
}

impl Recorder {
    /// Creates a recorder with its clock at zero.
    pub fn new() -> Self {
        Recorder {
            clock: AtomicU64::new(0),
        }
    }

    /// Takes the next timestamp (unique and monotone).
    pub fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Creates a log for one worker thread.
    pub fn log<O>(&self, thread: usize) -> ThreadLog<'_, O> {
        ThreadLog {
            recorder: self,
            thread,
            records: Vec::new(),
        }
    }
}

/// A single thread's operation log (move it into the worker thread).
#[derive(Debug)]
pub struct ThreadLog<'r, O> {
    recorder: &'r Recorder,
    thread: usize,
    records: Vec<OpRecord<O>>,
}

impl<O> ThreadLog<'_, O> {
    /// Runs `f`, stamping its window, and records `to_op(result)`.
    pub fn record<R>(&mut self, f: impl FnOnce() -> R, to_op: impl FnOnce(&R) -> O) -> R {
        let invoke = self.recorder.stamp();
        let result = f();
        let ret = self.recorder.stamp();
        self.records.push(OpRecord {
            thread: self.thread,
            op: to_op(&result),
            invoke,
            ret,
        });
        result
    }

    /// The records accumulated so far.
    pub fn records(&self) -> &[OpRecord<O>] {
        &self.records
    }
}

// Note: `ThreadLog` borrows the recorder, so scoped threads are the
// intended usage pattern (each scope worker takes a log by value).

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueueOp;

    #[test]
    fn stamps_are_unique_and_monotone() {
        let r = Recorder::new();
        let a = r.stamp();
        let b = r.stamp();
        assert!(b > a);
    }

    #[test]
    fn record_wraps_operation_window() {
        let r = Recorder::new();
        let mut log = r.log::<QueueOp>(0);
        let out = log.record(|| 41 + 1, |v| QueueOp::Enqueue(*v));
        assert_eq!(out, 42);
        let rec = &log.records()[0];
        assert!(rec.invoke < rec.ret);
        assert_eq!(rec.op, QueueOp::Enqueue(42));
    }

    #[test]
    fn merge_logs_into_history() {
        let r = Recorder::new();
        let mut l0 = r.log::<QueueOp>(0);
        let mut l1 = r.log::<QueueOp>(1);
        l0.record(|| (), |_| QueueOp::Enqueue(1));
        l1.record(|| (), |_| QueueOp::Dequeue(Some(1)));
        let h = History::from_logs([l0, l1]);
        assert_eq!(h.len(), 2);
        assert!(h.validate_stamps());
    }

    #[test]
    fn cross_thread_stamps_order_real_time() {
        let r = Recorder::new();
        let mut logs = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let r = &r;
                    s.spawn(move || {
                        let mut log = r.log::<QueueOp>(t);
                        for i in 0..100 {
                            log.record(|| (), |_| QueueOp::Enqueue(i));
                        }
                        log
                    })
                })
                .collect();
            for h in handles {
                logs.push(h.join().unwrap());
            }
        });
        let h = History::from_logs(logs);
        assert_eq!(h.len(), 400);
        assert!(h.validate_stamps());
        // All stamps distinct.
        let mut stamps: Vec<u64> = h.ops().iter().flat_map(|r| [r.invoke, r.ret]).collect();
        stamps.sort_unstable();
        stamps.dedup();
        assert_eq!(stamps.len(), 800);
    }
}
