//! Property-based tests for the linearizability checker itself:
//! soundness on generated sequential histories, robustness of the
//! real-time relaxation, and rejection of corrupted results.

use std::collections::VecDeque;

use linearize::{check, History, OpRecord, Outcome, QueueModel, QueueOp};
use proptest::prelude::*;

/// Applies a random enqueue/dequeue script to a real `VecDeque`,
/// producing a valid *sequential* history (correct observed results,
/// disjoint windows).
fn sequential_history(script: &[bool]) -> History<QueueOp> {
    let mut model: VecDeque<u64> = VecDeque::new();
    let mut records = Vec::new();
    let mut t = 0u64;
    let mut next_value = 0u64;
    for &is_enq in script {
        let op = if is_enq {
            let v = next_value;
            next_value += 1;
            model.push_back(v);
            QueueOp::Enqueue(v)
        } else {
            QueueOp::Dequeue(model.pop_front())
        };
        records.push(OpRecord {
            thread: 0,
            op,
            invoke: t,
            ret: t + 1,
        });
        t += 2;
    }
    History::from_records(records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every honestly recorded sequential history must be accepted.
    #[test]
    fn sequential_histories_are_linearizable(script in prop::collection::vec(any::<bool>(), 0..40)) {
        let h = sequential_history(&script);
        prop_assert_eq!(check(&QueueModel, &h), Outcome::Linearizable);
    }

    /// Widening operation windows (earlier invoke, later return) only
    /// *adds* permissible linearizations, so the verdict must stay
    /// positive.
    #[test]
    fn window_relaxation_preserves_linearizability(
        script in prop::collection::vec(any::<bool>(), 1..25),
        widen in prop::collection::vec((0u64..3, 0u64..3), 25),
    ) {
        let h = sequential_history(&script);
        let relaxed: Vec<OpRecord<QueueOp>> = h
            .ops()
            .iter()
            .zip(widen.iter().cycle())
            .map(|(r, (a, b))| OpRecord {
                thread: r.thread,
                op: r.op,
                invoke: r.invoke.saturating_sub(*a * 2),
                ret: r.ret + b * 2,
            })
            .collect();
        // Re-stamp to keep stamps unique-ish is unnecessary: the checker
        // only compares invoke-vs-ret across *different* ops, and ties
        // there err on the permissive side, which cannot turn a
        // linearizable history into a rejected one.
        let h2 = History::from_records(relaxed);
        prop_assert_eq!(check(&QueueModel, &h2), Outcome::Linearizable);
    }

    /// Corrupting one observed dequeue value to something never enqueued
    /// must always be caught.
    #[test]
    fn corrupted_value_is_rejected(
        script in prop::collection::vec(any::<bool>(), 2..30),
        victim in any::<prop::sample::Index>(),
    ) {
        let h = sequential_history(&script);
        let hits: Vec<usize> = h
            .ops()
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r.op, QueueOp::Dequeue(Some(_))))
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!hits.is_empty());
        let target = hits[victim.index(hits.len())];
        let mut records: Vec<OpRecord<QueueOp>> = h.ops().to_vec();
        records[target].op = QueueOp::Dequeue(Some(1_000_000));
        let h2 = History::from_records(records);
        prop_assert_eq!(check(&QueueModel, &h2), Outcome::NotLinearizable);
    }

    /// Dropping operations from a linearizable history keeps enqueues
    /// legal... but NOT necessarily dequeues; instead test the dual:
    /// permuting the *stamps* of non-overlapping dequeues so a later
    /// value is claimed before an earlier one must be rejected.
    #[test]
    fn swapped_sequential_dequeues_are_rejected(n in 2usize..12) {
        // enq 0..n, then deq all in order, then swap two dequeue results.
        let script: Vec<bool> = std::iter::repeat_n(true, n)
            .chain(std::iter::repeat_n(false, n))
            .collect();
        let h = sequential_history(&script);
        let mut records: Vec<OpRecord<QueueOp>> = h.ops().to_vec();
        let (a, b) = (n, n + 1); // first two dequeues
        let (oa, ob) = (records[a].op, records[b].op);
        records[a].op = ob;
        records[b].op = oa;
        let h2 = History::from_records(records);
        prop_assert_eq!(check(&QueueModel, &h2), Outcome::NotLinearizable);
    }
}
