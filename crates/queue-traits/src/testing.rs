//! Generic conformance checks run against every queue implementation in
//! the workspace. Each queue crate's test suite calls into these with its
//! own constructor, so all implementations are held to the same contract.

use crate::{ConcurrentQueue, QueueHandle};

/// Scales an iteration count down in unoptimized (debug) builds so the
/// heavy stress tests stay tractable while `cargo test --release` keeps
/// full coverage. Debug builds of these lock-free loops are easily an
/// order of magnitude slower, and CI boxes may have a single core.
pub fn scaled(n: usize) -> usize {
    if cfg!(debug_assertions) {
        (n / 10).max(1)
    } else {
        n
    }
}

/// Single-threaded FIFO semantics: values come out in insertion order and
/// an exhausted queue reports empty.
pub fn check_sequential_fifo<Q: ConcurrentQueue<u64>>(queue: &Q) {
    let mut h = queue.register().expect("register");
    assert_eq!(h.dequeue(), None, "fresh queue must be empty");
    for i in 0..100 {
        h.enqueue(i);
    }
    for i in 0..100 {
        assert_eq!(h.dequeue(), Some(i), "FIFO order violated");
    }
    assert_eq!(h.dequeue(), None, "drained queue must be empty");
    // Interleaved enqueue/dequeue (the paper's pairs workload, 1 thread).
    for i in 0..1000 {
        h.enqueue(i);
        assert_eq!(h.dequeue(), Some(i));
    }
    assert_eq!(h.dequeue(), None);
}

/// Multi-producer multi-consumer conservation: every enqueued value is
/// dequeued exactly once, and nothing is invented.
///
/// Values are tagged `producer_id * per_thread + seq` so uniqueness and
/// per-producer order can both be checked.
pub fn check_mpmc_conservation<Q: ConcurrentQueue<u64> + Sync>(
    queue: &Q,
    producers: usize,
    consumers: usize,
    per_producer: usize,
) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    let total = producers * per_producer;
    let consumed = AtomicUsize::new(0);
    let barrier = Barrier::new(producers + consumers);
    let mut all: Vec<Vec<u64>> = Vec::new();

    std::thread::scope(|s| {
        for p in 0..producers {
            let queue = &queue;
            let barrier = &barrier;
            s.spawn(move || {
                let mut h = queue.register().expect("register producer");
                barrier.wait();
                for i in 0..per_producer {
                    h.enqueue((p * per_producer + i) as u64);
                }
            });
        }
        let handles: Vec<_> = (0..consumers)
            .map(|_| {
                let queue = &queue;
                let barrier = &barrier;
                let consumed = &consumed;
                s.spawn(move || {
                    let mut h = queue.register().expect("register consumer");
                    let mut got = Vec::new();
                    barrier.wait();
                    while consumed.load(Ordering::Relaxed) < total {
                        if let Some(v) = h.dequeue() {
                            consumed.fetch_add(1, Ordering::Relaxed);
                            got.push(v);
                        } else {
                            // Yield rather than spin: on oversubscribed
                            // (or single-core) machines a spinning
                            // consumer burns its whole quantum while the
                            // producers it waits for are descheduled.
                            std::thread::yield_now();
                        }
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            all.push(h.join().unwrap());
        }
    });

    let mut seen = vec![false; total];
    for batch in &all {
        for &v in batch {
            let v = v as usize;
            assert!(v < total, "invented value {v}");
            assert!(!seen[v], "value {v} dequeued twice");
            seen[v] = true;
        }
    }
    assert!(seen.iter().all(|&b| b), "some values were lost");

    // Per-producer FIFO: within each consumer's stream, values from the
    // same producer must appear in increasing sequence order (a necessary
    // condition of linearizability for FIFO queues).
    for batch in &all {
        let mut last = vec![None::<u64>; producers];
        for &v in batch {
            let p = (v as usize) / per_producer;
            if let Some(prev) = last[p] {
                assert!(
                    v > prev,
                    "per-producer FIFO violated: {prev} before {v} from producer {p}"
                );
            }
            last[p] = Some(v);
        }
    }
}

/// Verifies consumer batches against the producer-tagged ledger used by
/// [`check_mpmc_conservation`] (values are `producer * per_producer +
/// seq`), tolerating up to `missing_allowance` absent values — a crashed
/// consumer may have taken a value to its grave. Duplicated or invented
/// values are never tolerated, and per-producer FIFO must hold within
/// each batch. Returns the number of missing values.
pub fn verify_ledger(
    batches: &[Vec<u64>],
    producers: usize,
    per_producer: usize,
    missing_allowance: usize,
) -> usize {
    let total = producers * per_producer;
    let mut seen = vec![false; total];
    for batch in batches {
        for &v in batch {
            let v = v as usize;
            assert!(v < total, "invented value {v}");
            assert!(!seen[v], "value {v} dequeued twice");
            seen[v] = true;
        }
    }
    let missing = seen.iter().filter(|&&b| !b).count();
    assert!(
        missing <= missing_allowance,
        "{missing} values lost, but at most {missing_allowance} may be \
         unaccounted for"
    );
    for batch in batches {
        let mut last = vec![None::<u64>; producers];
        for &v in batch {
            let p = (v as usize) / per_producer;
            if let Some(prev) = last[p] {
                assert!(
                    v > prev,
                    "per-producer FIFO violated: {prev} before {v} from producer {p}"
                );
            }
            last[p] = Some(v);
        }
    }
    missing
}

/// Values must never be duplicated or lost when the element type owns heap
/// memory — exercises the take-once semantics of node payloads.
pub fn check_owned_payloads<Q: ConcurrentQueue<Box<u64>> + Sync>(queue: &Q, threads: usize) {
    use std::sync::Barrier;
    let per = 2_000usize;
    let barrier = Barrier::new(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let queue = &queue;
            let barrier = &barrier;
            s.spawn(move || {
                let mut h = queue.register().expect("register");
                barrier.wait();
                let mut sum_in = 0u64;
                let mut sum_out = 0u64;
                let mut outstanding = 0usize;
                for i in 0..per {
                    let v = (t * per + i) as u64;
                    sum_in += v;
                    h.enqueue(Box::new(v));
                    outstanding += 1;
                    if i % 2 == 1 {
                        if let Some(b) = h.dequeue() {
                            sum_out += *b;
                            outstanding -= 1;
                        }
                    }
                }
                while outstanding > 0 {
                    if let Some(b) = h.dequeue() {
                        sum_out += *b;
                        outstanding -= 1;
                    }
                }
                // Sums cannot be compared per-thread (threads steal each
                // other's values); the real check is that every Box is
                // dropped exactly once, which ASan/Miri would catch and
                // the process-global allocator keeps honest. Touch the
                // sums so the loops aren't optimized away.
                assert!(sum_in > 0 || per == 0);
                std::hint::black_box(sum_out);
            });
        }
    });
    // Drain leftovers on one handle.
    let mut h = queue.register().expect("register");
    while h.dequeue().is_some() {}
}

/// Registration must hand out at most `capacity` concurrent handles and
/// recycle released ones.
pub fn check_registration_capacity<Q: ConcurrentQueue<u64>>(queue: &Q, capacity: usize) {
    if capacity == usize::MAX {
        // Unbounded queues (baselines) trivially pass.
        let _h = queue.register().expect("register");
        return;
    }
    let mut handles = Vec::new();
    for _ in 0..capacity {
        handles.push(queue.register().expect("capacity not yet reached"));
    }
    assert!(
        queue.register().is_err(),
        "registration beyond capacity must fail"
    );
    handles.pop();
    let _again = queue
        .register()
        .expect("released slot must be reusable (long-lived renaming)");
}
