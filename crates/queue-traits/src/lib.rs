//! Common traits implemented by every concurrent FIFO queue in this
//! workspace.
//!
//! The traits deliberately mirror the *usage model* of the Kogan–Petrank
//! wait-free queue (the paper's contribution): a thread first *registers*
//! with the queue, obtaining a [`QueueHandle`] bound to a thread slot, and
//! then performs operations through that handle. Queues that do not need
//! per-thread state (e.g. the Michael–Scott baseline) return a trivial
//! handle, so benchmarks and tests can be written once, generically.
//!
//! Handles take `&mut self` on operations: a handle represents *one*
//! logical thread of the algorithm and must never be used concurrently.
//! Handles are `Send` (they may be moved into a worker thread) but not
//! `Sync`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ext;
pub mod testing;

pub use ext::QueueHandleExt;

use std::fmt;

/// Error returned by [`ConcurrentQueue::register`] when the queue's thread
/// capacity (the paper's `NUM_THRDS`) is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistrationError {
    /// The maximum number of simultaneously registered handles.
    pub capacity: usize,
}

impl fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue thread capacity exhausted ({} handles already registered)",
            self.capacity
        )
    }
}

impl std::error::Error for RegistrationError {}

/// A per-thread handle through which queue operations are performed.
///
/// Dropping the handle releases the underlying thread slot (if any), so
/// slots can be reused by threads that register later — the "dynamic
/// thread IDs via long-lived renaming" relaxation of §3.3 of the paper.
pub trait QueueHandle<T>: Send {
    /// Inserts `value` at the tail of the queue.
    fn enqueue(&mut self, value: T);

    /// Removes and returns the value at the head of the queue, or `None`
    /// if the queue is observed empty (the paper's `EmptyException`).
    fn dequeue(&mut self) -> Option<T>;
}

/// A multi-producer multi-consumer FIFO queue.
pub trait ConcurrentQueue<T: Send>: Send + Sync {
    /// The handle type produced by [`register`](Self::register).
    type Handle<'a>: QueueHandle<T> + 'a
    where
        Self: 'a;

    /// Registers the calling thread, returning a handle bound to a free
    /// thread slot.
    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError>;

    /// Upper bound on the number of simultaneously registered handles.
    /// `usize::MAX` for queues without per-thread state.
    fn thread_capacity(&self) -> usize {
        usize::MAX
    }
}

/// Convenience: run `f` with a freshly registered handle, panicking if the
/// queue is at thread capacity. Used pervasively by tests and benchmarks.
pub fn with_handle<T, Q, R>(queue: &Q, f: impl FnOnce(&mut Q::Handle<'_>) -> R) -> R
where
    T: Send,
    Q: ConcurrentQueue<T>,
{
    let mut h = queue.register().expect("queue thread capacity exhausted");
    f(&mut h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_error_display() {
        let e = RegistrationError { capacity: 8 };
        let s = e.to_string();
        assert!(s.contains('8'), "display should mention capacity: {s}");
    }

    #[test]
    fn registration_error_is_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(RegistrationError { capacity: 1 });
    }
}
