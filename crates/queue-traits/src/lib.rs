//! Common traits implemented by every concurrent FIFO queue in this
//! workspace.
//!
//! The traits deliberately mirror the *usage model* of the Kogan–Petrank
//! wait-free queue (the paper's contribution): a thread first *registers*
//! with the queue, obtaining a [`QueueHandle`] bound to a thread slot, and
//! then performs operations through that handle. Queues that do not need
//! per-thread state (e.g. the Michael–Scott baseline) return a trivial
//! handle, so benchmarks and tests can be written once, generically.
//!
//! Handles take `&mut self` on operations: a handle represents *one*
//! logical thread of the algorithm and must never be used concurrently.
//! Handles are `Send` (they may be moved into a worker thread) but not
//! `Sync`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ext;
pub mod testing;

pub use ext::QueueHandleExt;

use std::fmt;

/// Error returned by [`ConcurrentQueue::register`] when the queue's thread
/// capacity (the paper's `NUM_THRDS`) is exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistrationError {
    /// The maximum number of simultaneously registered handles.
    pub capacity: usize,
}

impl fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue thread capacity exhausted ({} handles already registered)",
            self.capacity
        )
    }
}

impl std::error::Error for RegistrationError {}

/// Per-handle fast-path/slow-path execution counters, for queues that
/// run a bounded lock-free fast path before their wait-free fallback
/// (the Kogan–Petrank 2012 methodology). Plain (non-atomic) because a
/// handle is single-threaded; the harness merges them after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Operations completed entirely on the fast path.
    pub fast_completions: u64,
    /// Fast-path attempts that exhausted their CAS-failure budget and
    /// fell back to the slow path.
    pub fast_exhaustions: u64,
    /// Fast-path attempts demoted to the slow path because a starving
    /// peer was observed.
    pub fast_starvation_demotions: u64,
    /// Operations that ran the slow path (demoted ones included; for a
    /// slow-only handle this is every operation).
    pub slow_ops: u64,
}

impl FastPathStats {
    /// Fast-path attempts that ended in a fallback of either kind.
    pub fn fallbacks(&self) -> u64 {
        self.fast_exhaustions + self.fast_starvation_demotions
    }

    /// Fraction of fast-path attempts (completions + fallbacks) that
    /// fell back to the slow path; 0.0 when the fast path never ran.
    pub fn fallback_rate(&self) -> f64 {
        let attempts = self.fast_completions + self.fallbacks();
        if attempts == 0 {
            return 0.0;
        }
        self.fallbacks() as f64 / attempts as f64
    }

    /// Accumulates another handle's counters into this one.
    pub fn merge(&mut self, other: &FastPathStats) {
        self.fast_completions += other.fast_completions;
        self.fast_exhaustions += other.fast_exhaustions;
        self.fast_starvation_demotions += other.fast_starvation_demotions;
        self.slow_ops += other.slow_ops;
    }
}

/// A per-thread handle through which queue operations are performed.
///
/// Dropping the handle releases the underlying thread slot (if any), so
/// slots can be reused by threads that register later — the "dynamic
/// thread IDs via long-lived renaming" relaxation of §3.3 of the paper.
pub trait QueueHandle<T>: Send {
    /// Inserts `value` at the tail of the queue.
    fn enqueue(&mut self, value: T);

    /// Removes and returns the value at the head of the queue, or `None`
    /// if the queue is observed empty (the paper's `EmptyException`).
    fn dequeue(&mut self) -> Option<T>;

    /// Attempts to insert `value` without blocking, handing it back if
    /// the queue has no room. The default forwards to [`enqueue`]
    /// (unbounded queues never report full); bounded engines override
    /// this to surface their capacity limit, which layers like
    /// `kp-channel` translate into a `Full` error instead of spinning.
    ///
    /// [`enqueue`]: QueueHandle::enqueue
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        self.enqueue(value);
        Ok(())
    }

    /// Enqueues the values of `batch` in order until the queue refuses
    /// one (a bounded engine at capacity), removing the enqueued prefix
    /// from `batch` and returning its length. On a partial stop the
    /// refused value is back at the front of `batch`, order preserved,
    /// so the caller can retry the same `Vec` after backpressure.
    ///
    /// The default loops [`try_enqueue`]; engines with per-operation
    /// fixed costs (epoch pins, unwind guards, helping prologues)
    /// override this to pay them once per batch.
    ///
    /// [`try_enqueue`]: QueueHandle::try_enqueue
    fn try_enqueue_batch(&mut self, batch: &mut Vec<T>) -> usize {
        let mut drain = batch.drain(..);
        let mut sent = 0;
        let mut tail: Option<(T, Vec<T>)> = None;
        while let Some(value) = drain.next() {
            match self.try_enqueue(value) {
                Ok(()) => sent += 1,
                Err(refused) => {
                    // Collect the rest before the drain's drop discards it.
                    tail = Some((refused, drain.by_ref().collect()));
                    break;
                }
            }
        }
        drop(drain);
        if let Some((refused, rest)) = tail {
            batch.push(refused);
            batch.extend(rest);
        }
        sent
    }

    /// Dequeues up to `max` immediately available values into `out`;
    /// returns how many were taken. Stops at the first empty
    /// observation. Engines override this to amortize per-operation
    /// fixed costs, exactly as with [`try_enqueue_batch`].
    ///
    /// [`try_enqueue_batch`]: QueueHandle::try_enqueue_batch
    fn dequeue_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Fast-path execution counters for this handle, or `None` for
    /// queues without a fast-path/slow-path split (the default).
    fn fast_path_stats(&self) -> Option<FastPathStats> {
        None
    }
}

/// A multi-producer multi-consumer FIFO queue.
pub trait ConcurrentQueue<T: Send>: Send + Sync {
    /// The handle type produced by [`register`](Self::register).
    type Handle<'a>: QueueHandle<T> + 'a
    where
        Self: 'a;

    /// Registers the calling thread, returning a handle bound to a free
    /// thread slot.
    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError>;

    /// Upper bound on the number of simultaneously registered handles.
    /// `usize::MAX` for queues without per-thread state.
    fn thread_capacity(&self) -> usize {
        usize::MAX
    }

    /// Best-effort count of values currently resident in the queue, or
    /// `None` when the engine cannot say (the default).
    ///
    /// This is a *gauge, not a linearizable length*: engines derive it
    /// from monotonic operation counters, so concurrent in-flight
    /// operations make it stale by up to the number of live handles.
    /// Overload layers (admission control, shard-health watchdogs)
    /// must treat it as advisory — correct at quiescence, bounded-lag
    /// under load — and never hang a liveness argument on it alone.
    fn depth_hint(&self) -> Option<usize> {
        None
    }

    /// Monotonic count of values removed from the queue so far (empty
    /// dequeues excluded), or `None` when the engine does not track it.
    /// A watchdog reads this twice and treats any advance as consumer
    /// progress — the channel-granularity analogue of the reaper's
    /// per-handle heartbeat.
    fn drained_hint(&self) -> Option<u64> {
        None
    }

    /// Monotonic memory-pressure signal: events where the engine's
    /// recycling degraded under load (cache/pool overflows pushed to
    /// the allocator or shared collector). `0` for engines with no
    /// such machinery (the default).
    fn pressure_hint(&self) -> u64 {
        0
    }

    /// Fixed element capacity, or `None` for unbounded engines (the
    /// default). Bounded engines report the construction-time cap so
    /// layers above can reason about fullness without engine-specific
    /// code.
    fn capacity_hint(&self) -> Option<usize> {
        None
    }
}

/// Convenience: run `f` with a freshly registered handle, panicking if the
/// queue is at thread capacity. Used pervasively by tests and benchmarks.
pub fn with_handle<T, Q, R>(queue: &Q, f: impl FnOnce(&mut Q::Handle<'_>) -> R) -> R
where
    T: Send,
    Q: ConcurrentQueue<T>,
{
    let mut h = queue.register().expect("queue thread capacity exhausted");
    f(&mut h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_error_display() {
        let e = RegistrationError { capacity: 8 };
        let s = e.to_string();
        assert!(s.contains('8'), "display should mention capacity: {s}");
    }

    #[test]
    fn registration_error_is_error() {
        fn takes_error<E: std::error::Error>(_: E) {}
        takes_error(RegistrationError { capacity: 1 });
    }

    #[test]
    fn gauge_hints_default_to_unknown() {
        /// A queue with no gauge machinery: every hint must fall back
        /// to "cannot say" so overload layers disable themselves.
        struct Opaque;
        struct OpaqueHandle;
        impl QueueHandle<u32> for OpaqueHandle {
            fn enqueue(&mut self, _: u32) {}
            fn dequeue(&mut self) -> Option<u32> {
                None
            }
        }
        impl ConcurrentQueue<u32> for Opaque {
            type Handle<'a> = OpaqueHandle;
            fn register(&self) -> Result<OpaqueHandle, RegistrationError> {
                Ok(OpaqueHandle)
            }
        }
        let q = Opaque;
        assert_eq!(q.depth_hint(), None);
        assert_eq!(q.drained_hint(), None);
        assert_eq!(q.pressure_hint(), 0);
        assert_eq!(q.capacity_hint(), None);
        assert_eq!(q.thread_capacity(), usize::MAX);
    }

    #[test]
    fn fast_path_stats_merge_and_rate() {
        assert_eq!(FastPathStats::default().fallback_rate(), 0.0);
        let mut a = FastPathStats {
            fast_completions: 3,
            fast_exhaustions: 1,
            fast_starvation_demotions: 0,
            slow_ops: 1,
        };
        let b = FastPathStats {
            fast_completions: 3,
            fast_exhaustions: 0,
            fast_starvation_demotions: 1,
            slow_ops: 1,
        };
        a.merge(&b);
        assert_eq!(a.fast_completions, 6);
        assert_eq!(a.fallbacks(), 2);
        assert_eq!(a.slow_ops, 2);
        assert!((a.fallback_rate() - 0.25).abs() < 1e-12);
    }
}
