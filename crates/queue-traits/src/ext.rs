//! Convenience combinators over [`QueueHandle`].
//!
//! The queue operations themselves are non-blocking (a dequeue on an
//! empty queue returns `None`, the paper's `EmptyException`); these
//! helpers implement the common polling idioms used by applications,
//! examples, and tests, so the spin loops live in one audited place.

use crate::QueueHandle;

/// Extension helpers for any queue handle.
pub trait QueueHandleExt<T>: QueueHandle<T> {
    /// Dequeues, spinning (with `spin_loop` hints) until a value is
    /// available. Only sensible when producers are known to be active —
    /// this busy-waits forever on a permanently empty queue.
    fn dequeue_spin(&mut self) -> T {
        loop {
            if let Some(v) = self.dequeue() {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Dequeues up to `max` immediately available values into `out`;
    /// returns how many were taken. Stops at the first empty
    /// observation. Forwards to [`QueueHandle::dequeue_batch`], so
    /// engine batch overrides apply here too.
    fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        self.dequeue_batch(out, max)
    }

    /// Enqueues every value from an iterator.
    fn extend_from(&mut self, values: impl IntoIterator<Item = T>) {
        for v in values {
            self.enqueue(v);
        }
    }
}

impl<T, H: QueueHandle<T> + ?Sized> QueueHandleExt<T> for H {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial in-memory handle for exercising the default methods.
    struct VecHandle(std::collections::VecDeque<u32>);
    impl QueueHandle<u32> for VecHandle {
        fn enqueue(&mut self, v: u32) {
            self.0.push_back(v);
        }
        fn dequeue(&mut self) -> Option<u32> {
            self.0.pop_front()
        }
    }

    #[test]
    fn drain_into_takes_at_most_max() {
        let mut h = VecHandle([1, 2, 3, 4].into());
        let mut out = Vec::new();
        assert_eq!(h.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(h.drain_into(&mut out, 10), 1, "stops when empty");
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(h.drain_into(&mut out, 10), 0);
    }

    #[test]
    fn extend_from_enqueues_all() {
        let mut h = VecHandle(Default::default());
        h.extend_from(10..15);
        let mut out = Vec::new();
        h.drain_into(&mut out, usize::MAX);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn dequeue_spin_returns_available_value() {
        let mut h = VecHandle([7].into());
        assert_eq!(h.dequeue_spin(), 7);
    }

    /// A bounded handle for the default batch methods: refuses values
    /// beyond its capacity so the partial-stop path is exercised.
    struct BoundedHandle {
        q: std::collections::VecDeque<u32>,
        cap: usize,
    }
    impl QueueHandle<u32> for BoundedHandle {
        fn enqueue(&mut self, v: u32) {
            self.q.push_back(v);
        }
        fn dequeue(&mut self) -> Option<u32> {
            self.q.pop_front()
        }
        fn try_enqueue(&mut self, v: u32) -> Result<(), u32> {
            if self.q.len() >= self.cap {
                return Err(v);
            }
            self.q.push_back(v);
            Ok(())
        }
    }

    #[test]
    fn try_enqueue_batch_stops_at_capacity_and_keeps_order() {
        let mut h = BoundedHandle { q: Default::default(), cap: 3 };
        let mut batch = vec![1, 2, 3, 4, 5];
        assert_eq!(h.try_enqueue_batch(&mut batch), 3);
        assert_eq!(batch, vec![4, 5], "refused value first, order intact");
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 10), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(h.try_enqueue_batch(&mut batch), 2, "retry drains the rest");
        assert!(batch.is_empty());
    }

    #[test]
    fn dequeue_batch_respects_max() {
        let mut h = VecHandle([1, 2, 3, 4].into());
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 2), 2);
        assert_eq!(h.dequeue_batch(&mut out, 10), 2, "stops when empty");
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}
