//! Convenience combinators over [`QueueHandle`].
//!
//! The queue operations themselves are non-blocking (a dequeue on an
//! empty queue returns `None`, the paper's `EmptyException`); these
//! helpers implement the common polling idioms used by applications,
//! examples, and tests, so the spin loops live in one audited place.

use crate::QueueHandle;

/// Extension helpers for any queue handle.
pub trait QueueHandleExt<T>: QueueHandle<T> {
    /// Dequeues, spinning (with `spin_loop` hints) until a value is
    /// available. Only sensible when producers are known to be active —
    /// this busy-waits forever on a permanently empty queue.
    fn dequeue_spin(&mut self) -> T {
        loop {
            if let Some(v) = self.dequeue() {
                return v;
            }
            std::hint::spin_loop();
        }
    }

    /// Dequeues up to `max` immediately available values into `out`;
    /// returns how many were taken. Stops at the first empty
    /// observation.
    fn drain_into(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut taken = 0;
        while taken < max {
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    taken += 1;
                }
                None => break,
            }
        }
        taken
    }

    /// Enqueues every value from an iterator.
    fn extend_from(&mut self, values: impl IntoIterator<Item = T>) {
        for v in values {
            self.enqueue(v);
        }
    }
}

impl<T, H: QueueHandle<T> + ?Sized> QueueHandleExt<T> for H {}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial in-memory handle for exercising the default methods.
    struct VecHandle(std::collections::VecDeque<u32>);
    impl QueueHandle<u32> for VecHandle {
        fn enqueue(&mut self, v: u32) {
            self.0.push_back(v);
        }
        fn dequeue(&mut self) -> Option<u32> {
            self.0.pop_front()
        }
    }

    #[test]
    fn drain_into_takes_at_most_max() {
        let mut h = VecHandle([1, 2, 3, 4].into());
        let mut out = Vec::new();
        assert_eq!(h.drain_into(&mut out, 3), 3);
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(h.drain_into(&mut out, 10), 1, "stops when empty");
        assert_eq!(out, vec![1, 2, 3, 4]);
        assert_eq!(h.drain_into(&mut out, 10), 0);
    }

    #[test]
    fn extend_from_enqueues_all() {
        let mut h = VecHandle(Default::default());
        h.extend_from(10..15);
        let mut out = Vec::new();
        h.drain_into(&mut out, usize::MAX);
        assert_eq!(out, vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn dequeue_spin_returns_available_value() {
        let mut h = VecHandle([7].into());
        assert_eq!(h.dequeue_spin(), 7);
    }
}
