//! The lock-free baseline the paper measures against, plus two context
//! baselines from its Related Work section.
//!
//! * [`MsQueue`] — Michael & Scott's lock-free queue (PODC 1996), the
//!   algorithm the paper's Figures 7–10 label **LF**, with
//!   [crossbeam-epoch] deferred reclamation standing in for the Java GC
//!   of the original evaluation.
//! * [`MsQueueHp`] — the same algorithm on our from-scratch
//!   hazard-pointer domain ([`hazard`]), the reclamation scheme Michael's
//!   own paper pairs it with and the one Kogan & Petrank §3.4 prescribes
//!   for non-GC runtimes.
//! * [`MutexQueue`] — a coarse-grained lock baseline (sanity reference in
//!   examples and benches; not in the paper's figures).
//! * [`SpscQueue`] — Lamport's wait-free single-producer single-consumer
//!   array queue (the paper's Related Work [16]): the historical starting
//!   point that motivates *multi* enqueuer/dequeuer wait-freedom.
//!
//! All MPMC queues implement [`queue_traits::ConcurrentQueue`], so the
//! benchmark harness drives them and the Kogan–Petrank queue through one
//! generic code path.
//!
//! [crossbeam-epoch]: https://docs.rs/crossbeam-epoch

#![warn(missing_docs)]

mod baselines;
mod epoch;
mod hp;

pub use baselines::{MutexQueue, SpscConsumer, SpscProducer, SpscQueue};
pub use epoch::MsQueue;
pub use hp::MsQueueHp;

pub use queue_traits::{ConcurrentQueue, QueueHandle, RegistrationError};

#[cfg(test)]
mod tests {
    use super::*;
    use queue_traits::testing;

    #[test]
    fn ms_epoch_sequential() {
        testing::check_sequential_fifo(&MsQueue::new());
    }

    #[test]
    fn ms_hp_sequential() {
        testing::check_sequential_fifo(&MsQueueHp::new());
    }

    #[test]
    fn mutex_sequential() {
        testing::check_sequential_fifo(&MutexQueue::new());
    }

    #[test]
    fn ms_epoch_mpmc() {
        testing::check_mpmc_conservation(&MsQueue::new(), 4, 4, testing::scaled(4_000));
    }

    #[test]
    fn ms_hp_mpmc() {
        testing::check_mpmc_conservation(&MsQueueHp::new(), 4, 4, testing::scaled(4_000));
    }

    #[test]
    fn mutex_mpmc() {
        testing::check_mpmc_conservation(&MutexQueue::new(), 4, 4, testing::scaled(4_000));
    }

    #[test]
    fn ms_epoch_owned_payloads() {
        testing::check_owned_payloads(&MsQueue::new(), 4);
    }

    #[test]
    fn ms_hp_owned_payloads() {
        testing::check_owned_payloads(&MsQueueHp::new(), 4);
    }

    #[test]
    fn registration_unbounded() {
        testing::check_registration_capacity(&MsQueue::<u64>::new(), usize::MAX);
        testing::check_registration_capacity(&MsQueueHp::<u64>::new(), usize::MAX);
        testing::check_registration_capacity(&MutexQueue::<u64>::new(), usize::MAX);
    }
}
