//! Michael–Scott lock-free queue with epoch-based reclamation.
//!
//! This is a faithful transcription of the PODC 1996 algorithm as it
//! appears in Herlihy & Shavit (the source the paper used for its **LF**
//! contender), with crossbeam-epoch's deferred destruction standing in
//! for the Java garbage collector: nodes removed from the list are
//! destroyed only after every thread that could have observed them has
//! left its critical section, which also rules out the ABA problem.

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;

use crossbeam_epoch::{self as epoch, Atomic, Guard, Owned, Shared};
use crossbeam_utils::CachePadded;

use queue_traits::{ConcurrentQueue, QueueHandle, RegistrationError};

struct Node<T> {
    /// `None` in the sentinel; the payload is *taken* (exactly once, by
    /// the dequeuer that wins the `head` CAS) when the node becomes the
    /// new sentinel.
    value: UnsafeCell<Option<T>>,
    next: Atomic<Node<T>>,
}

impl<T> Node<T> {
    fn new(value: Option<T>) -> Self {
        Node {
            value: UnsafeCell::new(value),
            next: Atomic::null(),
        }
    }
}

/// Michael & Scott's lock-free MPMC FIFO queue (the paper's **LF**).
pub struct MsQueue<T> {
    head: CachePadded<Atomic<Node<T>>>,
    tail: CachePadded<Atomic<Node<T>>>,
}

// SAFETY: values are `Send`; all node traffic goes through atomics, and a
// node's payload is accessed mutably only by the unique dequeuer that won
// the head CAS (see `dequeue`).
unsafe impl<T: Send> Send for MsQueue<T> {}
unsafe impl<T: Send> Sync for MsQueue<T> {}

impl<T: Send> MsQueue<T> {
    /// Creates an empty queue (a single sentinel node).
    pub fn new() -> Self {
        let sentinel = Owned::new(Node::new(None));
        let q = MsQueue {
            head: CachePadded::new(Atomic::null()),
            tail: CachePadded::new(Atomic::null()),
        };
        let guard = unsafe { epoch::unprotected() };
        let s = sentinel.into_shared(guard);
        q.head.store(s, Ordering::Relaxed);
        q.tail.store(s, Ordering::Relaxed);
        q
    }

    /// Inserts `value` at the tail.
    pub fn enqueue(&self, value: T) {
        let guard = epoch::pin();
        self.enqueue_with(value, &guard);
    }

    fn enqueue_with(&self, value: T, guard: &Guard) {
        let node = Owned::new(Node::new(Some(value))).into_shared(guard);
        loop {
            let tail = self.tail.load(Ordering::SeqCst, guard);
            // SAFETY: `tail` is reachable under our pin; the queue never
            // stores null in `tail`.
            let tail_ref = unsafe { tail.deref() };
            let next = tail_ref.next.load(Ordering::SeqCst, guard);
            if tail != self.tail.load(Ordering::SeqCst, guard) {
                continue;
            }
            if next.is_null() {
                // Try to link the new node after the last node.
                if tail_ref
                    .next
                    .compare_exchange(
                        Shared::null(),
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        guard,
                    )
                    .is_ok()
                {
                    // Swing tail; failure means someone else already did.
                    let _ = self.tail.compare_exchange(
                        tail,
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        guard,
                    );
                    return;
                }
            } else {
                // Tail is lagging: help advance it, then retry.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                );
            }
        }
    }

    /// Removes and returns the head value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        let guard = epoch::pin();
        self.dequeue_with(&guard)
    }

    fn dequeue_with(&self, guard: &Guard) -> Option<T> {
        loop {
            let head = self.head.load(Ordering::SeqCst, guard);
            let tail = self.tail.load(Ordering::SeqCst, guard);
            // SAFETY: head is reachable under our pin.
            let head_ref = unsafe { head.deref() };
            let next = head_ref.next.load(Ordering::SeqCst, guard);
            if head != self.head.load(Ordering::SeqCst, guard) {
                continue;
            }
            if head == tail {
                if next.is_null() {
                    return None; // observed empty (linearizes here)
                }
                // Tail lagging behind a half-finished enqueue: help.
                let _ = self.tail.compare_exchange(
                    tail,
                    next,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                    guard,
                );
            } else if self
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst, guard)
                .is_ok()
            {
                // SAFETY: we won the head CAS, so we are the unique
                // dequeuer of `next`'s payload; `next` is protected by
                // our pin.
                let value = unsafe { (*next.deref().value.get()).take() };
                // SAFETY: `head` is now unreachable from the queue; any
                // thread still holding it is pinned, which defers the
                // destruction.
                unsafe { guard.defer_destroy(head) };
                return Some(value.expect("non-sentinel node must carry a value"));
            }
        }
    }

    /// Approximate number of elements (O(n) walk; for tests/diagnostics).
    pub fn len_approx(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        let head = self.head.load(Ordering::SeqCst, &guard);
        // SAFETY: reachable under pin.
        let mut cur = unsafe { head.deref() }.next.load(Ordering::SeqCst, &guard);
        while !cur.is_null() {
            n += 1;
            cur = unsafe { cur.deref() }.next.load(Ordering::SeqCst, &guard);
        }
        n
    }

    /// True if the queue is observed empty.
    pub fn is_empty(&self) -> bool {
        let guard = epoch::pin();
        let head = self.head.load(Ordering::SeqCst, &guard);
        // SAFETY: reachable under pin.
        unsafe { head.deref() }
            .next
            .load(Ordering::SeqCst, &guard)
            .is_null()
    }
}

impl<T: Send> Default for MsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MsQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: walk the list and free every node (the
        // sentinel carries no value).
        let guard = unsafe { epoch::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, guard);
        while !cur.is_null() {
            // SAFETY: exclusive access in Drop; each node freed once.
            let node = unsafe { cur.into_owned() };
            cur = node.next.load(Ordering::Relaxed, guard);
        }
    }
}

/// Trivial handle: the MS queue keeps no per-thread state.
pub struct MsHandle<'q, T> {
    queue: &'q MsQueue<T>,
}

impl<T: Send> QueueHandle<T> for MsHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        self.queue.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send> ConcurrentQueue<T> for MsQueue<T> {
    type Handle<'a>
        = MsHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        Ok(MsHandle { queue: self })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dequeue_is_none() {
        let q: MsQueue<u32> = MsQueue::new();
        assert_eq!(q.dequeue(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_order() {
        let q = MsQueue::new();
        for i in 0..10 {
            q.enqueue(i);
        }
        assert_eq!(q.len_approx(), 10);
        for i in 0..10 {
            assert_eq!(q.dequeue(), Some(i));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn drop_frees_resident_values() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        static_drops_test(|drops| {
            let q = MsQueue::new();
            for _ in 0..100 {
                q.enqueue(CountDrop(drops.clone()));
            }
            for _ in 0..40 {
                drop(q.dequeue());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 40);
            drop(q);
        });

        struct CountDrop(Arc<AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        fn static_drops_test(f: impl FnOnce(Arc<AtomicUsize>)) {
            let drops = Arc::new(AtomicUsize::new(0));
            f(drops.clone());
            // Epoch reclamation may defer the 40 dequeued nodes' *nodes*,
            // but the values were taken/dropped eagerly and the final 60
            // are dropped by MsQueue::drop.
            assert_eq!(drops.load(Ordering::SeqCst), 100);
        }
    }

    #[test]
    fn stress_two_threads() {
        let q = MsQueue::new();
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..50_000u64 {
                    q.enqueue(i);
                }
            });
            s.spawn(|| {
                let mut expect = 0u64;
                while expect < 50_000 {
                    if let Some(v) = q.dequeue() {
                        assert_eq!(v, expect, "single consumer sees FIFO");
                        expect += 1;
                    }
                }
            });
        });
    }
}
