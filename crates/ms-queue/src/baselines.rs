//! Context baselines referenced by the paper's Related Work section.
//!
//! Neither of these appears in the paper's figures; they exist to anchor
//! the evaluation (a coarse lock as the naive floor, and Lamport's SPSC
//! queue as the historical wait-free starting point that only supports
//! one enqueuer and one dequeuer — the limitation the paper removes).

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use queue_traits::{ConcurrentQueue, QueueHandle, RegistrationError};

/// A coarse-grained blocking queue: one `parking_lot::Mutex` around a
/// `VecDeque`. Neither lock-free nor wait-free; the floor every
/// non-blocking algorithm should beat under contention.
pub struct MutexQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T: Send> MutexQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        MutexQueue {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Inserts `value` at the tail.
    pub fn enqueue(&self, value: T) {
        self.inner.lock().push_back(value);
    }

    /// Removes and returns the head value, or `None` if empty.
    pub fn dequeue(&self) -> Option<T> {
        self.inner.lock().pop_front()
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl<T: Send> Default for MutexQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Trivial handle for the mutex queue.
pub struct MutexHandle<'q, T> {
    queue: &'q MutexQueue<T>,
}

impl<T: Send> QueueHandle<T> for MutexHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        self.queue.enqueue(value);
    }

    fn dequeue(&mut self) -> Option<T> {
        self.queue.dequeue()
    }
}

impl<T: Send> ConcurrentQueue<T> for MutexQueue<T> {
    type Handle<'a>
        = MutexHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        Ok(MutexHandle { queue: self })
    }
}

/// Lamport's wait-free single-producer single-consumer bounded queue
/// (the paper's Related Work [16]): a statically sized ring buffer where
/// the producer owns `tail` and the consumer owns `head`, so neither ever
/// retries — wait-freedom with *one* thread on each side, which is
/// exactly the concurrency limitation the Kogan–Petrank queue removes.
struct SpscInner<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    head: CachePadded<AtomicUsize>, // next slot to read  (consumer-owned)
    tail: CachePadded<AtomicUsize>, // next slot to write (producer-owned)
}

// SAFETY: each slot is accessed mutably by exactly one side at a time,
// mediated by the head/tail indices.
unsafe impl<T: Send> Send for SpscInner<T> {}
unsafe impl<T: Send> Sync for SpscInner<T> {}

impl<T> SpscInner<T> {
    fn slots(&self) -> usize {
        self.buf.len()
    }
}

impl<T> Drop for SpscInner<T> {
    fn drop(&mut self) {
        // Drain unconsumed values.
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        let n = self.slots();
        let mut i = head;
        while i != tail {
            // SAFETY: slots in [head, tail) are initialized.
            unsafe { (*self.buf[i % n].get()).assume_init_drop() };
            i = (i + 1) % n;
        }
    }
}

/// Handle to create a Lamport SPSC queue, returning its two endpoints.
pub struct SpscQueue;

impl SpscQueue {
    /// Creates a bounded SPSC queue holding up to `capacity` elements,
    /// returning the producer and consumer endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
        assert!(capacity > 0, "capacity must be positive");
        // One slot is sacrificed to distinguish full from empty.
        let slots = capacity + 1;
        let buf = (0..slots)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(SpscInner {
            buf,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        });
        (
            SpscProducer {
                inner: inner.clone(),
            },
            SpscConsumer { inner },
        )
    }
}

/// The unique producer endpoint of a [`SpscQueue`].
pub struct SpscProducer<T> {
    inner: Arc<SpscInner<T>>,
}

impl<T: Send> SpscProducer<T> {
    /// Attempts to enqueue; returns `Err(value)` if the buffer is full.
    /// Wait-free: one load, one store, no retries.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let n = self.inner.slots();
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let next = (tail + 1) % n;
        if next == self.inner.head.load(Ordering::Acquire) {
            return Err(value); // full
        }
        // SAFETY: slot `tail` is empty and owned by the producer.
        unsafe { (*self.inner.buf[tail].get()).write(value) };
        self.inner.tail.store(next, Ordering::Release);
        Ok(())
    }
}

/// The unique consumer endpoint of a [`SpscQueue`].
pub struct SpscConsumer<T> {
    inner: Arc<SpscInner<T>>,
}

impl<T: Send> SpscConsumer<T> {
    /// Attempts to dequeue; `None` if empty. Wait-free.
    pub fn pop(&mut self) -> Option<T> {
        let n = self.inner.slots();
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.inner.tail.load(Ordering::Acquire) {
            return None; // empty
        }
        // SAFETY: slot `head` is initialized and owned by the consumer.
        let value = unsafe { (*self.inner.buf[head].get()).assume_init_read() };
        self.inner.head.store((head + 1) % n, Ordering::Release);
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_queue_fifo() {
        let q = MutexQueue::new();
        assert!(q.is_empty());
        q.enqueue(1);
        q.enqueue(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.dequeue(), Some(1));
        assert_eq!(q.dequeue(), Some(2));
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn spsc_fifo_and_capacity() {
        let (mut p, mut c) = SpscQueue::with_capacity::<u32>(2);
        assert_eq!(c.pop(), None);
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.push(3), Err(3), "full at capacity");
        assert_eq!(c.pop(), Some(1));
        p.push(3).unwrap();
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn spsc_cross_thread_stream() {
        const N: u64 = 200_000;
        let (mut p, mut c) = SpscQueue::with_capacity::<u64>(64);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        match p.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            s.spawn(move || {
                let mut expect = 0;
                while expect < N {
                    if let Some(v) = c.pop() {
                        assert_eq!(v, expect);
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            });
        });
    }

    #[test]
    fn spsc_drops_unconsumed() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, c) = SpscQueue::with_capacity::<D>(8);
        for _ in 0..5 {
            assert!(p.push(D).is_ok());
        }
        drop(p);
        drop(c);
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }
}
