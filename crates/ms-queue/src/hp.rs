//! Michael–Scott queue over our from-scratch hazard-pointer domain.
//!
//! This is the memory-management pairing from Michael's hazard-pointer
//! paper itself and the one §3.4 of Kogan & Petrank prescribes for
//! running these algorithms without a garbage collector. Unlike the
//! epoch variant, reclamation here is wait-free: a stalled thread delays
//! at most the objects its own hazard slots cover, never the whole
//! domain.
//!
//! Hazard discipline (two slots per thread):
//! * slot 0 protects `head`/`tail` during an operation,
//! * slot 1 protects `head.next` across the dequeue's head-CAS so the
//!   payload read afterwards is safe.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

use crossbeam_utils::CachePadded;
use hazard::{Domain, Participant};
use queue_traits::{ConcurrentQueue, QueueHandle, RegistrationError};

struct Node<T> {
    value: UnsafeCell<Option<T>>,
    next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn boxed(value: Option<T>) -> *mut Self {
        Box::into_raw(Box::new(Node {
            value: UnsafeCell::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

// SAFETY: payload is only taken by the unique head-CAS winner.
unsafe impl<T: Send> Send for Node<T> {}
unsafe impl<T: Send> Sync for Node<T> {}

/// Michael–Scott queue with hazard-pointer reclamation (wait-free
/// memory management).
pub struct MsQueueHp<T> {
    domain: Domain,
    head: CachePadded<AtomicPtr<Node<T>>>,
    tail: CachePadded<AtomicPtr<Node<T>>>,
}

// SAFETY: as for `MsQueue`; the hazard domain is itself Sync.
unsafe impl<T: Send> Send for MsQueueHp<T> {}
unsafe impl<T: Send> Sync for MsQueueHp<T> {}

impl<T: Send> MsQueueHp<T> {
    /// Creates an empty queue with its own hazard-pointer domain.
    pub fn new() -> Self {
        let sentinel = Node::boxed(None);
        MsQueueHp {
            domain: Domain::new(2),
            head: CachePadded::new(AtomicPtr::new(sentinel)),
            tail: CachePadded::new(AtomicPtr::new(sentinel)),
        }
    }

    /// The queue's hazard-pointer domain (exposed for diagnostics).
    pub fn domain(&self) -> &Domain {
        &self.domain
    }
}

impl<T: Send> Default for MsQueueHp<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for MsQueueHp<T> {
    fn drop(&mut self) {
        // Exclusive access: free the remaining list. Retired nodes are
        // owned by the domain, which is dropped right after and frees
        // them itself.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; nodes in the list are not on any
            // retired list (they are only retired after being unlinked).
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next.load(Ordering::Relaxed);
        }
    }
}

/// Per-thread handle holding the hazard-pointer participant.
pub struct MsHpHandle<'q, T> {
    queue: &'q MsQueueHp<T>,
    participant: Participant<'q>,
}

impl<T: Send> MsHpHandle<'_, T> {
    /// Inserts `value` at the tail.
    pub fn enqueue(&mut self, value: T) {
        let q = self.queue;
        let node = Node::boxed(Some(value));
        loop {
            let tail = self.participant.protect(0, &q.tail);
            // SAFETY: protected by slot 0 and re-validated by protect().
            let tail_ref = unsafe { &*tail };
            let next = tail_ref.next.load(Ordering::SeqCst);
            if q.tail.load(Ordering::SeqCst) != tail {
                continue;
            }
            if next.is_null() {
                if tail_ref
                    .next
                    .compare_exchange(
                        ptr::null_mut(),
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    let _ = q.tail.compare_exchange(
                        tail,
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    self.participant.clear(0);
                    return;
                }
            } else {
                let _ =
                    q.tail
                        .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
    }

    /// Removes and returns the head value, or `None` if empty.
    pub fn dequeue(&mut self) -> Option<T> {
        let q = self.queue;
        loop {
            let head = self.participant.protect(0, &q.head);
            let tail = q.tail.load(Ordering::SeqCst);
            // SAFETY: protected by slot 0.
            let head_ref = unsafe { &*head };
            // Protect `next` *before* the head CAS: the payload is read
            // after the CAS, by which time other dequeuers may already be
            // retiring nodes. The head re-check below validates the
            // hazard: if `head` is still the sentinel, `next` is still in
            // the queue and therefore not yet retired.
            let next = head_ref.next.load(Ordering::SeqCst);
            self.participant.set(1, next);
            if q.head.load(Ordering::SeqCst) != head {
                continue;
            }
            if head == tail {
                if next.is_null() {
                    self.participant.clear(0);
                    self.participant.clear(1);
                    return None;
                }
                let _ =
                    q.tail
                        .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
            } else if q
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // SAFETY: unique head-CAS winner takes the payload; `next`
                // is covered by hazard slot 1 (published while `head` was
                // still the sentinel, so `next` could not yet have been
                // retired).
                let value = unsafe { (*(*next).value.get()).take() };
                self.participant.clear(0);
                self.participant.clear(1);
                // SAFETY: `head` is unlinked; ownership passes to the
                // reclamation machinery.
                unsafe { self.participant.retire(head) };
                return Some(value.expect("non-sentinel node must carry a value"));
            }
        }
    }
}

impl<T: Send> QueueHandle<T> for MsHpHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        MsHpHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        MsHpHandle::dequeue(self)
    }
}

impl<T: Send> ConcurrentQueue<T> for MsQueueHp<T> {
    type Handle<'a>
        = MsHpHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<Self::Handle<'_>, RegistrationError> {
        Ok(MsHpHandle {
            queue: self,
            participant: self.domain.enter(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fifo() {
        let q = MsQueueHp::new();
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None);
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn nodes_are_reclaimed() {
        let q = MsQueueHp::new();
        let mut h = q.register().unwrap();
        // Push enough traffic through one handle to cross the scan
        // threshold several times.
        for i in 0..10_000u64 {
            h.enqueue(i);
            assert_eq!(h.dequeue(), Some(i));
        }
        assert!(
            h.participant.reclaimed() > 0,
            "scan must have freed retired nodes"
        );
    }

    #[test]
    fn values_dropped_exactly_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct CountDrop(Arc<AtomicUsize>);
        impl Drop for CountDrop {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q = MsQueueHp::new();
            let mut h = q.register().unwrap();
            for _ in 0..500 {
                h.enqueue(CountDrop(drops.clone()));
            }
            for _ in 0..200 {
                drop(h.dequeue());
            }
            assert_eq!(drops.load(Ordering::SeqCst), 200);
            drop(h);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 500, "rest freed on drop");
    }

    #[test]
    fn mpmc_smoke() {
        let q = MsQueueHp::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut h = q.register().unwrap();
                    for i in 0..5_000u64 {
                        h.enqueue(i);
                        while h.dequeue().is_none() {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
        });
        let mut h = q.register().unwrap();
        assert_eq!(h.dequeue(), None, "pairs workload leaves queue empty");
    }
}
