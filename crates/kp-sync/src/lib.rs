//! The workspace's synchronization facade: **the** import point for
//! atomic types and cache padding in the concurrent crates.
//!
//! `kp-queue` (both variants), `hazard`, and `idpool` import every
//! atomic primitive and [`CachePadded`] from here instead of from
//! `std::sync::atomic` / `crossbeam_utils` directly. The `atomics-audit`
//! lint enforces this (rule `facade`), which buys two things:
//!
//! 1. **A single choke point.** Every atomic the queue stack executes
//!    is visible to static tooling by scanning one import graph, and a
//!    grep for `std::sync::atomic` inside those crates coming up empty
//!    is itself a checkable invariant.
//! 2. **A backend seam.** A loom/shuttle-style exhaustively-scheduled
//!    test backend drops in by switching this crate's re-exports — no
//!    edits in the algorithm crates. The `loom-backend` feature marks
//!    the seam today (see below); `kp-model` remains the in-tree
//!    sequentially-consistent explorer until a vendored scheduler
//!    exists.
//!
//! The re-exports are `std`'s own types, so the facade costs nothing:
//! no wrappers, no generics, no codegen difference.

#![warn(missing_docs)]
#![no_std]

#[cfg(feature = "loom-backend")]
compile_error!(
    "kp-sync/loom-backend is a seam, not an implementation: vendor a \
     loom-compatible scheduler under shims/ and replace the re-exports \
     in kp_sync::atomic with its types (the algorithm crates need no \
     changes — that is the point of the facade)."
);

/// Atomic integer/pointer types and memory orderings.
///
/// Today these are exactly `core::sync::atomic`'s types. The module
/// exists so the concurrent crates name one path that a different
/// backend (an exhaustive scheduler, an instrumented build) can take
/// over wholesale.
pub mod atomic {
    pub use core::sync::atomic::{
        compiler_fence, fence, AtomicBool, AtomicI64, AtomicIsize, AtomicPtr, AtomicU32,
        AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

pub use crossbeam_utils::CachePadded;

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicUsize, Ordering};
    use super::CachePadded;

    #[test]
    fn facade_types_are_std_types() {
        // The facade must be a pure re-export: zero representation cost.
        assert_eq!(
            core::mem::size_of::<AtomicUsize>(),
            core::mem::size_of::<core::sync::atomic::AtomicUsize>()
        );
        let a = AtomicUsize::new(1);
        a.store(2, Ordering::Release);
        assert_eq!(a.load(Ordering::Acquire), 2);
        let p = CachePadded::new(AtomicUsize::new(7));
        assert_eq!(p.load(Ordering::Relaxed), 7);
    }
}
