//! The SCQ index ring with a wCQ-style helping slow path.
//!
//! An indexed circular queue after Nikolaev's SCQ (SPAA'19), extended
//! with per-thread operation records in the spirit of wCQ (Nikolaev &
//! Ravindran): when a thread's bounded fast path exhausts its patience,
//! it publishes its operation in a single-word *record* that any thread
//! can drive to completion, so a stalled or killed thread never blocks
//! progress and no ring slot stays half-written forever.
//!
//! # Entry words
//!
//! A ring of `2n` entry words indexes a data array of `n` slots. Each
//! entry packs `{cycle:30 | safe:1 | final:1 | tid:8 | idx:24}`:
//!
//! * `cycle` — which lap of the ring the entry belongs to (wrapping;
//!   compared with a wrapping distance, see [`cycle_lt`]).
//! * `safe` — SCQ's safety bit: cleared when a dequeuer of a later
//!   cycle walks past a still-occupied entry, so a slow enqueuer from
//!   an earlier cycle cannot install into a position the head already
//!   passed (unless it re-checks `head <= ticket`).
//! * `final` — clear while a slow-path enqueue is *tentative*: the
//!   value is physically present but does not count until the owning
//!   record's ctrl word says so. Fast-path installs are born final.
//! * `tid` — `TID_NONE` for plain values; otherwise the record whose
//!   slow-path install (tentative) or dequeue *claim* the entry is
//!   part of.
//! * `idx` — data-array index carried by the entry, `IDX_NULL` when
//!   the entry holds no value (free or consumed).
//!
//! # Tickets and the threshold
//!
//! Fast enqueuers/dequeuers take tickets with a FAA on `tail`/`head`;
//! ticket `t` maps to entry `remap(t mod 2n)` at cycle `t / 2n`. The
//! `threshold` counter (reset to `3n-1` by every completed enqueue,
//! decremented once per failed dequeue ticket) bounds the number of
//! dead tickets dequeuers can burn before concluding the ring is
//! empty — SCQ's argument that EMPTY is only returned if the ring was
//! really empty at some point during the op carries over unchanged,
//! because the slow path charges exactly one decrement per abandoned
//! ticket too (tied to winning the record's advance CAS).
//!
//! # Records
//!
//! A record is one cache-padded pair of words per registered thread:
//! `ctrl = {state:2 | seq:20 | ticket:42}` plus `arg = {seq:20 |
//! is_enq:1 | ring:1 | idx:24}`. All transitions are full-word CASes
//! on `ctrl`. Tickets proposed into a record are strictly monotonic
//! per ring (each proposal reads the ring's `tail`/`head`, and every
//! install/claim advances the counter past its ticket first), which
//! makes ctrl words ABA-free in practice despite the 20-bit seq: a
//! `{PENDING, seq, ticket}` word can only recur after a 2^20-operation
//! seq wrap *and* a ticket collision, and stale entry-CASes are
//! additionally defeated by the full-word entry compare.
//!
//! The slow-path handshake, per attempt ticket `T`:
//!
//! * **enqueue** — any helper CASes a *tentative* entry (`final=0`,
//!   `tid=owner`) into position `T`, then CASes ctrl to `DONE_OK`;
//!   the transition winner sets the final bit and resets the
//!   threshold. A tentative whose record has moved past `T` is
//!   *invalidated* (consumed-empty) by whoever trips over it.
//! * **dequeue** — any helper CASes the value entry at `T` from
//!   `tid=TID_NONE` to `tid=owner` (a *claim*), then CASes ctrl to
//!   `DONE_OK`; only the owner consumes its claim (it must read the
//!   data slot), so a killed owner strands at most one slot+value,
//!   which the queue's `Drop` and the handle cleanup reap.
//!
//! Memory orderings are uniformly `SeqCst` on the ring/record words:
//! SCQ's emptiness and safety checks are cross-variable (entry vs
//! `head`/`tail` vs `threshold`), and the helping handshake orders
//! `ctrl` against entries; `SeqCst` loads are free on x86 and the RMWs
//! are lock-prefixed at any ordering. See ATOMICS.toml.

use kp_sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use kp_sync::CachePadded;

use crate::chaos_hooks::inject;

// ---- entry word packing ----

const IDX_BITS: u32 = 24;
/// "No index": the paper's ⊥.
pub(crate) const IDX_NULL: u64 = (1 << IDX_BITS) - 1;
const TID_SHIFT: u32 = 24;
const TID_MASK: u64 = 0xFF;
/// "No record": a plain fast-path value or a free/consumed entry.
pub(crate) const TID_NONE: u64 = 0xFF;
const FIN_BIT: u64 = 1 << 32;
const SAFE_BIT: u64 = 1 << 33;
const CYCLE_SHIFT: u32 = 34;
const CYCLE_BITS: u32 = 30;
const CYCLE_MASK: u64 = (1 << CYCLE_BITS) - 1;
const CYCLE_HALF: u64 = 1 << (CYCLE_BITS - 1);

#[inline]
pub(crate) fn pack_entry(cycle: u64, safe: bool, fin: bool, tid: u64, idx: u64) -> u64 {
    debug_assert!(idx <= IDX_NULL && tid <= TID_MASK);
    ((cycle & CYCLE_MASK) << CYCLE_SHIFT)
        | (if safe { SAFE_BIT } else { 0 })
        | (if fin { FIN_BIT } else { 0 })
        | (tid << TID_SHIFT)
        | idx
}

#[inline]
pub(crate) fn e_cycle(e: u64) -> u64 {
    (e >> CYCLE_SHIFT) & CYCLE_MASK
}
#[inline]
pub(crate) fn e_safe(e: u64) -> bool {
    e & SAFE_BIT != 0
}
#[inline]
pub(crate) fn e_fin(e: u64) -> bool {
    e & FIN_BIT != 0
}
#[inline]
pub(crate) fn e_tid(e: u64) -> u64 {
    (e >> TID_SHIFT) & TID_MASK
}
#[inline]
pub(crate) fn e_idx(e: u64) -> u64 {
    e & IDX_NULL
}

/// `a < b` on wrapping 30-bit cycle tags: true iff the forward distance
/// from `a` to `b` is nonzero and less than half the cycle space. Ring
/// dynamics keep live entries within a handful of cycles of the
/// current head/tail cycle (every entry is revisited each lap), so the
/// half-space window is never approached in practice; the proptest in
/// this module pins the wraparound behavior down regardless.
#[inline]
pub(crate) fn cycle_lt(a: u64, b: u64) -> bool {
    let d = b.wrapping_sub(a) & CYCLE_MASK;
    d != 0 && d < CYCLE_HALF
}

// ---- record ctrl/arg word packing ----

pub(crate) const ST_IDLE: u64 = 0;
pub(crate) const ST_PENDING: u64 = 1;
pub(crate) const ST_DONE_OK: u64 = 2;
pub(crate) const ST_DONE_EMPTY: u64 = 3;

const CTRL_TICKET_BITS: u32 = 42;
/// No ticket proposed yet for the current attempt.
pub(crate) const TICKET_UNSET: u64 = (1 << CTRL_TICKET_BITS) - 1;
const CTRL_SEQ_BITS: u32 = 20;
pub(crate) const CTRL_SEQ_MASK: u64 = (1 << CTRL_SEQ_BITS) - 1;
const CTRL_STATE_SHIFT: u32 = CTRL_TICKET_BITS + CTRL_SEQ_BITS;

#[inline]
pub(crate) fn pack_ctrl(state: u64, seq: u64, ticket: u64) -> u64 {
    debug_assert!(state <= 3 && seq <= CTRL_SEQ_MASK && ticket <= TICKET_UNSET);
    (state << CTRL_STATE_SHIFT) | ((seq & CTRL_SEQ_MASK) << CTRL_TICKET_BITS) | ticket
}

#[inline]
pub(crate) fn c_state(c: u64) -> u64 {
    c >> CTRL_STATE_SHIFT
}
#[inline]
pub(crate) fn c_seq(c: u64) -> u64 {
    (c >> CTRL_TICKET_BITS) & CTRL_SEQ_MASK
}
#[inline]
pub(crate) fn c_ticket(c: u64) -> u64 {
    c & TICKET_UNSET
}

const ARG_RING_BIT: u64 = 1 << IDX_BITS;
const ARG_ENQ_BIT: u64 = 1 << (IDX_BITS + 1);
const ARG_SEQ_SHIFT: u32 = IDX_BITS + 2;

#[inline]
pub(crate) fn pack_arg(seq: u64, is_enq: bool, ring_sel: u64, idx: u64) -> u64 {
    ((seq & CTRL_SEQ_MASK) << ARG_SEQ_SHIFT)
        | (if is_enq { ARG_ENQ_BIT } else { 0 })
        | (ring_sel * ARG_RING_BIT)
        | idx
}

#[inline]
pub(crate) fn arg_seq(a: u64) -> u64 {
    (a >> ARG_SEQ_SHIFT) & CTRL_SEQ_MASK
}
#[inline]
pub(crate) fn arg_is_enq(a: u64) -> bool {
    a & ARG_ENQ_BIT != 0
}
#[inline]
pub(crate) fn arg_ring(a: u64) -> u64 {
    (a & ARG_RING_BIT) >> IDX_BITS
}
#[inline]
pub(crate) fn arg_idx(a: u64) -> u64 {
    a & IDX_NULL
}

/// One thread's published slow-path operation.
pub(crate) struct Record {
    /// `{state:2 | seq:20 | ticket:42}` — every transition a full-word CAS.
    pub(crate) ctrl: AtomicU64,
    /// `{seq:20 | is_enq:1 | ring:1 | idx:24}` — written while IDLE,
    /// before the PENDING publish; the seq echo lets helpers detect a
    /// mixed-generation read.
    pub(crate) arg: AtomicU64,
}

/// All records plus the pending-operation gauge fast paths poll.
pub(crate) struct RecordSet {
    pub(crate) records: Box<[CachePadded<Record>]>,
    /// Number of published (PENDING/DONE, not yet retired) records.
    /// A helping *hint*: correctness never depends on it — a record
    /// whose owner was killed between retire and the decrement only
    /// costs every later op a scan of the (all-idle) records.
    pub(crate) pending: CachePadded<AtomicUsize>,
}

impl RecordSet {
    pub(crate) fn new(threads: usize) -> RecordSet {
        let records = (0..threads)
            .map(|_| {
                CachePadded::new(Record {
                    ctrl: AtomicU64::new(pack_ctrl(ST_IDLE, 0, TICKET_UNSET)),
                    arg: AtomicU64::new(0),
                })
            })
            .collect();
        RecordSet {
            records,
            pending: CachePadded::new(AtomicUsize::new(0)),
        }
    }
}

/// What a claim/tentative resolution concluded about the entry.
pub(crate) enum Resolution {
    /// The entry or its record moved; re-read the entry.
    Retry,
    /// The value at this position was (or will be) delivered to the
    /// claiming record; the position is dead for everyone else.
    Dead,
}

/// Outcome of a ring dequeue.
pub(crate) enum DeqOutcome {
    /// A data index.
    Got(u64),
    /// The ring was observed empty (threshold exhausted).
    Empty,
}

/// An SCQ index ring: `2n` entry words carrying data-array indices.
pub(crate) struct Ring {
    /// log2 of the entry count (ring holds up to `2^(order-1)` indices).
    order: u32,
    /// Which ring this is in the owner queue (0 = aq, 1 = fq); echoed
    /// in record `arg` words so helpers dispatch to the right ring.
    sel: u64,
    threshold: CachePadded<AtomicI64>,
    tail: CachePadded<AtomicU64>,
    head: CachePadded<AtomicU64>,
    /// Diagnostic: actual threshold-counter resets (stores, not the
    /// skipped already-at-reset fast-outs). Feeds the bench's
    /// threshold-reset column; never read by the algorithm.
    resets: CachePadded<AtomicU64>,
    entries: Box<[AtomicU64]>,
}

impl Ring {
    /// A ring of `1 << order` entries, pre-filled with indices
    /// `0..prefill` (the free ring seeds `prefill = capacity`, the
    /// allocated ring seeds zero).
    pub(crate) fn new(order: u32, sel: u64, prefill: usize) -> Ring {
        let size = 1usize << order;
        debug_assert!(prefill <= size / 2);
        // Empty entries sit one cycle behind ticket cycle 0.
        let empty = pack_entry(CYCLE_MASK, true, true, TID_NONE, IDX_NULL);
        let entries: Box<[AtomicU64]> = (0..size).map(|_| AtomicU64::new(empty)).collect();
        let ring = Ring {
            order,
            sel,
            threshold: CachePadded::new(AtomicI64::new(-1)),
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            resets: CachePadded::new(AtomicU64::new(0)),
            entries,
        };
        for i in 0..prefill {
            let (j, cycle) = ring.decode(i as u64);
            ring.entries[j].store(
                pack_entry(cycle, true, true, TID_NONE, i as u64),
                Ordering::Relaxed,
            );
        }
        if prefill > 0 {
            ring.tail.store(prefill as u64, Ordering::Relaxed);
            ring.threshold.store(ring.threshold_reset(), Ordering::Relaxed);
        }
        ring
    }

    #[inline]
    pub(crate) fn sel(&self) -> u64 {
        self.sel
    }

    /// SCQ's `3n - 1` for a ring of `2n` entries.
    #[inline]
    fn threshold_reset(&self) -> i64 {
        let size = 1i64 << self.order;
        size + size / 2 - 1
    }

    /// Ticket → (entry slot, cycle tag). Consecutive tickets are
    /// spread eight entry words (one cache line) apart by rotating the
    /// low `order` bits, SCQ's cache remap.
    #[inline]
    pub(crate) fn decode(&self, t: u64) -> (usize, u64) {
        let mask = (1u64 << self.order) - 1;
        let raw = t & mask;
        let j = if self.order > 3 {
            ((raw << 3) | (raw >> (self.order - 3))) & mask
        } else {
            raw
        };
        (j as usize, (t >> self.order) & CYCLE_MASK)
    }

    #[inline]
    fn reset_threshold(&self) {
        inject!("wcq.threshold");
        let reset = self.threshold_reset();
        if self.threshold.load(Ordering::SeqCst) != reset {
            self.threshold.store(reset, Ordering::SeqCst);
            self.resets.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// SCQ catchup: drag `tail` up to `h` so a dequeuer that outran the
    /// enqueuers does not leave `tail` behind `head` forever.
    fn catchup(&self, mut t: u64, mut h: u64) {
        while self
            .tail
            .compare_exchange_weak(t, h, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            t = self.tail.load(Ordering::SeqCst);
            h = self.head.load(Ordering::SeqCst);
            if t >= h {
                break;
            }
        }
    }

    /// Ensures `tail > tk` (slow path, before installing at ticket `tk`).
    fn advance_tail_past(&self, tk: u64) {
        let mut t = self.tail.load(Ordering::SeqCst);
        while t <= tk {
            match self
                .tail
                .compare_exchange_weak(t, tk + 1, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(cur) => t = cur,
            }
        }
    }

    /// Ensures `head > tk` (slow path, before claiming at ticket `tk`).
    fn advance_head_past(&self, tk: u64) {
        let mut h = self.head.load(Ordering::SeqCst);
        while h <= tk {
            match self
                .head
                .compare_exchange_weak(h, tk + 1, Ordering::SeqCst, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(cur) => h = cur,
            }
        }
    }

    // ---- fast path ----

    /// Bounded-attempt SCQ enqueue of data index `idx`. `Err(())` means
    /// patience ran out (caller demotes to the slow path); the ring
    /// itself can always hold every circulating index, so there is no
    /// "full" outcome at this layer.
    pub(crate) fn enqueue_fast(&self, idx: u64, patience: usize) -> Result<(), ()> {
        for _ in 0..patience {
            inject!("wcq.enq");
            let t = self.tail.fetch_add(1, Ordering::SeqCst);
            let (j, cycle) = self.decode(t);
            let mut e = self.entries[j].load(Ordering::SeqCst);
            loop {
                if cycle_lt(e_cycle(e), cycle)
                    && e_idx(e) == IDX_NULL
                    && (e_safe(e) || self.head.load(Ordering::SeqCst) <= t)
                {
                    let new = pack_entry(cycle, true, true, TID_NONE, idx);
                    match self
                        .entries[j]
                        .compare_exchange_weak(e, new, Ordering::SeqCst, Ordering::SeqCst)
                    {
                        Ok(_) => {
                            self.reset_threshold();
                            return Ok(());
                        }
                        Err(cur) => {
                            e = cur;
                            continue;
                        }
                    }
                }
                break;
            }
        }
        Err(())
    }

    /// Bounded-attempt SCQ dequeue. `Err(())` means patience ran out.
    pub(crate) fn dequeue_fast(
        &self,
        recs: &RecordSet,
        patience: usize,
    ) -> Result<DeqOutcome, ()> {
        if self.threshold.load(Ordering::SeqCst) < 0 {
            return Ok(DeqOutcome::Empty);
        }
        for _ in 0..patience {
            inject!("wcq.deq");
            let h = self.head.fetch_add(1, Ordering::SeqCst);
            let (j, cycle) = self.decode(h);
            loop {
                let e = self.entries[j].load(Ordering::SeqCst);
                if e_cycle(e) == cycle {
                    if !e_fin(e) {
                        // Tentative slow-path enqueue parked at our
                        // position: resolve it, then look again.
                        self.resolve_tentative(recs, j, e);
                        continue;
                    }
                    if e_idx(e) != IDX_NULL {
                        if e_tid(e) != TID_NONE {
                            // Claimed by a slow dequeue record.
                            match self.resolve_claim(recs, j, e) {
                                Resolution::Retry => continue,
                                Resolution::Dead => {} // fall to dead-ticket path
                            }
                        } else {
                            let new = pack_entry(cycle, e_safe(e), true, TID_NONE, IDX_NULL);
                            match self.entries[j].compare_exchange_weak(
                                e,
                                new,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            ) {
                                Ok(_) => return Ok(DeqOutcome::Got(e_idx(e))),
                                Err(_) => continue,
                            }
                        }
                    }
                    // idx == NULL at our cycle: consumed/invalidated; dead.
                } else if cycle_lt(e_cycle(e), cycle) {
                    // Not produced for our cycle: advance an empty entry's
                    // cycle (blocking late installs) or strip the safe bit
                    // of an occupied one, exactly SCQ's dequeue rule.
                    let new = if e_idx(e) == IDX_NULL {
                        pack_entry(cycle, e_safe(e), true, TID_NONE, IDX_NULL)
                    } else {
                        pack_entry(e_cycle(e), false, e_fin(e), e_tid(e), e_idx(e))
                    };
                    if new != e
                        && self
                            .entries[j]
                            .compare_exchange_weak(e, new, Ordering::SeqCst, Ordering::SeqCst)
                            .is_err()
                    {
                        continue;
                    }
                }
                // Dead ticket: emptiness bookkeeping.
                let t = self.tail.load(Ordering::SeqCst);
                if t <= h + 1 {
                    self.catchup(t, h + 1);
                    inject!("wcq.threshold");
                    self.threshold.fetch_sub(1, Ordering::SeqCst);
                    return Ok(DeqOutcome::Empty);
                }
                inject!("wcq.threshold");
                if self.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 {
                    return Ok(DeqOutcome::Empty);
                }
                break;
            }
        }
        Err(())
    }

    // ---- helping slow path ----

    /// Drives record `rid`'s pending operation on this ring until its
    /// ctrl word leaves PENDING. Safe to call from any thread at any
    /// time; returns immediately if the record is not pending here.
    pub(crate) fn help_record(&self, recs: &RecordSet, rid: usize) {
        let rec = &recs.records[rid];
        loop {
            inject!("wcq.help");
            let c = rec.ctrl.load(Ordering::SeqCst);
            if c_state(c) != ST_PENDING {
                return;
            }
            let seq = c_seq(c);
            let tk = c_ticket(c);
            let arg = rec.arg.load(Ordering::SeqCst);
            if arg_seq(arg) != seq || arg_ring(arg) != self.sel {
                // Mixed-generation read (owner mid-republish) or a stale
                // dispatch; the caller re-checks.
                return;
            }
            if arg_is_enq(arg) {
                if tk == TICKET_UNSET {
                    let t0 = self.tail.load(Ordering::SeqCst);
                    let _ = rec.ctrl.compare_exchange(
                        c,
                        pack_ctrl(ST_PENDING, seq, t0),
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    );
                    continue;
                }
                self.help_enq_step(rec, c, tk, rid as u64, arg_idx(arg));
            } else {
                if tk == TICKET_UNSET {
                    if self.threshold.load(Ordering::SeqCst) < 0 {
                        let _ = rec.ctrl.compare_exchange(
                            c,
                            pack_ctrl(ST_DONE_EMPTY, seq, tk),
                            Ordering::SeqCst,
                            Ordering::Relaxed,
                        );
                        continue;
                    }
                    let h0 = self.head.load(Ordering::SeqCst);
                    let _ = rec.ctrl.compare_exchange(
                        c,
                        pack_ctrl(ST_PENDING, seq, h0),
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    );
                    continue;
                }
                self.help_deq_step(recs, rec, c, tk, rid as u64);
            }
        }
    }

    /// One slow-enqueue step for ticket `tk` of `rec` (ctrl word `c`).
    fn help_enq_step(&self, rec: &Record, c: u64, tk: u64, tid: u64, idx: u64) {
        let seq = c_seq(c);
        let (j, cycle) = self.decode(tk);
        let e = self.entries[j].load(Ordering::SeqCst);
        let tentative = pack_entry(cycle, true, false, tid, idx);
        let finalized = pack_entry(cycle, true, true, TID_NONE, idx);
        if e == tentative {
            // Our install is parked here: move ctrl to DONE, then make
            // the entry a plain value. Losing the ctrl race to an
            // advance means the record retries elsewhere and this
            // orphan must come back out.
            inject!("wcq.finalize");
            let done = pack_ctrl(ST_DONE_OK, seq, tk);
            let won = match rec
                .ctrl
                .compare_exchange(c, done, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => true,
                Err(cur) => cur == done,
            };
            let next = if won {
                finalized
            } else {
                pack_entry(cycle, true, true, TID_NONE, IDX_NULL)
            };
            if self
                .entries[j]
                .compare_exchange(tentative, next, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
                && won
            {
                self.reset_threshold();
            }
            return;
        }
        if e == finalized {
            // Final bit already published for this ticket, so the DONE
            // transition happened first; re-read ctrl and return.
            return;
        }
        if cycle_lt(e_cycle(e), cycle)
            && e_idx(e) == IDX_NULL
            && (e_safe(e) || self.head.load(Ordering::SeqCst) <= tk)
        {
            // Installable: reserve the position (tail must pass it
            // before the value can count) and park the tentative.
            self.advance_tail_past(tk);
            let _ = self
                .entries[j]
                .compare_exchange(e, tentative, Ordering::SeqCst, Ordering::Relaxed);
            return;
        }
        // Dead ticket (occupied, cycle passed, or unsafe with head
        // beyond it): move the record to a fresh tail position.
        let next = self.tail.load(Ordering::SeqCst).max(tk + 1);
        let _ = rec.ctrl.compare_exchange(
            c,
            pack_ctrl(ST_PENDING, seq, next.min(TICKET_UNSET - 1)),
            Ordering::SeqCst,
            Ordering::Relaxed,
        );
    }

    /// One slow-dequeue step for ticket `tk` of `rec` (ctrl word `c`).
    fn help_deq_step(&self, recs: &RecordSet, rec: &Record, c: u64, tk: u64, tid: u64) {
        let seq = c_seq(c);
        let (j, cycle) = self.decode(tk);
        let e = self.entries[j].load(Ordering::SeqCst);
        if e_cycle(e) == cycle && !e_fin(e) {
            // A tentative enqueue sits at our position: its fate decides
            // whether there is a value here for us.
            self.resolve_tentative(recs, j, e);
            return;
        }
        if e_cycle(e) == cycle && e_idx(e) != IDX_NULL {
            if e_tid(e) == TID_NONE {
                // A live value: the ticket must be off the head counter
                // before the claim can stand.
                self.advance_head_past(tk);
                let claimed = pack_entry(cycle, e_safe(e), true, tid, e_idx(e));
                let _ = self
                    .entries[j]
                    .compare_exchange(e, claimed, Ordering::SeqCst, Ordering::Relaxed);
                return;
            }
            if e_tid(e) == tid {
                // Our claim is parked here: finish the ctrl handshake.
                // Only the owner consumes the entry afterwards.
                inject!("wcq.finalize");
                let _ = rec.ctrl.compare_exchange(
                    c,
                    pack_ctrl(ST_DONE_OK, seq, tk),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                );
                return;
            }
            match self.resolve_claim(recs, j, e) {
                Resolution::Retry => return,
                Resolution::Dead => {} // value went to another record; dead ticket
            }
        } else if cycle_lt(e_cycle(e), cycle) {
            // Same advance/unsafe-mark rule as the fast path.
            let new = if e_idx(e) == IDX_NULL {
                pack_entry(cycle, e_safe(e), true, TID_NONE, IDX_NULL)
            } else {
                pack_entry(e_cycle(e), false, e_fin(e), e_tid(e), e_idx(e))
            };
            if new != e
                && self
                    .entries[j]
                    .compare_exchange(e, new, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
            {
                return;
            }
        }
        // Dead ticket: emptiness bookkeeping, one threshold decrement
        // per abandoned ticket, charged by the ctrl-transition winner.
        let t = self.tail.load(Ordering::SeqCst);
        if t <= tk + 1 {
            self.catchup(t, tk + 1);
            inject!("wcq.threshold");
            if rec
                .ctrl
                .compare_exchange(
                    c,
                    pack_ctrl(ST_DONE_EMPTY, seq, tk),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                self.threshold.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        let next = self.head.load(Ordering::SeqCst).max(tk + 1);
        let moved = pack_ctrl(ST_PENDING, seq, next.min(TICKET_UNSET - 1));
        if rec
            .ctrl
            .compare_exchange(c, moved, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            inject!("wcq.threshold");
            if self.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 {
                let _ = rec.ctrl.compare_exchange(
                    moved,
                    pack_ctrl(ST_DONE_EMPTY, seq, next.min(TICKET_UNSET - 1)),
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                );
            }
        }
    }

    /// Resolves a tentative (final=0) entry `e` read from slot `j`:
    /// finalize it if its record is (or just became) DONE at this
    /// ticket, invalidate it if the record moved on.
    fn resolve_tentative(&self, recs: &RecordSet, j: usize, e: u64) {
        let rid = e_tid(e) as usize;
        let cycle = e_cycle(e);
        let idx = e_idx(e);
        let rec = &recs.records[rid];
        let c = rec.ctrl.load(Ordering::SeqCst);
        let arg = rec.arg.load(Ordering::SeqCst);
        let here = c_ticket(c) != TICKET_UNSET && {
            let (j2, cy2) = self.decode(c_ticket(c));
            j2 == j && cy2 == cycle
        };
        let matches = here
            && arg_seq(arg) == c_seq(c)
            && arg_is_enq(arg)
            && arg_ring(arg) == self.sel
            && arg_idx(arg) == idx;
        if matches && c_state(c) == ST_PENDING {
            inject!("wcq.finalize");
            let _ = rec.ctrl.compare_exchange(
                c,
                pack_ctrl(ST_DONE_OK, c_seq(c), c_ticket(c)),
                Ordering::SeqCst,
                Ordering::Relaxed,
            );
            return; // re-read; next resolution sees DONE
        }
        if matches && c_state(c) == ST_DONE_OK {
            inject!("wcq.finalize");
            let finalized = pack_entry(cycle, true, true, TID_NONE, idx);
            if self
                .entries[j]
                .compare_exchange(e, finalized, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                self.reset_threshold();
            }
            return;
        }
        // The record has moved past this ticket (or completed another
        // generation): the orphan never counted, take it out.
        inject!("wcq.finalize");
        let consumed = pack_entry(cycle, true, true, TID_NONE, IDX_NULL);
        let _ = self
            .entries[j]
            .compare_exchange(e, consumed, Ordering::SeqCst, Ordering::Relaxed);
    }

    /// Resolves a claimed (tid != NONE, final) value entry `e` at slot
    /// `j` against its record.
    fn resolve_claim(&self, recs: &RecordSet, j: usize, e: u64) -> Resolution {
        let rid = e_tid(e) as usize;
        let cycle = e_cycle(e);
        let rec = &recs.records[rid];
        let c = rec.ctrl.load(Ordering::SeqCst);
        let arg = rec.arg.load(Ordering::SeqCst);
        let matches = c_ticket(c) != TICKET_UNSET
            && arg_seq(arg) == c_seq(c)
            && !arg_is_enq(arg)
            && arg_ring(arg) == self.sel
            && {
                let (j2, cy2) = self.decode(c_ticket(c));
                j2 == j && cy2 == cycle
            };
        if matches && c_state(c) == ST_PENDING {
            inject!("wcq.finalize");
            let _ = rec.ctrl.compare_exchange(
                c,
                pack_ctrl(ST_DONE_OK, c_seq(c), c_ticket(c)),
                Ordering::SeqCst,
                Ordering::Relaxed,
            );
            return Resolution::Retry;
        }
        if matches && c_state(c) == ST_DONE_OK {
            // The claim won; only the owner consumes it (it reads the
            // data slot). For everyone else the position is spent.
            return Resolution::Dead;
        }
        // Defensive: a claim whose record no longer stands behind it.
        // Unreachable by the full-word-CAS argument (see module docs),
        // but restoring the value is the safe direction if it ever
        // fires; the CAS fails harmlessly against any newer word.
        let restored = pack_entry(cycle, e_safe(e), true, TID_NONE, e_idx(e));
        let _ = self
            .entries[j]
            .compare_exchange(e, restored, Ordering::SeqCst, Ordering::Relaxed);
        Resolution::Retry
    }

    /// Owner-side: after an enqueue record reached DONE_OK at `tk`,
    /// make sure the winning tentative got its final bit (the DONE
    /// transition winner might have been killed in between).
    pub(crate) fn ensure_finalized(&self, tk: u64, tid: u64, idx: u64) {
        let (j, cycle) = self.decode(tk);
        let tentative = pack_entry(cycle, true, false, tid, idx);
        let finalized = pack_entry(cycle, true, true, TID_NONE, idx);
        inject!("wcq.finalize");
        if self
            .entries[j]
            .compare_exchange(tentative, finalized, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            self.reset_threshold();
        }
    }

    /// Owner-side: consume this record's won claim at ticket `tk`,
    /// returning the data index it carried.
    pub(crate) fn consume_claim(&self, tk: u64, tid: u64) -> u64 {
        let (j, cycle) = self.decode(tk);
        loop {
            let e = self.entries[j].load(Ordering::SeqCst);
            debug_assert!(
                e_cycle(e) == cycle && e_fin(e) && e_tid(e) == tid && e_idx(e) != IDX_NULL,
                "claim must stand until its owner consumes it"
            );
            let idx = e_idx(e);
            // Keep the safe bit as-is: a later-cycle dequeuer may have
            // stripped it while the claim sat here.
            let consumed = pack_entry(cycle, e_safe(e), true, TID_NONE, IDX_NULL);
            if self
                .entries[j]
                .compare_exchange(e, consumed, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return idx;
            }
        }
    }

    /// Drop-time walk (exclusive access): every data index still
    /// referenced by a value-carrying entry — plain, tentative, or
    /// claimed. Tentative/claimed entries can reference an index a
    /// second time transiently; the caller dedups.
    pub(crate) fn live_indices(&self) -> Vec<u64> {
        self.entries
            .iter()
            .map(|e| e.load(Ordering::Relaxed))
            .filter(|&e| e_idx(e) != IDX_NULL)
            .map(e_idx)
            .collect()
    }

    /// Current threshold-counter value (diagnostic; `< 0` = observed
    /// empty since the last completed enqueue).
    #[inline]
    pub(crate) fn threshold_value(&self) -> i64 {
        self.threshold.load(Ordering::SeqCst)
    }

    /// Cumulative threshold-counter resets (diagnostic).
    #[inline]
    pub(crate) fn resets(&self) -> u64 {
        self.resets.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn entry_packing_roundtrips() {
        let e = pack_entry(0x2FFF_FFFF, true, false, 7, 12345);
        assert_eq!(e_cycle(e), 0x2FFF_FFFF);
        assert!(e_safe(e));
        assert!(!e_fin(e));
        assert_eq!(e_tid(e), 7);
        assert_eq!(e_idx(e), 12345);
        let f = pack_entry(0, false, true, TID_NONE, IDX_NULL);
        assert!(!e_safe(f));
        assert!(e_fin(f));
        assert_eq!(e_idx(f), IDX_NULL);
    }

    #[test]
    fn ctrl_packing_roundtrips() {
        let c = pack_ctrl(ST_DONE_OK, 0xABCDE, 0x3FF_FFFF_FFFE);
        assert_eq!(c_state(c), ST_DONE_OK);
        assert_eq!(c_seq(c), 0xABCDE);
        assert_eq!(c_ticket(c), 0x3FF_FFFF_FFFE);
        let a = pack_arg(0xABCDE, true, 1, 99);
        assert_eq!(arg_seq(a), 0xABCDE);
        assert!(arg_is_enq(a));
        assert_eq!(arg_ring(a), 1);
        assert_eq!(arg_idx(a), 99);
    }

    #[test]
    fn cycle_lt_wraps() {
        assert!(cycle_lt(CYCLE_MASK, 0)); // -1 < 0 across the wrap
        assert!(cycle_lt(CYCLE_MASK - 1, 1));
        assert!(!cycle_lt(0, CYCLE_MASK)); // 0 is *after* -1
        assert!(!cycle_lt(5, 5));
        assert!(cycle_lt(5, 6));
    }

    #[test]
    fn decode_remap_is_a_permutation() {
        let ring = Ring::new(6, 0, 0);
        let size = 1u64 << 6;
        let mut seen = vec![false; size as usize];
        for t in 0..size {
            let (j, cycle) = ring.decode(t);
            assert_eq!(cycle, 0);
            assert!(!seen[j], "remap must be injective");
            seen[j] = true;
        }
        // Next lap hits the same slots at cycle 1.
        let (j0, c1) = ring.decode(size);
        assert_eq!(c1, 1);
        let (j0b, _) = ring.decode(0);
        assert_eq!(j0, j0b);
    }

    proptest! {
        /// The wrapping cycle comparison must behave like a signed
        /// distance everywhere, including across the 30-bit wrap.
        #[test]
        fn cycle_lt_matches_wrapping_distance(a in 0u64..(1 << 30), d in 0u64..(1 << 29)) {
            let b = (a + d) & CYCLE_MASK;
            if d == 0 {
                prop_assert!(!cycle_lt(a, b));
                prop_assert!(!cycle_lt(b, a));
            } else {
                prop_assert!(cycle_lt(a, b), "a={a} b={b} d={d}");
                prop_assert!(!cycle_lt(b, a), "a={a} b={b} d={d}");
            }
        }

        /// Cycle tags produced by real tickets straddling the wrap
        /// boundary stay ordered: the tag of a later ticket is never
        /// `cycle_lt` an earlier one within the half-space window.
        #[test]
        fn ticket_cycles_stay_ordered_across_wrap(lag in 0u64..512) {
            let ring = Ring::new(4, 0, 0);
            // Tickets whose cycle is just below the wrap point.
            let base = ((CYCLE_MASK - 2) << 4) + 7;
            let (_, c_old) = ring.decode(base - (lag << 4));
            let (_, c_new) = ring.decode(base + (3 << 4));
            prop_assert!(cycle_lt(c_old, c_new) || lag == 0 && c_old == c_new);
        }
    }
}
