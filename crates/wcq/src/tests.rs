//! In-crate functional tests: trait conformance via the shared
//! `queue_traits::testing` helpers, plus the typed full/empty boundary
//! behavior that is specific to this bounded engine.

use std::sync::Barrier;

use kp_sync::atomic::{AtomicUsize, Ordering};

use queue_traits::testing;
use queue_traits::{ConcurrentQueue, QueueHandle};

use crate::{Config, Empty, Full, WcQueue};

fn small(capacity: usize, threads: usize) -> WcQueue<u64> {
    WcQueue::with_config(threads, Config::new().with_capacity(capacity))
}

#[test]
fn sequential_fifo() {
    let q: WcQueue<u64> = WcQueue::new(2);
    testing::check_sequential_fifo(&q);
}

#[test]
fn sequential_fifo_slow_only() {
    let q: WcQueue<u64> = WcQueue::with_config(2, Config::slow_only());
    testing::check_sequential_fifo(&q);
}

#[test]
fn mpmc_conservation() {
    let q: WcQueue<u64> = WcQueue::new(8);
    testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(3_000));
}

#[test]
fn mpmc_conservation_slow_only() {
    let q: WcQueue<u64> = WcQueue::with_config(8, Config::slow_only());
    testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(800));
}

#[test]
fn mpmc_conservation_tiny_ring() {
    // Capacity far below the item count: every enqueue contends with
    // Full and every cycle tag wraps the ring many times over.
    let q = small(8, 8);
    testing::check_mpmc_conservation(&q, 4, 4, testing::scaled(2_000));
}

#[test]
fn owned_payloads_drop_cleanly() {
    let q: WcQueue<Box<u64>> = WcQueue::new(4);
    testing::check_owned_payloads(&q, 4);
}

#[test]
fn registration_capacity_enforced() {
    let q: WcQueue<u64> = WcQueue::new(3);
    testing::check_registration_capacity(&q, 3);
}

#[test]
fn drop_releases_leftover_values() {
    // Values still inside the queue at drop must be dropped exactly once.
    static DROPS: AtomicUsize = AtomicUsize::new(0);
    struct Counted;
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }
    let q: WcQueue<Counted> = WcQueue::with_config(1, Config::new().with_capacity(16));
    {
        let mut h = q.register().unwrap();
        for _ in 0..10 {
            h.try_enqueue(Counted).unwrap();
        }
        for _ in 0..4 {
            drop(h.try_dequeue().unwrap());
        }
    }
    assert_eq!(DROPS.load(Ordering::SeqCst), 4);
    drop(q);
    assert_eq!(DROPS.load(Ordering::SeqCst), 10);
}

// ---- typed full/empty boundary behavior ----

#[test]
fn full_and_empty_are_typed_and_exact() {
    let q = small(4, 1);
    let mut h = q.register().unwrap();
    assert_eq!(h.try_dequeue(), Err(Empty));
    for i in 0..4 {
        assert!(h.try_enqueue(i).is_ok());
    }
    // Exactly at capacity: the next enqueue hands the value back.
    let Full(v) = h.try_enqueue(99).unwrap_err();
    assert_eq!(v, 99);
    // FIFO order survives the full episode.
    for i in 0..4 {
        assert_eq!(h.try_dequeue(), Ok(i));
    }
    assert_eq!(h.try_dequeue(), Err(Empty));
    // Every empty dequeue burns one threshold unit; enough of them
    // must drive the counter negative (then the precheck short-outs).
    for _ in 0..32 {
        assert_eq!(h.try_dequeue(), Err(Empty));
    }
    let (aq_th, _) = q.threshold_values();
    assert!(aq_th < 0, "persistently-empty aq must burn its threshold");
    // The freed capacity is immediately reusable.
    assert!(h.try_enqueue(7).is_ok());
    assert_eq!(h.try_dequeue(), Ok(7));
}

#[test]
fn full_and_empty_under_contention() {
    // Producers hammer a tiny ring and count Full rejections; consumers
    // count Empty. The ledger must balance: accepted = consumed + left.
    const THREADS: usize = 4;
    const PER: usize = 2_000;
    let q = small(8, 2 * THREADS);
    let barrier = Barrier::new(2 * THREADS);
    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    let consumed_sum = AtomicUsize::new(0);
    let accepted_sum = AtomicUsize::new(0);
    let consumed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..THREADS {
            let (q, barrier) = (&q, &barrier);
            let (accepted, rejected, accepted_sum) = (&accepted, &rejected, &accepted_sum);
            s.spawn(move || {
                let mut h = q.register().unwrap();
                barrier.wait();
                for i in 0..PER {
                    let v = (p * PER + i) as u64;
                    match h.try_enqueue(v) {
                        Ok(()) => {
                            accepted.fetch_add(1, Ordering::Relaxed);
                            accepted_sum.fetch_add(v as usize, Ordering::Relaxed);
                        }
                        Err(Full(back)) => {
                            assert_eq!(back, v, "Full must hand back the same value");
                            rejected.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        for _ in 0..THREADS {
            let (q, barrier) = (&q, &barrier);
            let (consumed, consumed_sum) = (&consumed, &consumed_sum);
            s.spawn(move || {
                let mut h = q.register().unwrap();
                barrier.wait();
                let mut empties = 0usize;
                // Keep draining until the producers are plausibly done.
                while empties < 3_000 {
                    match h.try_dequeue() {
                        Ok(v) => {
                            empties = 0;
                            consumed.fetch_add(1, Ordering::Relaxed);
                            consumed_sum.fetch_add(v as usize, Ordering::Relaxed);
                        }
                        Err(Empty) => {
                            empties += 1;
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
    });
    let mut h = q.register().unwrap();
    let mut leftover = Vec::new();
    while let Ok(v) = h.try_dequeue() {
        leftover.push(v as usize);
    }
    assert!(leftover.len() <= 8, "leftover cannot exceed capacity");
    let acc = accepted.load(Ordering::Relaxed);
    let rej = rejected.load(Ordering::Relaxed);
    let con = consumed.load(Ordering::Relaxed);
    assert_eq!(acc + rej, THREADS * PER);
    assert_eq!(acc, con + leftover.len(), "accepted = consumed + leftover");
    assert_eq!(
        accepted_sum.load(Ordering::Relaxed),
        consumed_sum.load(Ordering::Relaxed) + leftover.iter().sum::<usize>(),
        "value checksum must balance: no loss, no duplication"
    );
}

#[test]
fn blocking_enqueue_waits_out_a_full_ring() {
    let q = small(2, 2);
    let mut prod = q.register().unwrap();
    let mut cons = q.register().unwrap();
    prod.try_enqueue(1).unwrap();
    prod.try_enqueue(2).unwrap();
    std::thread::scope(|s| {
        s.spawn(|| {
            // Blocks until the consumer below frees a slot.
            prod.enqueue(3);
        });
        let mut got = Vec::new();
        while got.len() < 3 {
            if let Some(v) = cons.dequeue() {
                got.push(v);
            } else {
                std::thread::yield_now();
            }
        }
        assert_eq!(got, [1, 2, 3]);
    });
}

#[test]
fn fast_path_stats_account_every_op() {
    let q: WcQueue<u64> = WcQueue::new(2);
    let mut h = q.register().unwrap();
    for i in 0..100 {
        h.enqueue(i);
    }
    for _ in 0..100 {
        h.dequeue().unwrap();
    }
    let stats = h.fast_path_stats().unwrap();
    assert_eq!(stats.fast_completions + stats.slow_ops, 200);
    // Single-threaded with default patience: everything stays fast.
    assert_eq!(stats.fast_completions, 200);
    assert_eq!(stats.slow_ops, 0);

    let slow_q: WcQueue<u64> = WcQueue::with_config(2, Config::slow_only());
    let mut h = slow_q.register().unwrap();
    for i in 0..50 {
        h.enqueue(i);
    }
    for _ in 0..50 {
        h.dequeue().unwrap();
    }
    let stats = h.fast_path_stats().unwrap();
    assert_eq!(stats.fast_completions + stats.slow_ops, 100);
    assert_eq!(stats.slow_ops, 100);
    assert_eq!(stats.fast_completions, 0);
}

#[test]
fn threshold_resets_are_observed() {
    let q = small(4, 1);
    assert!(q.capacity() == 4);
    let mut h = q.register().unwrap();
    for round in 0..3 {
        for i in 0..4 {
            h.try_enqueue(round * 4 + i).unwrap();
        }
        for _ in 0..4 {
            h.try_dequeue().unwrap();
        }
        assert_eq!(h.try_dequeue(), Err(Empty));
    }
    assert!(
        q.threshold_resets() > 0,
        "empty/refill cycles must reset the threshold"
    );
}

#[test]
fn depth_gauge_exact_at_quiescence() {
    let q = small(16, 2);
    assert_eq!(q.depth(), 0);
    assert_eq!(q.depth_hint(), Some(0));
    assert_eq!(q.drained_hint(), Some(0));
    assert_eq!(q.capacity_hint(), Some(16));
    assert_eq!(q.pressure_hint(), 0, "wcq has no overflow machinery");

    let mut h = q.register().unwrap();
    for i in 0..10 {
        h.try_enqueue(i).unwrap();
        assert_eq!(q.depth(), i as usize + 1);
    }
    for i in 0..4 {
        h.try_dequeue().unwrap();
        assert_eq!(q.depth(), 10 - (i + 1));
    }
    assert_eq!(q.drained(), 4);
    // Refused operations move neither counter.
    for _ in 0..10 {
        h.try_enqueue(99).ok();
        h.try_dequeue().ok();
    }
    while h.try_dequeue().is_ok() {}
    assert_eq!(q.depth(), 0, "drained queue gauges empty");
    assert_eq!(h.try_dequeue(), Err(Empty));
    assert_eq!(q.depth(), 0, "empty dequeues do not move the gauge");
}

#[test]
fn depth_gauge_exact_at_quiescence_slow_only() {
    // Same invariant with every op forced through the helping slow
    // path, so the slow-path completion also lands exactly one bump.
    let q: WcQueue<u64> = WcQueue::with_config(2, Config::slow_only().with_capacity(8));
    let mut h = q.register().unwrap();
    for i in 0..8 {
        h.try_enqueue(i).unwrap();
    }
    assert_eq!(q.depth(), 8);
    assert!(matches!(h.try_enqueue(8), Err(Full(8))));
    assert_eq!(q.depth(), 8, "refused enqueue does not bump the gauge");
    for _ in 0..8 {
        h.try_dequeue().unwrap();
    }
    assert_eq!(q.depth(), 0);
    assert_eq!(q.drained(), 8);
}

#[test]
fn depth_gauge_settles_under_contention() {
    // 2 producers / 2 consumers churn; after join the gauge must land
    // exactly on the residual count (here: zero) — monotonic counters
    // cannot drift when every op completes normally.
    const PER: u64 = 2_000;
    let q = small(64, 4);
    let taken = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..2u64 {
            let q = &q;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                for i in 0..PER {
                    let mut v = (p << 32) | i;
                    loop {
                        match h.try_enqueue(v) {
                            Ok(()) => break,
                            Err(Full(back)) => {
                                v = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            });
        }
        for _ in 0..2 {
            let q = &q;
            let taken = &taken;
            s.spawn(move || {
                let mut h = q.register().unwrap();
                while taken.load(Ordering::Relaxed) < 2 * PER as usize {
                    if h.try_dequeue().is_ok() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    } else {
                        std::thread::yield_now();
                    }
                }
            });
        }
    });
    assert_eq!(q.depth(), 0, "all values consumed, gauge must agree");
    assert_eq!(q.drained(), 2 * PER);
}
