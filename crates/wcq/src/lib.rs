//! wCQ: a bounded wait-free MPMC FIFO on an SCQ index ring, after
//! Nikolaev & Ravindran's *wCQ: A Fast Wait-Free Queue with Bounded
//! Memory Usage* (see PAPERS.md and DESIGN.md §14).
//!
//! The third engine behind `queue-traits`, next to the two
//! Kogan–Petrank linked-list variants. Where KP linearizes through
//! pointer-chased nodes and leans on reclamation (epoch or hazard
//! pointers), wCQ keeps **all** state in three fixed arrays allocated
//! at construction:
//!
//! * a data array of `capacity` slots,
//! * `fq` — an index ring seeded with every free slot index,
//! * `aq` — an index ring of allocated (value-carrying) slot indices.
//!
//! Enqueue = pop a free index from `fq`, write the slot, push the
//! index onto `aq`; dequeue mirrors it. Both ring operations run a
//! bounded SCQ fast path (FAA ticket + entry CAS) and demote to a
//! helping slow path on exhaustion (see `ring.rs`), so every
//! operation finishes in a bounded number of its own steps once every
//! other thread is helping — the wait-freedom structure shared with
//! the KP engines, verified by the same chaos step watchdog.
//!
//! **No reclamation, ever:** indices circulate between the two rings,
//! nothing is allocated after construction and nothing is freed before
//! drop, so there is no ABA to defend against beyond the cycle tags
//! and no stalled-reader memory growth — a stalled (or dead) thread
//! can strand at most one slot. The flip side is a hard capacity:
//! [`WcqHandle::try_enqueue`] reports [`Full`] when no free index is
//! available ([`QueueHandle::enqueue`] spins on it), and `Full` may be
//! reported transiently while concurrent dequeuers hold indices
//! mid-flight between the rings.

#![warn(missing_docs)]

mod chaos_hooks;
mod ring;
#[cfg(test)]
mod tests;

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;

use idpool::{IdGuard, IdPool};
use kp_sync::atomic::{AtomicU64, Ordering};
use kp_sync::CachePadded;
use queue_traits::{ConcurrentQueue, FastPathStats, QueueHandle, RegistrationError};

use crate::chaos_hooks::{op_begin, op_end};
use crate::ring::{
    arg_is_enq, arg_ring, arg_seq, c_seq, c_state, c_ticket, pack_arg, pack_ctrl, DeqOutcome,
    RecordSet, Ring, CTRL_SEQ_MASK, ST_DONE_OK, ST_IDLE, ST_PENDING, TICKET_UNSET,
};

/// Ring selector bits echoed in record `arg` words.
const SEL_AQ: u64 = 0;
const SEL_FQ: u64 = 1;

/// Largest supported capacity: data indices live in 24 entry bits with
/// the all-ones pattern reserved as ⊥.
pub const MAX_CAPACITY: usize = (1 << 23) - 1;

/// Largest supported thread count: record ids live in 8 entry bits
/// with the all-ones pattern reserved as "none".
pub const MAX_THREADS: usize = 128;

/// Tuning knobs for [`WcQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    capacity: usize,
    patience: usize,
}

/// Default element capacity (the ring itself is twice this).
pub const DEFAULT_CAPACITY: usize = 1 << 16;
/// Default fast-path attempts before demoting to the helping slow path.
pub const DEFAULT_PATIENCE: usize = 64;

impl Config {
    /// Defaults: 65536 slots, 64 fast-path attempts.
    pub fn new() -> Config {
        Config {
            capacity: DEFAULT_CAPACITY,
            patience: DEFAULT_PATIENCE,
        }
    }

    /// Sets the element capacity (1..=[`MAX_CAPACITY`]).
    pub fn with_capacity(mut self, capacity: usize) -> Config {
        assert!(
            (1..=MAX_CAPACITY).contains(&capacity),
            "wcq capacity must be in 1..={MAX_CAPACITY}"
        );
        self.capacity = capacity;
        self
    }

    /// Sets the fast-path patience; `0` sends every operation through
    /// the helping slow path (record coverage in tests).
    pub fn with_patience(mut self, patience: usize) -> Config {
        self.patience = patience;
        self
    }

    /// Slow-path-only configuration (patience 0): every ring operation
    /// goes through a published record.
    pub fn slow_only() -> Config {
        Config::new().with_patience(0)
    }

    /// The configured element capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured fast-path patience.
    pub fn patience(&self) -> usize {
        self.patience
    }
}

impl Default for Config {
    fn default() -> Config {
        Config::new()
    }
}

/// Typed result of [`WcqHandle::try_enqueue`] on a full queue: hands
/// the rejected value back.
pub struct Full<T>(pub T);

impl<T> fmt::Debug for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Full(..)")
    }
}

/// Typed result of [`WcqHandle::try_dequeue`] on an empty queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Empty;

/// The bounded wait-free ring-buffer queue. See the crate docs.
pub struct WcQueue<T> {
    aq: Ring,
    fq: Ring,
    data: Box<[UnsafeCell<MaybeUninit<T>>]>,
    recs: RecordSet,
    ids: IdPool,
    capacity: usize,
    patience: usize,
    /// Monotonic count of completed value enqueues (depth gauge).
    enq_done: CachePadded<AtomicU64>,
    /// Monotonic count of values removed (depth gauge + drain signal).
    deq_done: CachePadded<AtomicU64>,
}

// SAFETY: values move through the shared data array, but the rings hand
// out *exclusive* ownership of each slot index (an index lives in `fq`,
// in `aq`, or in exactly one operation's hands), so a `&WcQueue` shared
// across threads never yields two references to one slot; `T: Send`
// therefore suffices for both auto traits.
unsafe impl<T: Send> Send for WcQueue<T> {}
// SAFETY: see the `Send` impl above; all other shared state is atomics.
unsafe impl<T: Send> Sync for WcQueue<T> {}

impl<T: Send> WcQueue<T> {
    /// A queue for up to `threads` concurrent handles with the default
    /// [`Config`].
    pub fn new(threads: usize) -> WcQueue<T> {
        WcQueue::with_config(threads, Config::new())
    }

    /// A queue for up to `threads` concurrent handles.
    pub fn with_config(threads: usize, config: Config) -> WcQueue<T> {
        assert!(
            (1..=MAX_THREADS).contains(&threads),
            "wcq supports 1..={MAX_THREADS} threads"
        );
        let capacity = config.capacity;
        // Ring of 2n entries for n in-flight indices (n = next pow2 of
        // capacity so the ticket → slot mapping stays a bit mask).
        let order = capacity.next_power_of_two().trailing_zeros() + 1;
        let data = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        WcQueue {
            aq: Ring::new(order, SEL_AQ, 0),
            fq: Ring::new(order, SEL_FQ, capacity),
            data,
            recs: RecordSet::new(threads),
            ids: IdPool::new(threads),
            capacity,
            patience: config.patience,
            enq_done: CachePadded::new(AtomicU64::new(0)),
            deq_done: CachePadded::new(AtomicU64::new(0)),
        }
    }

}

// Internal machinery: none of it touches `T`, and the handle's `Drop`
// (which cannot add bounds) needs it.
impl<T> WcQueue<T> {
    /// The fixed element capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Diagnostic: how many times an enqueue had to reset the SCQ
    /// threshold counter (on either ring) — the bench's
    /// threshold-reset column.
    pub fn threshold_resets(&self) -> u64 {
        self.aq.resets() + self.fq.resets()
    }

    /// Number of values resident right now, derived from two monotonic
    /// completion counters (`Relaxed`: an advisory gauge with no
    /// synchronization role). Exact at quiescence; under load it lags
    /// by at most the number of in-flight operations, and a thread
    /// killed between reading a value and recycling its index leaves a
    /// permanent +1 — the same one-per-sudden-death allowance as the
    /// ring's stranded-index rule (see [`Drop`] on the handle).
    pub fn depth(&self) -> usize {
        // Dequeues first: a concurrent completion between the two loads
        // then errs toward overcounting, never toward a negative gauge.
        let deq = self.deq_done.load(Ordering::Relaxed);
        let enq = self.enq_done.load(Ordering::Relaxed);
        enq.saturating_sub(deq) as usize
    }

    /// Monotonic count of values removed from the queue — the drain
    /// heartbeat a shard-health watchdog compares across ticks.
    pub fn drained(&self) -> u64 {
        self.deq_done.load(Ordering::Relaxed)
    }

    /// Diagnostic: the current threshold-counter values of the
    /// allocated and free rings. Negative means the ring was observed
    /// empty since the last completed enqueue on it.
    pub fn threshold_values(&self) -> (i64, i64) {
        (self.aq.threshold_value(), self.fq.threshold_value())
    }

    /// Helps every published slow-path record to completion; called at
    /// the top of every operation (cheap pending-gauge load when no
    /// record is out).
    fn maybe_help(&self) {
        if self.recs.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        for rid in 0..self.recs.records.len() {
            let rec = &self.recs.records[rid];
            let c = rec.ctrl.load(Ordering::SeqCst);
            if c_state(c) != ST_PENDING {
                continue;
            }
            let arg = rec.arg.load(Ordering::SeqCst);
            if arg_seq(arg) != c_seq(c) {
                continue;
            }
            let ring = if arg_ring(arg) == SEL_AQ {
                &self.aq
            } else {
                &self.fq
            };
            ring.help_record(&self.recs, rid);
        }
    }

    /// Publishes a slow-path op in this thread's record. Returns its seq.
    fn publish(&self, tid: usize, is_enq: bool, ring: &Ring, idx: u64) -> u64 {
        let rec = &self.recs.records[tid];
        let prev = rec.ctrl.load(Ordering::SeqCst);
        debug_assert_eq!(c_state(prev), ST_IDLE, "one op at a time per record");
        let seq = (c_seq(prev) + 1) & CTRL_SEQ_MASK;
        rec.arg
            .store(pack_arg(seq, is_enq, ring.sel(), idx), Ordering::SeqCst);
        self.recs.pending.fetch_add(1, Ordering::SeqCst);
        rec.ctrl
            .store(pack_ctrl(ST_PENDING, seq, TICKET_UNSET), Ordering::SeqCst);
        seq
    }

    /// Helps own record until it leaves PENDING; returns (state, ticket).
    fn drive(&self, ring: &Ring, tid: usize, seq: u64) -> (u64, u64) {
        let rec = &self.recs.records[tid];
        loop {
            ring.help_record(&self.recs, tid);
            let c = rec.ctrl.load(Ordering::SeqCst);
            if c_seq(c) == seq && c_state(c) != ST_PENDING {
                return (c_state(c), c_ticket(c));
            }
        }
    }

    /// Returns the record to IDLE; the CAS winner (there is exactly
    /// one: the owner, or its handle's drop cleanup) drops the
    /// pending-gauge count.
    fn retire(&self, tid: usize, seq: u64, tk: u64) {
        let rec = &self.recs.records[tid];
        let done = rec.ctrl.load(Ordering::SeqCst);
        if rec
            .ctrl
            .compare_exchange(
                done,
                pack_ctrl(ST_IDLE, seq, tk),
                Ordering::SeqCst,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.recs.pending.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Ring dequeue with demotion: `(index, used_slow_path)`.
    fn ring_dequeue(&self, ring: &Ring, tid: usize) -> (Option<u64>, bool) {
        match ring.dequeue_fast(&self.recs, self.patience) {
            Ok(DeqOutcome::Got(idx)) => (Some(idx), false),
            Ok(DeqOutcome::Empty) => (None, false),
            Err(()) => {
                let seq = self.publish(tid, false, ring, 0);
                let (st, tk) = self.drive(ring, tid, seq);
                let out = if st == ST_DONE_OK {
                    Some(ring.consume_claim(tk, tid as u64))
                } else {
                    None
                };
                self.retire(tid, seq, tk);
                (out, true)
            }
        }
    }

    /// Ring enqueue with demotion (infallible: a ring always has room
    /// for every circulating index): returns `used_slow_path`.
    fn ring_enqueue(&self, ring: &Ring, tid: usize, idx: u64) -> bool {
        if ring.enqueue_fast(idx, self.patience).is_ok() {
            return false;
        }
        let seq = self.publish(tid, true, ring, idx);
        let (st, tk) = self.drive(ring, tid, seq);
        debug_assert_eq!(st, ST_DONE_OK, "ring enqueue cannot fail");
        ring.ensure_finalized(tk, tid as u64, idx);
        self.retire(tid, seq, tk);
        true
    }
}

impl<T: Send> ConcurrentQueue<T> for WcQueue<T> {
    type Handle<'a>
        = WcqHandle<'a, T>
    where
        T: 'a;

    fn register(&self) -> Result<WcqHandle<'_, T>, RegistrationError> {
        let lease = self.ids.acquire().ok_or(RegistrationError {
            capacity: self.ids.capacity(),
        })?;
        Ok(WcqHandle {
            queue: self,
            lease,
            stats: FastPathStats::default(),
        })
    }

    fn thread_capacity(&self) -> usize {
        self.ids.capacity()
    }

    fn depth_hint(&self) -> Option<usize> {
        Some(self.depth())
    }

    fn drained_hint(&self) -> Option<u64> {
        Some(self.drained())
    }

    fn capacity_hint(&self) -> Option<usize> {
        Some(self.capacity)
    }
}

impl<T> Drop for WcQueue<T> {
    fn drop(&mut self) {
        // Exclusive access: drop every value still referenced by the
        // allocated ring — plain entries, unfinalized tentatives and
        // unconsumed claims alike. A stale tentative can alias an
        // index that also appears finalized elsewhere, so dedup.
        // (Indices popped from `aq` by an op killed before it pushed
        // them to `fq` reference values this walk cannot see; those
        // leak — safely — and are bounded by one per killed thread.)
        if !std::mem::needs_drop::<T>() {
            return;
        }
        let mut seen = vec![false; self.capacity];
        for idx in self.aq.live_indices() {
            let i = idx as usize;
            if i < self.capacity && !seen[i] {
                seen[i] = true;
                // SAFETY: `&mut self` — no concurrent access; an index
                // reported live by `aq` had a value written before the
                // slot entered the ring, and `seen` prevents a double
                // drop when a stale tentative aliases it.
                unsafe { (*self.data[i].get()).assume_init_drop() };
            }
        }
    }
}

impl<T> fmt::Debug for WcQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WcQueue")
            .field("capacity", &self.capacity)
            .field("patience", &self.patience)
            .finish_non_exhaustive()
    }
}

/// A registered per-thread handle to a [`WcQueue`].
pub struct WcqHandle<'q, T> {
    queue: &'q WcQueue<T>,
    lease: IdGuard<'q>,
    stats: FastPathStats,
}

impl<T: Send> WcqHandle<'_, T> {
    /// The virtual thread ID (record-set slot) this handle leases.
    #[inline]
    pub fn tid(&self) -> usize {
        self.lease.id()
    }

    fn tally(&mut self, slow_stages: u64) {
        if slow_stages == 0 {
            self.stats.fast_completions += 1;
        } else {
            self.stats.slow_ops += 1;
            if self.queue.patience > 0 {
                self.stats.fast_exhaustions += slow_stages;
            }
        }
    }

    /// Inserts `value` at the tail, or hands it back if no free slot
    /// is available. `Full` can be reported transiently while
    /// concurrent dequeuers hold slot indices mid-flight.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let q = self.queue;
        let tid = self.tid();
        op_begin();
        q.maybe_help();
        let (idx, slow1) = q.ring_dequeue(&q.fq, tid);
        let Some(idx) = idx else {
            op_end();
            self.tally(slow1 as u64);
            return Err(Full(value));
        };
        // SAFETY: `idx` came off `fq`, which grants exclusive ownership
        // of the (uninitialized) slot until the `aq` enqueue publishes it.
        unsafe { (*q.data[idx as usize].get()).write(value) };
        let slow2 = q.ring_enqueue(&q.aq, tid, idx);
        q.enq_done.fetch_add(1, Ordering::Relaxed);
        op_end();
        self.tally(slow1 as u64 + slow2 as u64);
        Ok(())
    }

    /// Removes and returns the head value, or reports [`Empty`].
    pub fn try_dequeue(&mut self) -> Result<T, Empty> {
        let q = self.queue;
        let tid = self.tid();
        op_begin();
        q.maybe_help();
        let (idx, slow1) = q.ring_dequeue(&q.aq, tid);
        let Some(idx) = idx else {
            op_end();
            self.tally(slow1 as u64);
            return Err(Empty);
        };
        // SAFETY: `idx` came off `aq`, so the producer's write happened
        // before the index was published there, and this dequeuer owns
        // the slot exclusively until the `fq` enqueue recycles it.
        let value = unsafe { (*q.data[idx as usize].get()).assume_init_read() };
        q.deq_done.fetch_add(1, Ordering::Relaxed);
        let slow2 = q.ring_enqueue(&q.fq, tid, idx);
        op_end();
        self.tally(slow1 as u64 + slow2 as u64);
        Ok(value)
    }
}

impl<T: Send> QueueHandle<T> for WcqHandle<'_, T> {
    /// Blocking on a full queue: retries (with a scheduler yield) until
    /// a slot frees up. The bounded-capacity caveat of this engine —
    /// the generic trait has no full outcome.
    fn enqueue(&mut self, value: T) {
        let mut v = value;
        loop {
            match self.try_enqueue(v) {
                Ok(()) => return,
                Err(Full(back)) => {
                    v = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    fn dequeue(&mut self) -> Option<T> {
        self.try_dequeue().ok()
    }

    /// Non-blocking: surfaces the ring's capacity limit instead of
    /// spinning, for layers that want a `Full` outcome.
    fn try_enqueue(&mut self, value: T) -> Result<(), T> {
        WcqHandle::try_enqueue(self, value).map_err(|Full(v)| v)
    }

    fn fast_path_stats(&self) -> Option<FastPathStats> {
        Some(self.stats)
    }
}

impl<T> Drop for WcqHandle<'_, T> {
    fn drop(&mut self) {
        let q = self.queue;
        let tid = self.lease.id();
        let rec = &q.recs.records[tid];
        let c = rec.ctrl.load(Ordering::SeqCst);
        if c_state(c) == ST_IDLE {
            return;
        }
        // The thread died (panic/kill) mid-slow-op: drive the record
        // to completion, make its effect whole, and retire it so the
        // slot's next tenant starts clean.
        let arg = rec.arg.load(Ordering::SeqCst);
        let ring = if arg_ring(arg) == SEL_AQ { &q.aq } else { &q.fq };
        ring.help_record(&q.recs, tid);
        let c = rec.ctrl.load(Ordering::SeqCst);
        let (st, seq, tk) = (c_state(c), c_seq(c), c_ticket(c));
        let mut stranded = None;
        if st == ST_DONE_OK {
            if arg_is_enq(arg) {
                ring.ensure_finalized(tk, tid as u64, ring::arg_idx(arg));
                if ring.sel() == SEL_AQ {
                    // The killed thread's value enqueue took effect but
                    // never reached its fast-path gauge bump.
                    q.enq_done.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                // The op logically dequeued something nobody will see.
                // Consume the claim; if it was a value (aq), take it to
                // the grave (the torture ledger's one-per-kill
                // allowance); either way recycle the slot index.
                let idx = ring.consume_claim(tk, tid as u64);
                if ring.sel() == SEL_AQ {
                    // SAFETY: consuming a won `aq` claim grants this
                    // handle exclusive ownership of an initialized slot,
                    // exactly as in `try_dequeue`.
                    unsafe { (*q.data[idx as usize].get()).assume_init_drop() };
                    // Grave-dropped values still left the queue.
                    q.deq_done.fetch_add(1, Ordering::Relaxed);
                }
                stranded = Some(idx);
            }
        }
        q.retire(tid, seq, tk);
        if let Some(idx) = stranded {
            q.ring_enqueue(&q.fq, tid, idx);
        }
    }
}

impl<T> fmt::Debug for WcqHandle<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WcqHandle")
            .field("tid", &self.lease.id())
            .finish_non_exhaustive()
    }
}
