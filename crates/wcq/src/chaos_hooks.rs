//! Fault-injection hooks for the wCQ engine, compiled away unless the
//! `chaos` cargo feature is enabled.
//!
//! Same contract as `kp-queue/src/chaos_hooks.rs`: every labeled
//! `inject!("site")` sits immediately *before* the atomic step it
//! names, so a fault plan can stall or kill a thread in the window the
//! helping scheme exists to survive. With the feature off the macro
//! expands to nothing.
//!
//! Site names (`wcq.*`):
//!
//! | site | window it opens |
//! |---|---|
//! | `wcq.enq` | top of each fast-path ring-enqueue attempt, before its tail FAA |
//! | `wcq.deq` | top of each fast-path ring-dequeue attempt, before its head FAA |
//! | `wcq.help` | top of each helping iteration on an operation record, before the ctrl-word read |
//! | `wcq.finalize` | before a ctrl-word DONE transition or a tentative-entry finalize/invalidate CAS |
//! | `wcq.threshold` | before a threshold reset or decrement |

#[cfg(feature = "chaos")]
macro_rules! inject {
    ($site:expr) => {
        ::chaos::hit($site)
    };
}

#[cfg(not(feature = "chaos"))]
macro_rules! inject {
    ($site:expr) => {};
}

pub(crate) use inject;

/// Watchdog: the calling thread is entering a queue operation.
#[cfg(feature = "chaos")]
pub(crate) fn op_begin() {
    ::chaos::op_begin();
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn op_begin() {}

/// Watchdog: the operation entered via [`op_begin`] completed normally.
/// Not a drop guard: a killed operation never completes, so its partial
/// step count must not be reported.
#[cfg(feature = "chaos")]
pub(crate) fn op_end() {
    ::chaos::op_end();
}

#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn op_end() {}
