//! A counting global allocator for live-heap measurements.
//!
//! The paper's Figure 10 measures the *live space* overhead of the
//! wait-free queues relative to the lock-free one using the JVM's
//! `-verbose:gc` live-set statistics. Rust has no GC to ask, so this
//! crate wraps the system allocator and keeps running totals; the
//! harness samples [`live_bytes`] at the same points the paper sampled
//! its GC log.
//!
//! Install it in a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;
//! ```
//!
//! Counters are process-global (an allocator has no other choice) and
//! updated with relaxed atomics: the consumers are statistical.

#![warn(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static LIVE_BLOCKS: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// A `GlobalAlloc` wrapper around [`System`] that tracks live bytes,
/// live blocks, cumulative allocations, and the high-water mark.
pub struct TrackingAlloc;

fn on_alloc(size: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    LIVE_BLOCKS.fetch_add(1, Ordering::Relaxed);
    let now = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    // Racy max: good enough for statistics.
    let mut peak = PEAK_BYTES.load(Ordering::Relaxed);
    while now > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    LIVE_BLOCKS.fetch_sub(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: defers to `System` for all actual memory management; the
// bookkeeping never touches the allocations themselves.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Bytes currently allocated and not yet freed.
pub fn live_bytes() -> usize {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// Blocks currently allocated and not yet freed.
pub fn live_blocks() -> usize {
    LIVE_BLOCKS.load(Ordering::Relaxed)
}

/// Cumulative number of allocations since process start.
pub fn total_allocs() -> usize {
    TOTAL_ALLOCS.load(Ordering::Relaxed)
}

/// High-water mark of [`live_bytes`] since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current live size.
pub fn reset_peak() {
    PEAK_BYTES.store(live_bytes(), Ordering::Relaxed);
}

/// A scoped measurement: records the live size at creation and reports
/// the delta on [`MeasureScope::delta_bytes`].
pub struct MeasureScope {
    start_bytes: usize,
    start_blocks: usize,
}

impl MeasureScope {
    /// Starts a measurement at the current live size.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        MeasureScope {
            start_bytes: live_bytes(),
            start_blocks: live_blocks(),
        }
    }

    /// Live bytes allocated since the scope began (saturating at zero).
    pub fn delta_bytes(&self) -> usize {
        live_bytes().saturating_sub(self.start_bytes)
    }

    /// Live blocks allocated since the scope began (saturating at zero).
    pub fn delta_blocks(&self) -> usize {
        live_blocks().saturating_sub(self.start_blocks)
    }
}

#[cfg(test)]
mod tests {
    // NOTE: the tracking allocator is NOT installed in this crate's own
    // test binary (tests would be brittle against the test harness's own
    // allocations). The accounting logic is tested through the counter
    // functions directly; end-to-end behaviour is exercised by the
    // harness's fig10 binary.
    use super::*;
    use std::sync::Mutex;

    // The counters are process-global; serialize the tests that poke them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn on_alloc_dealloc_roundtrip() {
        let _g = LOCK.lock().unwrap();
        let (b0, k0, a0) = (live_bytes(), live_blocks(), total_allocs());
        on_alloc(128);
        on_alloc(64);
        assert_eq!(live_bytes() - b0, 192);
        assert_eq!(live_blocks() - k0, 2);
        assert!(peak_bytes() >= b0 + 192);
        assert_eq!(total_allocs() - a0, 2);
        on_dealloc(64);
        assert_eq!(live_bytes() - b0, 128);
        assert_eq!(live_blocks() - k0, 1);
        on_dealloc(128);
        assert_eq!(live_bytes(), b0);
    }

    #[test]
    fn measure_scope_delta() {
        let _g = LOCK.lock().unwrap();
        let before = live_bytes();
        let scope = MeasureScope::new();
        on_alloc(1000);
        assert_eq!(scope.delta_bytes(), 1000);
        assert_eq!(scope.delta_blocks(), 1);
        on_dealloc(1000);
        assert_eq!(scope.delta_bytes(), 0);
        assert_eq!(live_bytes(), before);
    }

    #[test]
    fn reset_peak_tracks_current() {
        let _g = LOCK.lock().unwrap();
        on_alloc(4096);
        assert!(peak_bytes() >= live_bytes());
        on_dealloc(4096);
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
    }
}
