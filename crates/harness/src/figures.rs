//! Shared driver for the throughput figures (7, 8, 9): sweep thread
//! counts, repeat each data point, and collect one [`Series`] per
//! variant — the same protocol for every figure, so the binaries differ
//! only in workload and variant list.

use std::time::Duration;

use crate::report::Series;
use crate::stats::summarize;
use crate::variants::Variant;

/// Sweeps `threads = 1..=max_threads` for each variant, running
/// `reps` repetitions of `run(variant, threads)` and recording the mean
/// completion time in seconds (the paper plots the average of ten runs).
pub fn throughput_sweep(
    variants: &[Variant],
    max_threads: usize,
    reps: usize,
    mut run: impl FnMut(Variant, usize) -> Duration,
) -> Vec<Series> {
    let mut all = Vec::with_capacity(variants.len());
    for &v in variants {
        let mut series = Series::new(v.label());
        for threads in 1..=max_threads {
            let samples: Vec<f64> = (0..reps)
                .map(|_| run(v, threads).as_secs_f64())
                .collect();
            series.push(threads, summarize(&samples).mean);
        }
        all.push(series);
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape() {
        let calls = std::cell::RefCell::new(Vec::new());
        let out = throughput_sweep(&[Variant::Lf, Variant::Mutex], 3, 2, |v, t| {
            calls.borrow_mut().push((v, t));
            Duration::from_millis((t * 10) as u64)
        });
        assert_eq!(out.len(), 2);
        for s in &out {
            assert_eq!(s.points.len(), 3);
            assert!((s.at(2).unwrap() - 0.020).abs() < 1e-9);
        }
        // 2 variants × 3 thread counts × 2 reps
        assert_eq!(calls.borrow().len(), 12);
    }
}
