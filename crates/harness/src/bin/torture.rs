//! Seed-matrix chaos driver: runs crash-and-stall torture rounds
//! against both queue variants and exits non-zero on any violation —
//! lost/duplicated values, an unreclaimable thread slot, or a
//! wait-freedom watchdog breach.
//!
//! Built only with `--features chaos`:
//!
//! ```text
//! cargo run --release --features chaos --bin torture -- \
//!     --seeds 1,7,42 --threads 4 --ops 20000 --stalls 12
//! ```
//!
//! Every round is derived deterministically from its seed
//! ([`FaultPlan::seeded`]), so a failing seed is a replayable repro:
//! `--seeds <bad-seed>`.

use std::collections::HashSet;
use std::sync::{Barrier, Mutex, Once};

use chaos::{ChaosKill, FaultPlan, ThreadSel};
use harness::args::Args;
use kp_queue::{Config, ConcurrentQueue, WfQueue, WfQueueHp};

/// Sites the seeded stall plans draw from (both variants' names, so one
/// matrix covers epoch and hazard-pointer rounds; unknown sites simply
/// never fire).
const SITES: &[&str] = &[
    "kp.publish",
    "kp.append",
    "kp.clear_pending.enq",
    "kp.swing_tail",
    "kp.bind_sentinel",
    "kp.lock_sentinel",
    "kp.clear_pending.deq",
    "kp.swing_head",
    "kp_hp.publish",
    "kp_hp.append",
    "kp_hp.clear_pending.enq",
    "kp_hp.swing_tail",
    "kp_hp.bind_sentinel",
    "kp_hp.lock_sentinel",
    "kp_hp.clear_pending.deq",
    "kp_hp.swing_head",
    "hazard.protect.validate",
    "idpool.acquire",
];

fn quiet_chaos_kills() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ChaosKill>().is_none() {
                default(info);
            }
        }));
    });
}

/// One torture round; `$queue` picks the variant, `$kill_site` the step
/// the victim (tid 0, a consumer) dies at. Returns `Err` with a
/// description instead of panicking so the driver can keep sweeping.
macro_rules! round {
    ($queue:expr, $kill_site:literal, $seed:expr, $threads:expr, $per:expr, $stalls:expr) => {{
        let n: usize = $threads;
        let per: usize = $per;
        let producers = n / 2;
        let plan = FaultPlan::seeded($seed, SITES, n, $stalls).kill(
            $kill_site,
            ThreadSel::Id(0),
            $seed % 5,
        );
        let session = chaos::install(plan);
        let q = $queue;
        let sinks: Vec<Mutex<Vec<u64>>> = (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(n);
        let mut kills_seen = 0usize;
        let mut unexpected: Option<String> = None;
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let q = &q;
                    let sinks = &sinks;
                    let barrier = &barrier;
                    s.spawn(move || {
                        let mut h = q.register().expect("register");
                        let tid = h.tid();
                        let _token = chaos::register_thread(tid);
                        barrier.wait();
                        if tid >= n - producers {
                            let p = tid - (n - producers);
                            for i in 0..per {
                                h.enqueue((p * per + i) as u64);
                            }
                        } else {
                            for _ in 0..(2 * per * producers) {
                                if let Some(v) = h.dequeue() {
                                    sinks[tid].lock().unwrap().push(v);
                                } else {
                                    std::thread::yield_now();
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                if let Err(e) = h.join() {
                    match e.downcast_ref::<ChaosKill>() {
                        Some(k) if k.thread == 0 && k.site == $kill_site => kills_seen += 1,
                        Some(k) => {
                            unexpected = Some(format!("unplanned kill at {} (tid {})", k.site, k.thread))
                        }
                        None => unexpected = Some("worker died with a real panic".to_string()),
                    }
                }
            }
        });
        let report = session.report();
        drop(session);

        let mut outcome: Result<chaos::Report, String> = Ok(report);
        if let Some(msg) = unexpected {
            outcome = Err(msg);
        } else if kills_seen != report.kills as usize || report.kills > 1 {
            outcome = Err(format!(
                "kill accounting off: joined {kills_seen}, report {}",
                report.kills
            ));
        } else {
            // Survivors must be able to reclaim every slot, then the
            // ledger must balance up to one discarded value per kill.
            let mut survivors = Vec::new();
            for _ in 0..n {
                match q.register() {
                    Ok(h) => survivors.push(h),
                    Err(e) => {
                        outcome = Err(format!("slot not reclaimable after crash: {e:?}"));
                        break;
                    }
                }
            }
            if outcome.is_ok() {
                let mut drain = Vec::new();
                while let Some(v) = survivors[0].dequeue() {
                    drain.push(v);
                }
                drop(survivors);
                let total = producers * per;
                let mut seen: HashSet<u64> = HashSet::new();
                let mut dup_or_invented = None;
                for batch in sinks.iter().map(|m| m.lock().unwrap()) {
                    for &v in batch.iter() {
                        if v as usize >= total {
                            dup_or_invented = Some(format!("invented value {v}"));
                        } else if !seen.insert(v) {
                            dup_or_invented = Some(format!("value {v} dequeued twice"));
                        }
                    }
                }
                for &v in &drain {
                    if v as usize >= total {
                        dup_or_invented = Some(format!("invented value {v}"));
                    } else if !seen.insert(v) {
                        dup_or_invented = Some(format!("value {v} dequeued twice"));
                    }
                }
                let missing = total - seen.len();
                if let Some(msg) = dup_or_invented {
                    outcome = Err(msg);
                } else if missing > report.kills as usize {
                    outcome = Err(format!(
                        "{missing} values lost ({} kills can explain at most {})",
                        report.kills, report.kills
                    ));
                }
            }
        }
        if outcome.is_ok() {
            // Wait-freedom watchdog: linear per-op step budget.
            let budget = 400 + 200 * n as u64;
            if report.max_op_steps > budget {
                outcome = Err(format!(
                    "watchdog: worst op took {} steps, budget {budget}",
                    report.max_op_steps
                ));
            }
        }
        outcome
    }};
}

fn main() {
    quiet_chaos_kills();
    let args = Args::from_env();
    let seeds: Vec<u64> = args
        .get("seeds")
        .unwrap_or("1,7,42,1337,24181")
        .split(',')
        .map(|s| match s.trim().parse() {
            Ok(v) => v,
            Err(e) => {
                eprintln!("error: bad seed {s:?} ({e})");
                std::process::exit(2);
            }
        })
        .collect();
    let threads: usize = args.get_or("threads", 4);
    let per: usize = args.get_or("ops", 20_000);
    let stalls: usize = args.get_or("stalls", 12);
    if threads < 2 {
        eprintln!("error: --threads must be at least 2");
        std::process::exit(2);
    }

    let mut failures = 0usize;
    for &seed in &seeds {
        for hp in [false, true] {
            let label = if hp { "hp" } else { "epoch" };
            let outcome = if hp {
                round!(
                    WfQueueHp::<u64>::with_config(threads, Config::opt_both()),
                    "kp_hp.clear_pending.deq",
                    seed,
                    threads,
                    per,
                    stalls
                )
            } else {
                round!(
                    WfQueue::<u64>::with_config(threads, Config::opt_both()),
                    "kp.clear_pending.deq",
                    seed,
                    threads,
                    per,
                    stalls
                )
            };
            match outcome {
                Ok(report) => println!(
                    "seed {seed:>6} [{label:5}] ok: {} ops, {} stalls, {} kills, worst op {} steps",
                    report.ops, report.stalls, report.kills, report.max_op_steps
                ),
                Err(msg) => {
                    failures += 1;
                    eprintln!("seed {seed:>6} [{label:5}] FAILED: {msg}");
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("torture: {failures} round(s) failed");
        std::process::exit(1);
    }
    println!("torture: all {} round(s) passed", seeds.len() * 2);
}
