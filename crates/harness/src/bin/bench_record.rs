//! Records the PR's perf baseline: throughput *and* allocation rate for
//! the descriptor-reuse hot path against its alloc-per-op baseline,
//! written as machine-readable JSON (default `BENCH_PR2.json`).
//!
//! Grid: {epoch, HP} × {base, opt(1+2)} × {reuse, alloc} ×
//! {pairs, 50-50} × a small thread sweep. The binary installs the
//! counting allocator from `alloc-track`, so `allocs_per_op` is the
//! process-wide truth (thread spawn + registration included — amortized
//! by the iteration count) rather than an inference from queue stats.
//!
//! ```text
//! cargo run -p harness --release --bin bench_record
//! cargo run -p harness --release --bin bench_record -- \
//!     --iters 100000 --reps 5 --out BENCH_PR2.json
//! ```
//!
//! `scripts/bench_record.sh` wraps this with the build step.

use std::fmt::Write as _;
use std::time::Duration;

use harness::args::Args;
use harness::{workload, SchedPolicy};
use kp_queue::{Config, WfQueue, WfQueueHp};

#[global_allocator]
static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;

struct Row {
    queue: &'static str,
    config: &'static str,
    reuse: bool,
    workload: &'static str,
    threads: usize,
    median_secs: f64,
    mops_per_sec: f64,
    allocs_per_op: f64,
}

/// One timed rep: returns (duration, heap allocations during the run).
fn rep<F: FnOnce() -> Duration>(f: F) -> (Duration, usize) {
    let a0 = alloc_track::total_allocs();
    let d = f();
    (d, alloc_track::total_allocs() - a0)
}

fn median(durs: &mut [Duration]) -> Duration {
    durs.sort();
    durs[durs.len() / 2]
}

fn main() {
    let args = Args::from_env();
    let iters: usize = args.get_or("iters", 50_000);
    let reps: usize = args.get_or("reps", 3);
    let out = args.get("out").unwrap_or("BENCH_PR2.json").to_string();
    let thread_counts: Vec<usize> = match args.get("threads") {
        Some(t) => vec![t.parse().expect("--threads N")],
        None => vec![1, 4],
    };

    let configs: [(&str, bool, Config); 4] = [
        ("base", true, Config::base()),
        ("opt_both", true, Config::opt_both()),
        ("base", false, Config::base().with_reuse(false)),
        ("opt_both", false, Config::opt_both().with_reuse(false)),
    ];

    println!(
        "bench_record: iters/thread = {iters}, reps = {reps}, cores = {}",
        harness::sched::num_cores()
    );

    let mut rows: Vec<Row> = Vec::new();
    for &threads in &thread_counts {
        for (config, reuse, cfg) in configs {
            for wl in ["pairs", "fifty_fifty"] {
                for queue in ["wf-epoch", "wf-hp"] {
                    let mut durs = Vec::with_capacity(reps);
                    let mut allocs = Vec::with_capacity(reps);
                    for _ in 0..reps {
                        let (d, a) = match (queue, wl) {
                            ("wf-epoch", "pairs") => rep(|| {
                                let q: WfQueue<u64> = WfQueue::with_config(threads, cfg);
                                workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned)
                            }),
                            ("wf-epoch", _) => rep(|| {
                                let q: WfQueue<u64> = WfQueue::with_config(threads + 1, cfg);
                                workload::run_fifty_fifty(
                                    &q,
                                    threads,
                                    iters,
                                    1_000,
                                    SchedPolicy::Unpinned,
                                )
                            }),
                            (_, "pairs") => rep(|| {
                                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, cfg);
                                workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned)
                            }),
                            _ => rep(|| {
                                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, cfg);
                                workload::run_fifty_fifty(
                                    &q,
                                    threads,
                                    iters,
                                    1_000,
                                    SchedPolicy::Unpinned,
                                )
                            }),
                        };
                        durs.push(d);
                        allocs.push(a);
                    }
                    let med = median(&mut durs);
                    // Pairs = 2 ops per iteration; 50-50 = 1.
                    let ops = (threads * iters * if wl == "pairs" { 2 } else { 1 }) as f64;
                    allocs.sort();
                    let med_allocs = allocs[allocs.len() / 2] as f64;
                    let row = Row {
                        queue,
                        config,
                        reuse,
                        workload: wl,
                        threads,
                        median_secs: med.as_secs_f64(),
                        mops_per_sec: ops / med.as_secs_f64() / 1e6,
                        allocs_per_op: med_allocs / ops,
                    };
                    println!(
                        "{:8} {:8} reuse={:5} {:11} t={}: {:>8.3} Mops/s, {:.4} allocs/op",
                        row.queue,
                        row.config,
                        row.reuse,
                        row.workload,
                        row.threads,
                        row.mops_per_sec,
                        row.allocs_per_op
                    );
                    rows.push(row);
                }
            }
        }
    }

    // Headline comparison the acceptance criterion asks for: on pairs,
    // reuse must not be slower than the alloc baseline (same queue,
    // same config, same thread count).
    let mut comparisons = String::new();
    for r in rows.iter().filter(|r| r.reuse && r.workload == "pairs") {
        if let Some(b) = rows.iter().find(|b| {
            !b.reuse
                && b.workload == "pairs"
                && b.queue == r.queue
                && b.config == r.config
                && b.threads == r.threads
        }) {
            let speedup = r.mops_per_sec / b.mops_per_sec;
            let _ = write!(
                comparisons,
                "{}    {{\"queue\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
                 \"reuse_over_alloc_speedup\": {:.4}}}",
                if comparisons.is_empty() { "" } else { ",\n" },
                r.queue,
                r.config,
                r.threads,
                speedup
            );
            println!(
                "pairs speedup reuse/alloc {} {} t={}: {:.3}x",
                r.queue, r.config, r.threads, speedup
            );
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 2,\n");
    let _ = writeln!(json, "  \"iters_per_thread\": {iters},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"cores\": {},", harness::sched::num_cores());
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"queue\": \"{}\", \"config\": \"{}\", \"reuse\": {}, \
             \"workload\": \"{}\", \"threads\": {}, \"median_secs\": {:.6}, \
             \"mops_per_sec\": {:.4}, \"allocs_per_op\": {:.6}}}{}",
            r.queue,
            r.config,
            r.reuse,
            r.workload,
            r.threads,
            r.median_secs,
            r.mops_per_sec,
            r.allocs_per_op,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"pairs_reuse_vs_alloc\": [\n");
    json.push_str(&comparisons);
    json.push_str("\n  ]\n}\n");

    std::fs::write(&out, json).expect("write JSON report");
    println!("-> {out}");
}
