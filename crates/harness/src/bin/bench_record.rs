//! Records the PR's perf baseline: throughput *and* allocation rate for
//! the fast-path/slow-path execution split against its slow-path-only
//! baseline, written as machine-readable JSON (default `BENCH_PR8.json`).
//!
//! Every row carries a self-describing `engine` field ("kogan-petrank",
//! "wcq", ...) and a `capacity` column (`null` for unbounded engines),
//! so consumers no longer have to decode variant names.
//!
//! Four grids:
//! 1. the PR2/PR3 slow-path grid — {epoch, HP} × {base, opt(1+2)} ×
//!    {reuse, alloc} × {pairs, 50-50} × a small thread sweep — kept
//!    verbatim so slow-path drift vs the previous baseline is a
//!    row-by-row diff;
//! 2. the PR4 fast-path ablation — each fast variant against its
//!    slow-path-only base (same memory management), with the merged
//!    per-handle fallback counters recorded per cell;
//! 3. the PR5 reaper ablation (DESIGN.md §13) — the same opt_both cells
//!    with `Config::with_reaper()` on, no faults injected, so the
//!    on/off ratio is the pure protocol overhead (acceptance: geomean
//!    ≤1.03×); rows carry the reap/quarantine counters (all zero in a
//!    fault-free run). A separate seeded probe abandons a handle and
//!    measures the observed reap latency plus quarantine count;
//! 4. the PR6 three-way shootout — KP slow path (opt_both), KP fast
//!    path, and the wCQ ring engine on the same cells, with wCQ rows
//!    carrying fallback and threshold-reset columns. The headline is
//!    wCQ's geomean over the KP slow path at ≥4 threads (DESIGN.md §14:
//!    array + FAA vs pointer-chased CAS nodes);
//! 5. the PR7 channel sweep (DESIGN.md §15) — the sharded, batching
//!    channel front-end over both shard engines, shards × batch at a
//!    fixed 2-producer + 2-consumer cell. Each cell carries a
//!    closed-loop throughput median *and* an open-loop bursty-arrival
//!    latency probe at a fixed offered rate (0.4× the engine's
//!    single-shard unbatched throughput, same rate for every cell of
//!    that engine), reported as `p50_ns`/`p99_ns`/`p999_ns` against the
//!    *scheduled* arrival time — coordination-omission-free, see
//!    `harness::channel_load`. The headline is the per-engine speedup
//!    of (shards=4, batch=64) over (shards=1, batch=1), geomean across
//!    engines, acceptance ≥1.3×;
//! 6. the PR8 overload ablation (DESIGN.md §16) — backpressured cells
//!    on a deliberately small ring: the parked bounded send against a
//!    bench-local spin-send (`try_send` + yield, the pre-overload
//!    behavior), and the unbounded KP channel with the admission gate
//!    on against the identical gate-off cell (acceptance: admission
//!    on/off throughput geomean ≥0.97, i.e. ≤3% drift).
//!
//! A separate stalled-reader probe pins the bounded-memory claim: with
//! a registered consumer that never consumes while producers keep
//! feeding the queue, the KP engines grow their live heap per enqueue
//! while wCQ's live bytes stay exactly flat (everything is preallocated
//! at construction; a full ring rejects instead of allocating).
//!
//! The binary installs the counting allocator from `alloc-track`, so
//! `allocs_per_op` is the process-wide truth. Every row carries an
//! `oversubscribed` flag: when a cell runs more worker threads than the
//! machine has cores, its timing measures scheduler interleaving as
//! much as queue throughput, and comparisons against uncontended cells
//! are not apples-to-apples.
//!
//! ```text
//! cargo run -p harness --release --bin bench_record
//! cargo run -p harness --release --bin bench_record -- \
//!     --iters 100000 --reps 5 --out BENCH_PR4.json
//! ```
//!
//! `scripts/bench_record.sh` wraps this with the build step.

use std::fmt::Write as _;
use std::time::Duration;

use harness::args::Args;
use harness::channel_load::{self, CellSpec, OpenLoopSpec};
use harness::hist::LogHistogram;
use harness::{workload, SchedPolicy, Variant};
use kp_channel::{Channel, ChannelConfig, OverloadConfig, TrySendError};
use kp_queue::{Config, WfQueue, WfQueueHp};
use queue_traits::{ConcurrentQueue, FastPathStats, QueueHandle};
use wcq::WcQueue;

#[global_allocator]
static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;

struct Row {
    queue: &'static str,
    /// Engine family implementing the cell ("kogan-petrank", "wcq").
    engine: &'static str,
    /// Fixed element capacity; `None` (JSON `null`) for unbounded engines.
    capacity: Option<usize>,
    config: &'static str,
    reuse: bool,
    workload: &'static str,
    threads: usize,
    median_secs: f64,
    mops_per_sec: f64,
    allocs_per_op: f64,
    oversubscribed: bool,
    /// Merged fast-path counters across all reps; `None` for cells
    /// without a fast path.
    fast: Option<FastPathStats>,
    /// Summed (reaps, quarantines) across all reps; `Some` only for
    /// reaper-enabled cells (expected (0, 0) in a fault-free run).
    reap: Option<(u64, u64)>,
    /// Summed SCQ threshold-counter resets across all reps; `Some` only
    /// for wCQ cells.
    threshold_resets: Option<u64>,
}

/// Engine family for the legacy grid-1..3 queue names.
fn engine_of(queue: &str) -> &'static str {
    match queue {
        "wcq" | "wcq-bounded" => "wcq",
        _ => "kogan-petrank",
    }
}

/// Producers in every channel-sweep cell.
const CHAN_PRODUCERS: usize = 2;
/// Consumers in every channel-sweep cell.
const CHAN_CONSUMERS: usize = 2;
/// Per-shard ring capacity for the bounded (wCQ) channel cells.
const CHAN_SHARD_CAPACITY: usize = 4096;
/// Messages per scheduled burst in the open-loop latency probe.
const CHAN_BURST: usize = 64;

/// One channel-sweep cell: closed-loop throughput plus the open-loop
/// latency columns filled in by the second pass.
struct ChanRow {
    /// Shard engine ("wcq" bounded ring, "kp" unbounded Kogan–Petrank).
    engine: &'static str,
    shards: usize,
    batch: usize,
    /// Per-shard capacity; `None` (JSON `null`) for the unbounded core.
    capacity: Option<usize>,
    median_secs: f64,
    mops_per_sec: f64,
    allocs_per_msg: f64,
    oversubscribed: bool,
    /// Offered rate of the latency probe, Mmsg/s.
    offered_mops: f64,
    /// Latency samples across all probe reps (histograms merged).
    samples: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    mean_ns: f64,
}

/// Self-describing engine name for the channel JSON rows.
fn engine_label(engine: &str) -> &'static str {
    if engine == "wcq" {
        "wcq"
    } else {
        "kogan-petrank"
    }
}

fn chan_config(shards: usize) -> ChannelConfig {
    ChannelConfig::new()
        .with_shards(shards)
        .with_max_senders(CHAN_PRODUCERS)
        .with_max_receivers(CHAN_CONSUMERS)
}

/// Runs one closed-loop channel cell on a fresh channel of `engine`.
fn chan_closed(engine: &str, shards: usize, spec: &CellSpec) -> Duration {
    if engine == "wcq" {
        let c: Channel<u64, WcQueue<u64>> =
            Channel::wcq(chan_config(shards), CHAN_SHARD_CAPACITY);
        channel_load::run_closed_loop(&c, spec)
    } else {
        let c: Channel<u64, WfQueue<u64>> = Channel::kp(chan_config(shards));
        channel_load::run_closed_loop(&c, spec)
    }
}

/// Runs one open-loop latency probe on a fresh channel of `engine`.
fn chan_open(engine: &str, shards: usize, spec: &OpenLoopSpec) -> LogHistogram {
    if engine == "wcq" {
        let c: Channel<u64, WcQueue<u64>> =
            Channel::wcq(chan_config(shards), CHAN_SHARD_CAPACITY);
        channel_load::run_open_loop(&c, spec)
    } else {
        let c: Channel<u64, WfQueue<u64>> = Channel::kp(chan_config(shards));
        channel_load::run_open_loop(&c, spec)
    }
}

/// One timed rep: returns (duration, heap allocations during the run).
fn rep<F: FnOnce() -> Duration>(f: F) -> (Duration, usize) {
    let a0 = alloc_track::total_allocs();
    let d = f();
    (d, alloc_track::total_allocs() - a0)
}

fn median(durs: &mut [Duration]) -> Duration {
    durs.sort();
    durs[durs.len() / 2]
}

/// Runs `abandon` on its own (immediately dead) thread — the handle it
/// leaks is the sudden-death victim — then drives pairs on a freshly
/// registered survivor until `reaps()` reports the slot was reclaimed.
/// Returns (wall-clock latency, survivor ops executed).
fn run_reap_probe<H: QueueHandle<u64>>(
    abandon: impl FnOnce() + Send,
    register: impl FnOnce() -> H,
    reaps: impl Fn() -> u64,
) -> (Duration, usize) {
    std::thread::scope(|s| {
        s.spawn(abandon);
    });
    let mut h = register();
    let start = std::time::Instant::now();
    let mut ops = 0usize;
    // The cap only guards against a wedged reaper turning the probe
    // into an infinite loop; a healthy reap lands after ~patience ops.
    while reaps() == 0 && ops < 50_000_000 {
        h.enqueue(0);
        let _ = h.dequeue();
        ops += 2;
    }
    (start.elapsed(), ops)
}

fn main() {
    let args = Args::from_env();
    let iters: usize = args.get_or("iters", 50_000);
    let reps: usize = args.get_or("reps", 3);
    let out = args.get("out").unwrap_or("BENCH_PR8.json").to_string();
    let thread_counts: Vec<usize> = match args.get("threads") {
        Some(t) => vec![t.parse().unwrap_or_else(|_| {
            harness::args::bad_value_exit("threads", t, "expected a thread count")
        })],
        None => vec![1, 4],
    };

    let cores = harness::sched::num_cores();
    println!("bench_record: iters/thread = {iters}, reps = {reps}, cores = {cores}");
    // One warning per run, not one per thread count (or per row): the
    // helper is `Once`-guarded, and every grid funnels through it.
    for &threads in &thread_counts {
        harness::sched::warn_if_oversubscribed(threads, cores);
    }

    let configs: [(&str, bool, Config); 4] = [
        ("base", true, Config::base()),
        ("opt_both", true, Config::opt_both()),
        ("base", false, Config::base().with_reuse(false)),
        ("opt_both", false, Config::opt_both().with_reuse(false)),
    ];

    let mut rows: Vec<Row> = Vec::new();

    // Grid 1: the slow-path grid, unchanged from the PR2/PR3 baseline
    // so drift is a row-by-row diff against BENCH_PR3.json.
    for &threads in &thread_counts {
        for (config, reuse, cfg) in configs {
            for wl in ["pairs", "fifty_fifty"] {
                for queue in ["wf-epoch", "wf-hp"] {
                    let mut durs = Vec::with_capacity(reps);
                    let mut allocs = Vec::with_capacity(reps);
                    for _ in 0..reps {
                        let (d, a) = match (queue, wl) {
                            ("wf-epoch", "pairs") => rep(|| {
                                let q: WfQueue<u64> = WfQueue::with_config(threads, cfg);
                                workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned)
                            }),
                            ("wf-epoch", _) => rep(|| {
                                let q: WfQueue<u64> = WfQueue::with_config(threads + 1, cfg);
                                workload::run_fifty_fifty(
                                    &q,
                                    threads,
                                    iters,
                                    1_000,
                                    SchedPolicy::Unpinned,
                                )
                            }),
                            (_, "pairs") => rep(|| {
                                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, cfg);
                                workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned)
                            }),
                            _ => rep(|| {
                                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, cfg);
                                workload::run_fifty_fifty(
                                    &q,
                                    threads,
                                    iters,
                                    1_000,
                                    SchedPolicy::Unpinned,
                                )
                            }),
                        };
                        durs.push(d);
                        allocs.push(a);
                    }
                    rows.push(finish_row(
                        queue, config, reuse, wl, threads, iters, cores, durs, allocs, None,
                        None,
                    ));
                }
            }
        }
    }

    // Grid 2: the fast-path ablation cells (reuse=true throughout; the
    // fast path is an execution-mode knob, not a memory-management one).
    for &threads in &thread_counts {
        for wl in ["pairs", "fifty_fifty"] {
            for (fast, _base) in Variant::FAST_ABLATION {
                let queue = match fast {
                    Variant::WfFast => "wf-fast",
                    _ => "wf-fast-hp",
                };
                let mut durs = Vec::with_capacity(reps);
                let mut allocs = Vec::with_capacity(reps);
                let mut fp = FastPathStats::default();
                for _ in 0..reps {
                    let a0 = alloc_track::total_allocs();
                    let (d, stats) = match wl {
                        "pairs" => fast.run_pairs_stats(threads, iters, SchedPolicy::Unpinned),
                        _ => fast.run_fifty_fifty_stats(
                            threads,
                            iters,
                            1_000,
                            SchedPolicy::Unpinned,
                        ),
                    };
                    allocs.push(alloc_track::total_allocs() - a0);
                    durs.push(d);
                    fp.merge(&stats);
                }
                rows.push(finish_row(
                    queue,
                    "fast",
                    true,
                    wl,
                    threads,
                    iters,
                    cores,
                    durs,
                    allocs,
                    Some(fp),
                    None,
                ));
            }
        }
    }

    // Grid 3: the reaper ablation — the grid-1 opt_both/reuse cells
    // with the reaper on and no faults injected, so the on/off ratio is
    // pure `reap_tick` overhead. Reap/quarantine counters recorded to
    // prove fault-free runs reap nothing.
    //
    // Patience is deliberately huge: it is a deployment contract on the
    // worst-case descheduling window (DESIGN.md §13.3), and oversubscribed
    // cells park live workers long enough that the default would reap
    // them mid-benchmark. `reap_tick`'s per-op scan cost — the thing this
    // grid measures — does not depend on the patience value.
    let reap_cfg = Config::opt_both().with_reap_patience(usize::MAX >> 1);
    for &threads in &thread_counts {
        for wl in ["pairs", "fifty_fifty"] {
            for queue in ["wf-epoch", "wf-hp"] {
                let mut durs = Vec::with_capacity(reps);
                let mut allocs = Vec::with_capacity(reps);
                let mut reap_counts = (0u64, 0u64);
                for _ in 0..reps {
                    let a0 = alloc_track::total_allocs();
                    let (d, stats) = match (queue, wl) {
                        ("wf-epoch", "pairs") => {
                            let q: WfQueue<u64> = WfQueue::with_config(threads, reap_cfg);
                            let d = workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned);
                            (d, q.stats())
                        }
                        ("wf-epoch", _) => {
                            let q: WfQueue<u64> = WfQueue::with_config(threads + 1, reap_cfg);
                            let d = workload::run_fifty_fifty(
                                &q,
                                threads,
                                iters,
                                1_000,
                                SchedPolicy::Unpinned,
                            );
                            (d, q.stats())
                        }
                        (_, "pairs") => {
                            let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, reap_cfg);
                            let d = workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned);
                            (d, q.stats())
                        }
                        _ => {
                            let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, reap_cfg);
                            let d = workload::run_fifty_fifty(
                                &q,
                                threads,
                                iters,
                                1_000,
                                SchedPolicy::Unpinned,
                            );
                            (d, q.stats())
                        }
                    };
                    durs.push(d);
                    allocs.push(alloc_track::total_allocs() - a0);
                    reap_counts.0 += stats.reaps;
                    reap_counts.1 += stats.quarantines;
                }
                rows.push(finish_row(
                    queue,
                    "opt_both+reap",
                    true,
                    wl,
                    threads,
                    iters,
                    cores,
                    durs,
                    allocs,
                    None,
                    Some(reap_counts),
                ));
            }
        }
    }

    // Grid 4: the wCQ ring engine on the same cells. Rows carry the
    // engine's fallback counters plus the SCQ threshold-reset count.
    for &threads in &thread_counts {
        for wl in ["pairs", "fifty_fifty"] {
            for variant in [Variant::Wcq, Variant::WcqBounded] {
                let queue = match variant {
                    Variant::Wcq => "wcq",
                    _ => "wcq-bounded",
                };
                let cap = variant.capacity().expect("wcq variants are bounded");
                let mut durs = Vec::with_capacity(reps);
                let mut allocs = Vec::with_capacity(reps);
                let mut fp = FastPathStats::default();
                let mut resets = 0u64;
                for _ in 0..reps {
                    let a0 = alloc_track::total_allocs();
                    // +1 handle slot for the 50-50 prefill, as in grid 1.
                    let q: WcQueue<u64> = WcQueue::with_config(
                        threads + 1,
                        wcq::Config::new().with_capacity(cap),
                    );
                    let (d, stats) = match wl {
                        "pairs" => workload::run_pairs_with_stats(
                            &q,
                            threads,
                            iters,
                            SchedPolicy::Unpinned,
                        ),
                        _ => workload::run_fifty_fifty_with_stats(
                            &q,
                            threads,
                            iters,
                            1_000,
                            SchedPolicy::Unpinned,
                        ),
                    };
                    allocs.push(alloc_track::total_allocs() - a0);
                    durs.push(d);
                    fp.merge(&stats);
                    resets += q.threshold_resets();
                }
                rows.push(finish_row_full(
                    queue,
                    "wcq",
                    Some(cap),
                    "default",
                    true,
                    wl,
                    threads,
                    iters,
                    cores,
                    durs,
                    allocs,
                    Some(fp),
                    None,
                    Some(resets),
                ));
            }
        }
    }

    // Grid 5: the channel sweep — shards × batch over both shard
    // engines at a fixed 2-producer + 2-consumer cell (4 worker
    // threads, the acceptance point). First pass: closed-loop
    // throughput, median of `reps`. Second pass: open-loop bursty
    // latency at a fixed offered rate calibrated per engine to 0.4× its
    // single-shard unbatched closed-loop throughput — the *same* rate
    // for every cell of that engine, so the p50/p99/p999 columns
    // compare configurations at equal load.
    let chan_threads = CHAN_PRODUCERS + CHAN_CONSUMERS;
    let chan_oversub = harness::sched::warn_if_oversubscribed(chan_threads, cores);
    // Channel cells run 4x the global iteration count: with 4 worker
    // threads oversubscribed onto few cores, a cell has to span many
    // scheduler quanta (tens of ms) before its median is a measurement
    // rather than a coin flip on which thread held the core.
    let chan_iters = iters * 4;
    let chan_engines: [&'static str; 2] = ["wcq", "kp"];
    let shard_counts = [1usize, 2, 4];
    let batch_sizes = [1usize, 8, 64];
    let mut chan_rows: Vec<ChanRow> = Vec::new();
    for &engine in &chan_engines {
        for &shards in &shard_counts {
            for &batch in &batch_sizes {
                let spec = CellSpec {
                    producers: CHAN_PRODUCERS,
                    consumers: CHAN_CONSUMERS,
                    iters: chan_iters,
                    batch,
                };
                let mut durs = Vec::with_capacity(reps);
                let mut allocs = Vec::with_capacity(reps);
                for _ in 0..reps {
                    let (d, a) = rep(|| chan_closed(engine, shards, &spec));
                    durs.push(d);
                    allocs.push(a);
                }
                let med = median(&mut durs);
                allocs.sort();
                let msgs = spec.messages() as f64;
                let row = ChanRow {
                    engine,
                    shards,
                    batch,
                    capacity: (engine == "wcq").then_some(CHAN_SHARD_CAPACITY),
                    median_secs: med.as_secs_f64(),
                    mops_per_sec: msgs / med.as_secs_f64() / 1e6,
                    allocs_per_msg: allocs[allocs.len() / 2] as f64 / msgs,
                    oversubscribed: chan_oversub,
                    offered_mops: 0.0,
                    samples: 0,
                    p50_ns: 0,
                    p99_ns: 0,
                    p999_ns: 0,
                    max_ns: 0,
                    mean_ns: 0.0,
                };
                println!(
                    "channel {:4} shards={} batch={:2} t={}{}: {:>8.3} Mmsg/s, \
                     {:.4} allocs/msg",
                    row.engine,
                    row.shards,
                    row.batch,
                    chan_threads,
                    if row.oversubscribed { " (oversub)" } else { "" },
                    row.mops_per_sec,
                    row.allocs_per_msg
                );
                chan_rows.push(row);
            }
        }
    }

    // Latency pass. Bursts are sized from `iters` so a probe offers
    // about as many messages as a closed-loop cell moves.
    for &engine in &chan_engines {
        let base_mops = chan_rows
            .iter()
            .find(|r| r.engine == engine && r.shards == 1 && r.batch == 1)
            .expect("single-shard unbatched baseline row")
            .mops_per_sec;
        let offered_per_sec = 0.4 * base_mops * 1e6;
        let gap = Duration::from_nanos(
            ((CHAN_PRODUCERS * CHAN_BURST) as f64 / offered_per_sec * 1e9) as u64,
        );
        let bursts = (chan_iters / CHAN_BURST).max(8);
        for row in chan_rows.iter_mut().filter(|r| r.engine == engine) {
            let spec = OpenLoopSpec {
                producers: CHAN_PRODUCERS,
                consumers: CHAN_CONSUMERS,
                batch: row.batch,
                burst: CHAN_BURST,
                bursts,
                gap,
            };
            let mut hist = LogHistogram::new();
            for _ in 0..reps {
                hist.merge(&chan_open(engine, row.shards, &spec));
            }
            row.offered_mops = spec.offered_per_sec() / 1e6;
            row.samples = hist.len();
            row.p50_ns = hist.quantile(0.5);
            row.p99_ns = hist.quantile(0.99);
            row.p999_ns = hist.quantile(0.999);
            row.max_ns = hist.max();
            row.mean_ns = hist.mean();
            println!(
                "channel latency {:4} shards={} batch={:2}: p50 {:>7} ns, p99 {:>8} ns, \
                 p999 {:>8} ns ({} samples at {:.3} Mmsg/s offered)",
                row.engine, row.shards, row.batch, row.p50_ns, row.p99_ns, row.p999_ns,
                row.samples, row.offered_mops
            );
        }
    }

    // Grid 6: the overload ablation (DESIGN.md §16). Backpressured
    // cells: a ring small enough that the closed-loop producers outrun
    // the consumers and hit `Full` constantly, so the cell measures the
    // refusal path, not the happy path. Three comparisons:
    //   - wcq park vs spin: the parked bounded send against a
    //     bench-local `try_send` + `yield_now` loop (the pre-overload
    //     sender behavior);
    //   - kp admission on vs off: the same blocking-send cell with and
    //     without a per-shard depth quota (gate overhead + gated parks
    //     vs an unbounded engine that never refuses);
    //   - the admission-on/off ratio is the acceptance number: geomean
    //     ≥0.97 (≤3% drift from the overload machinery).
    const OVERLOAD_RING: usize = 256;
    const OVERLOAD_QUOTA: usize = 256;
    struct OverRow {
        engine: &'static str,
        mode: &'static str,
        capacity: Option<usize>,
        depth_quota: Option<usize>,
        median_secs: f64,
        mops_per_sec: f64,
        allocs_per_msg: f64,
        tx_parks: u64,
        refusals_spun: bool,
    }
    let mut over_rows: Vec<OverRow> = Vec::new();
    {
        // One backpressured closed-loop cell: 2 producers send `iters`
        // values each (parked or spinning on Full), 2 consumers drain
        // batched until disconnect.
        fn overload_cell<Q: queue_traits::ConcurrentQueue<u64>>(
            chan: &Channel<u64, Q>,
            spin: bool,
            iters: usize,
        ) -> Duration {
            let txs: Vec<_> = (0..CHAN_PRODUCERS).map(|_| chan.sender()).collect();
            let rxs: Vec<_> = (0..CHAN_CONSUMERS).map(|_| chan.receiver()).collect();
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for (p, mut tx) in txs.into_iter().enumerate() {
                    s.spawn(move || {
                        for i in 0..iters as u64 {
                            let mut v = ((p as u64) << 48) | i;
                            if spin {
                                loop {
                                    match tx.try_send(v) {
                                        Ok(()) => break,
                                        Err(TrySendError::Full(x)) => {
                                            v = x;
                                            std::thread::yield_now();
                                        }
                                        Err(TrySendError::Disconnected(_)) => {
                                            panic!("receivers vanished")
                                        }
                                    }
                                }
                            } else {
                                tx.send(v).expect("receivers vanished");
                            }
                        }
                    });
                }
                for mut rx in rxs {
                    s.spawn(move || {
                        let mut buf = Vec::with_capacity(64);
                        while rx.recv_batch(&mut buf, 64).is_ok() {
                            buf.clear();
                        }
                    });
                }
            });
            start.elapsed()
        }
        let over_cells: [(&'static str, &'static str, Option<usize>, Option<usize>); 4] = [
            ("wcq", "park", Some(OVERLOAD_RING), None),
            ("wcq", "spin", Some(OVERLOAD_RING), None),
            ("kp", "admission-off", None, None),
            ("kp", "admission-on", None, Some(OVERLOAD_QUOTA)),
        ];
        for (engine, mode, capacity, quota) in over_cells {
            let spin = mode == "spin";
            let mut durs = Vec::with_capacity(reps);
            let mut allocs = Vec::with_capacity(reps);
            let mut tx_parks = 0u64;
            for _ in 0..reps {
                let cfg = match quota {
                    Some(q) => chan_config(2)
                        .with_overload(OverloadConfig::disabled().with_depth_quota(q)),
                    None => chan_config(2),
                };
                let (d, a) = if engine == "wcq" {
                    let c: Channel<u64, WcQueue<u64>> = Channel::wcq(cfg, OVERLOAD_RING);
                    let r = rep(|| overload_cell(&c, spin, chan_iters));
                    tx_parks += c.health_snapshot().shards.iter().map(|s| s.tx_parks).sum::<u64>();
                    r
                } else {
                    let c: Channel<u64, WfQueue<u64>> = Channel::kp(cfg);
                    let r = rep(|| overload_cell(&c, spin, chan_iters));
                    tx_parks += c.health_snapshot().shards.iter().map(|s| s.tx_parks).sum::<u64>();
                    r
                };
                durs.push(d);
                allocs.push(a);
            }
            let med = median(&mut durs);
            allocs.sort();
            let msgs = (CHAN_PRODUCERS * chan_iters) as f64;
            let row = OverRow {
                engine,
                mode,
                capacity,
                depth_quota: quota,
                median_secs: med.as_secs_f64(),
                mops_per_sec: msgs / med.as_secs_f64() / 1e6,
                allocs_per_msg: allocs[allocs.len() / 2] as f64 / msgs,
                tx_parks,
                refusals_spun: spin,
            };
            println!(
                "overload {:4} {:13} t={}{}: {:>8.3} Mmsg/s, {:.4} allocs/msg, {} sender parks",
                row.engine,
                row.mode,
                chan_threads,
                if chan_oversub { " (oversub)" } else { "" },
                row.mops_per_sec,
                row.allocs_per_msg,
                row.tx_parks
            );
            over_rows.push(row);
        }
    }
    let over_pick = |engine: &str, mode: &str| {
        over_rows
            .iter()
            .find(|r| r.engine == engine && r.mode == mode)
            .expect("overload ablation cell")
    };
    let park_over_spin =
        over_pick("wcq", "park").mops_per_sec / over_pick("wcq", "spin").mops_per_sec;
    let admission_on_over_off = over_pick("kp", "admission-on").mops_per_sec
        / over_pick("kp", "admission-off").mops_per_sec;
    println!("overload wcq parked-send over spin-send: {park_over_spin:.4}x");
    println!(
        "overload kp admission on over off: {admission_on_over_off:.4}x \
         (acceptance >= 0.97, i.e. <= 3% drift)"
    );

    // Headline comparison for this PR: per engine, the fully batched +
    // sharded cell over the single-shard unbatched one; geomean across
    // engines, acceptance ≥1.3×.
    let mut chan_cmps = String::new();
    let mut chan_log_sum = 0.0f64;
    let mut chan_n = 0usize;
    for &engine in &chan_engines {
        let pick = |shards: usize, batch: usize| {
            chan_rows
                .iter()
                .find(|r| r.engine == engine && r.shards == shards && r.batch == batch)
                .expect("channel sweep cell")
        };
        let best = pick(4, 64);
        let base = pick(1, 1);
        let speedup = best.mops_per_sec / base.mops_per_sec;
        chan_log_sum += speedup.ln();
        chan_n += 1;
        let _ = write!(
            chan_cmps,
            "{}    {{\"engine\": \"{}\", \"batched_sharded_mops\": {:.4}, \
             \"single_unbatched_mops\": {:.4}, \"speedup\": {:.4}}}",
            if chan_cmps.is_empty() { "" } else { ",\n" },
            engine_label(engine),
            best.mops_per_sec,
            base.mops_per_sec,
            speedup
        );
        println!(
            "channel {} (shards=4, batch=64) over (shards=1, batch=1): {:.3}x",
            engine, speedup
        );
    }
    let chan_geomean = (chan_log_sum / chan_n as f64).exp();
    println!(
        "channel batched+sharded over single-shard-unbatched geomean across \
         {chan_n} engines: {chan_geomean:.4}x (acceptance >= 1.3)"
    );

    // Headline comparison from PR2: on pairs, reuse must not be slower
    // than the alloc baseline (same queue, config, thread count).
    let mut reuse_cmps = String::new();
    for r in rows.iter().filter(|r| r.reuse && r.workload == "pairs" && r.fast.is_none()) {
        if let Some(b) = rows.iter().find(|b| {
            !b.reuse
                && b.workload == "pairs"
                && b.queue == r.queue
                && b.config == r.config
                && b.threads == r.threads
        }) {
            let speedup = r.mops_per_sec / b.mops_per_sec;
            let _ = write!(
                reuse_cmps,
                "{}    {{\"queue\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
                 \"reuse_over_alloc_speedup\": {:.4}}}",
                if reuse_cmps.is_empty() { "" } else { ",\n" },
                r.queue,
                r.config,
                r.threads,
                speedup
            );
            println!(
                "pairs speedup reuse/alloc {} {} t={}: {:.3}x",
                r.queue, r.config, r.threads, speedup
            );
        }
    }

    // Headline comparison for this PR: each fast cell against its
    // slow-path-only base (same memory management, opt_both, reuse).
    let mut fast_cmps = String::new();
    let mut log_sum = 0.0f64;
    let mut n_cmps = 0usize;
    for (fast, _) in Variant::FAST_ABLATION {
        let (fast_name, base_name) = match fast {
            Variant::WfFast => ("wf-fast", "wf-epoch"),
            _ => ("wf-fast-hp", "wf-hp"),
        };
        for &threads in &thread_counts {
            for wl in ["pairs", "fifty_fifty"] {
                let f = rows
                    .iter()
                    .find(|r| r.queue == fast_name && r.workload == wl && r.threads == threads)
                    .expect("fast row");
                let b = rows
                    .iter()
                    .find(|r| {
                        r.queue == base_name
                            && r.config == "opt_both"
                            && r.reuse
                            && r.workload == wl
                            && r.threads == threads
                    })
                    .expect("base row");
                let speedup = f.mops_per_sec / b.mops_per_sec;
                log_sum += speedup.ln();
                n_cmps += 1;
                let fp = f.fast.as_ref().expect("fast row has stats");
                let _ = write!(
                    fast_cmps,
                    "{}    {{\"fast\": \"{}\", \"base\": \"{}\", \"workload\": \"{}\", \
                     \"threads\": {}, \"fast_over_base_speedup\": {:.4}, \
                     \"fallback_rate\": {:.6}}}",
                    if fast_cmps.is_empty() { "" } else { ",\n" },
                    fast_name,
                    base_name,
                    wl,
                    threads,
                    speedup,
                    fp.fallback_rate()
                );
                println!(
                    "fast/base {} vs {} {} t={}: {:.3}x (fallback rate {:.4})",
                    fast_name,
                    base_name,
                    wl,
                    threads,
                    speedup,
                    fp.fallback_rate()
                );
            }
        }
    }
    let geomean = (log_sum / n_cmps as f64).exp();
    println!("fast-over-base geomean across {n_cmps} cells: {geomean:.4}x");

    // Headline comparison for this PR: each reaper-on cell against the
    // identical reaper-off cell (acceptance: overhead geomean ≤1.03×,
    // i.e. on/off speedup geomean ≥0.9709).
    let mut reap_cmps = String::new();
    let mut reap_log_sum = 0.0f64;
    let mut reap_n = 0usize;
    for r in rows.iter().filter(|r| r.config == "opt_both+reap") {
        let b = rows
            .iter()
            .find(|b| {
                b.queue == r.queue
                    && b.config == "opt_both"
                    && b.reuse
                    && b.workload == r.workload
                    && b.threads == r.threads
            })
            .expect("reaper-off twin row");
        let speedup = r.mops_per_sec / b.mops_per_sec;
        reap_log_sum += speedup.ln();
        reap_n += 1;
        let (reaps, quarantines) = r.reap.expect("reaper cell has counters");
        let _ = write!(
            reap_cmps,
            "{}    {{\"queue\": \"{}\", \"workload\": \"{}\", \"threads\": {}, \
             \"reap_on_over_off_speedup\": {:.4}, \"reaps\": {}, \"quarantines\": {}}}",
            if reap_cmps.is_empty() { "" } else { ",\n" },
            r.queue,
            r.workload,
            r.threads,
            speedup,
            reaps,
            quarantines
        );
        println!(
            "reaper on/off {} {} t={}: {:.3}x (reaps {}, quarantines {})",
            r.queue, r.workload, r.threads, speedup, reaps, quarantines
        );
    }
    let reap_geomean = (reap_log_sum / reap_n as f64).exp();
    println!("reaper-on-over-off geomean across {reap_n} cells: {reap_geomean:.4}x");

    // Reap-latency probe: abandon a handle for real (mem::forget — the
    // sudden-death half of the fault model) and measure how long a lone
    // survivor takes to revoke the lease and finish the reap, in
    // wall-clock time and in survivor operations. Patience is shrunk so
    // the probe measures the reap machinery, not the (configurable)
    // patience window itself.
    const PROBE_PATIENCE: usize = 64;
    // Floor 0 for the same reason as the shrunk patience: the probe
    // reports reap latency, which a 1 s wall floor would dominate.
    let probe_cfg = Config::opt_both()
        .with_reap_patience(PROBE_PATIENCE)
        .with_reap_min_silence_ms(0);
    let mut probes = String::new();
    for queue in ["wf-epoch", "wf-hp"] {
        let (latency, ops, reaps, quarantines) = if queue == "wf-epoch" {
            let q: WfQueue<u64> = WfQueue::with_config(2, probe_cfg);
            let probe = run_reap_probe(
                || {
                    let mut h = q.register().expect("probe victim slot");
                    for i in 0..16 {
                        h.enqueue(i);
                    }
                    std::mem::forget(h);
                },
                || q.register().expect("probe survivor slot"),
                || q.stats().reaps,
            );
            let s = q.stats();
            (probe.0, probe.1, s.reaps, s.quarantines)
        } else {
            let q: WfQueueHp<u64> = WfQueueHp::with_config(2, probe_cfg);
            let probe = run_reap_probe(
                || {
                    let mut h = q.register().expect("probe victim slot");
                    for i in 0..16 {
                        h.enqueue(i);
                    }
                    std::mem::forget(h);
                },
                || q.register().expect("probe survivor slot"),
                || q.stats().reaps,
            );
            let s = q.stats();
            (probe.0, probe.1, s.reaps, s.quarantines)
        };
        let _ = write!(
            probes,
            "{}    {{\"queue\": \"{}\", \"reap_patience\": {}, \
             \"reap_latency_secs\": {:.6}, \"survivor_ops_until_reap\": {}, \
             \"reaps\": {}, \"quarantines\": {}}}",
            if probes.is_empty() { "" } else { ",\n" },
            queue,
            PROBE_PATIENCE,
            latency.as_secs_f64(),
            ops,
            reaps,
            quarantines
        );
        println!(
            "reap probe {queue}: {:.2?} / {ops} survivor ops until reap \
             (patience {PROBE_PATIENCE}, reaps {reaps}, quarantines {quarantines})",
            latency
        );
    }

    // Headline comparison for this PR: the three-way shootout — each
    // wCQ cell against the KP slow path (wf-epoch opt_both, reuse) and
    // the KP fast path (wf-fast) on the identical workload cell. The
    // acceptance geomean counts unbounded-wcq-vs-KP-slow at ≥4 threads.
    let mut shootout = String::new();
    let mut wcq_log_sum = 0.0f64;
    let mut wcq_n = 0usize;
    for r in rows.iter().filter(|r| r.engine == "wcq") {
        let slow = rows
            .iter()
            .find(|b| {
                b.queue == "wf-epoch"
                    && b.config == "opt_both"
                    && b.reuse
                    && b.workload == r.workload
                    && b.threads == r.threads
            })
            .expect("KP slow-path twin row");
        let fast = rows
            .iter()
            .find(|b| b.queue == "wf-fast" && b.workload == r.workload && b.threads == r.threads)
            .expect("KP fast-path twin row");
        let vs_slow = r.mops_per_sec / slow.mops_per_sec;
        let vs_fast = r.mops_per_sec / fast.mops_per_sec;
        if r.queue == "wcq" && r.threads >= 4 {
            wcq_log_sum += vs_slow.ln();
            wcq_n += 1;
        }
        let fp = r.fast.as_ref().expect("wcq row has stats");
        let _ = write!(
            shootout,
            "{}    {{\"queue\": \"{}\", \"capacity\": {}, \"workload\": \"{}\", \
             \"threads\": {}, \"wcq_over_kp_slow\": {:.4}, \"wcq_over_kp_fast\": {:.4}, \
             \"fallback_rate\": {:.6}, \"threshold_resets\": {}}}",
            if shootout.is_empty() { "" } else { ",\n" },
            r.queue,
            r.capacity.expect("wcq rows are bounded"),
            r.workload,
            r.threads,
            vs_slow,
            vs_fast,
            fp.fallback_rate(),
            r.threshold_resets.expect("wcq rows count resets"),
        );
        println!(
            "shootout {} {} t={}: {:.3}x vs KP slow, {:.3}x vs KP fast",
            r.queue, r.workload, r.threads, vs_slow, vs_fast
        );
    }
    let wcq_geomean = if wcq_n > 0 {
        (wcq_log_sum / wcq_n as f64).exp()
    } else {
        f64::NAN
    };
    println!("wcq-over-kp-slow geomean across {wcq_n} cells at >=4 threads: {wcq_geomean:.4}x");

    // Stalled-reader memory probe: a registered consumer goes silent
    // while a producer keeps feeding the queue. The KP engines allocate
    // a node per enqueue, so live heap grows with the backlog; wCQ
    // preallocated everything at construction and rejects on a full
    // ring, so its live-byte growth is exactly zero.
    const STALLED_FEED: usize = 50_000;
    let mut stalled = String::new();
    {
        let q: WfQueue<u64> = WfQueue::with_config(2, Config::opt_both());
        let _reader = q.register().expect("stalled reader slot");
        let mut h = q.register().expect("producer slot");
        let mark = alloc_track::live_bytes();
        for i in 0..STALLED_FEED {
            h.enqueue(i as u64);
        }
        let growth = alloc_track::live_bytes().saturating_sub(mark);
        let _ = writeln!(
            stalled,
            "    {{\"queue\": \"wf-epoch\", \"engine\": \"kogan-petrank\", \"capacity\": null, \
             \"items_offered\": {STALLED_FEED}, \"items_rejected\": 0, \
             \"live_bytes_growth\": {growth}}},"
        );
        println!("stalled reader wf-epoch: +{growth} live bytes after {STALLED_FEED} enqueues");
    }
    {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(2, Config::opt_both());
        let _reader = q.register().expect("stalled reader slot");
        let mut h = q.register().expect("producer slot");
        let mark = alloc_track::live_bytes();
        for i in 0..STALLED_FEED {
            h.enqueue(i as u64);
        }
        let growth = alloc_track::live_bytes().saturating_sub(mark);
        let _ = writeln!(
            stalled,
            "    {{\"queue\": \"wf-hp\", \"engine\": \"kogan-petrank\", \"capacity\": null, \
             \"items_offered\": {STALLED_FEED}, \"items_rejected\": 0, \
             \"live_bytes_growth\": {growth}}},"
        );
        println!("stalled reader wf-hp: +{growth} live bytes after {STALLED_FEED} enqueues");
    }
    {
        let cap = Variant::WcqBounded.capacity().expect("bounded");
        let q: WcQueue<u64> =
            WcQueue::with_config(2, wcq::Config::new().with_capacity(cap));
        let _reader = q.register().expect("stalled reader slot");
        let mut h = q.register().expect("producer slot");
        let mark = alloc_track::live_bytes();
        let mut rejected = 0usize;
        for i in 0..STALLED_FEED {
            if h.try_enqueue(i as u64).is_err() {
                rejected += 1;
            }
        }
        let growth = alloc_track::live_bytes().saturating_sub(mark);
        let _ = writeln!(
            stalled,
            "    {{\"queue\": \"wcq-bounded\", \"engine\": \"wcq\", \"capacity\": {cap}, \
             \"items_offered\": {STALLED_FEED}, \"items_rejected\": {rejected}, \
             \"live_bytes_growth\": {growth}}}"
        );
        println!(
            "stalled reader wcq-bounded: +{growth} live bytes after {STALLED_FEED} offers \
             ({rejected} rejected at capacity {cap})"
        );
        assert_eq!(
            growth, 0,
            "wCQ must not allocate under a stalled reader (bounded-memory claim)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 8,\n");
    let _ = writeln!(json, "  \"iters_per_thread\": {iters},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let fast_fields = match &r.fast {
            Some(fp) => format!(
                ", \"fallback_rate\": {:.6}, \"fast_completions\": {}, \
                 \"fast_exhaustions\": {}, \"fast_starvation_demotions\": {}, \
                 \"slow_ops\": {}",
                fp.fallback_rate(),
                fp.fast_completions,
                fp.fast_exhaustions,
                fp.fast_starvation_demotions,
                fp.slow_ops
            ),
            None => String::new(),
        };
        let reap_fields = match &r.reap {
            Some((reaps, quarantines)) => {
                format!(", \"reaps\": {reaps}, \"quarantines\": {quarantines}")
            }
            None => String::new(),
        };
        let reset_fields = match r.threshold_resets {
            Some(n) => format!(", \"threshold_resets\": {n}"),
            None => String::new(),
        };
        let capacity = match r.capacity {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"queue\": \"{}\", \"engine\": \"{}\", \"capacity\": {}, \
             \"config\": \"{}\", \"reuse\": {}, \
             \"workload\": \"{}\", \"threads\": {}, \"oversubscribed\": {}, \
             \"median_secs\": {:.6}, \"mops_per_sec\": {:.4}, \
             \"allocs_per_op\": {:.6}{}{}{}}}{}",
            r.queue,
            r.engine,
            capacity,
            r.config,
            r.reuse,
            r.workload,
            r.threads,
            r.oversubscribed,
            r.median_secs,
            r.mops_per_sec,
            r.allocs_per_op,
            fast_fields,
            reap_fields,
            reset_fields,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"pairs_reuse_vs_alloc\": [\n");
    json.push_str(&reuse_cmps);
    json.push_str("\n  ],\n  \"fast_vs_base\": [\n");
    json.push_str(&fast_cmps);
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"fast_vs_base_geomean\": {geomean:.4},");
    json.push_str("  \"reap_on_vs_off\": [\n");
    json.push_str(&reap_cmps);
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"reap_on_vs_off_geomean\": {reap_geomean:.4},");
    json.push_str("  \"reap_probe\": [\n");
    json.push_str(&probes);
    json.push_str("\n  ],\n");
    json.push_str("  \"wcq_shootout\": [\n");
    json.push_str(&shootout);
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"wcq_over_kp_slow_geomean_4t\": {wcq_geomean:.4},"
    );
    json.push_str("  \"stalled_reader\": [\n");
    json.push_str(&stalled);
    json.push_str("  ],\n");
    json.push_str("  \"channel_sweep\": [\n");
    for (i, r) in chan_rows.iter().enumerate() {
        let capacity = match r.capacity {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"shards\": {}, \"batch\": {}, \
             \"capacity\": {}, \"producers\": {}, \"consumers\": {}, \
             \"threads\": {}, \"oversubscribed\": {}, \
             \"median_secs\": {:.6}, \"mops_per_sec\": {:.4}, \
             \"allocs_per_msg\": {:.6}, \"offered_mops\": {:.4}, \
             \"latency_samples\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \
             \"p999_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1}}}{}",
            engine_label(r.engine),
            r.shards,
            r.batch,
            capacity,
            CHAN_PRODUCERS,
            CHAN_CONSUMERS,
            CHAN_PRODUCERS + CHAN_CONSUMERS,
            r.oversubscribed,
            r.median_secs,
            r.mops_per_sec,
            r.allocs_per_msg,
            r.offered_mops,
            r.samples,
            r.p50_ns,
            r.p99_ns,
            r.p999_ns,
            r.max_ns,
            r.mean_ns,
            if i + 1 == chan_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"channel_batched_sharded_vs_single\": [\n");
    json.push_str(&chan_cmps);
    json.push_str("\n  ],\n");
    let _ = writeln!(
        json,
        "  \"channel_batched_sharded_geomean\": {chan_geomean:.4},"
    );
    json.push_str("  \"overload_ablation\": [\n");
    for (i, r) in over_rows.iter().enumerate() {
        let capacity = match r.capacity {
            Some(c) => c.to_string(),
            None => "null".to_string(),
        };
        let quota = match r.depth_quota {
            Some(q) => q.to_string(),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"engine\": \"{}\", \"mode\": \"{}\", \"capacity\": {}, \
             \"depth_quota\": {}, \"producers\": {}, \"consumers\": {}, \
             \"oversubscribed\": {}, \"median_secs\": {:.6}, \
             \"mops_per_sec\": {:.4}, \"allocs_per_msg\": {:.6}, \
             \"tx_parks\": {}, \"refusals_spun\": {}}}{}",
            engine_label(r.engine),
            r.mode,
            capacity,
            quota,
            CHAN_PRODUCERS,
            CHAN_CONSUMERS,
            chan_oversub,
            r.median_secs,
            r.mops_per_sec,
            r.allocs_per_msg,
            r.tx_parks,
            r.refusals_spun,
            if i + 1 == over_rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"overload_park_over_spin\": {park_over_spin:.4},");
    let _ = writeln!(
        json,
        "  \"overload_admission_on_over_off\": {admission_on_over_off:.4}"
    );
    json.push_str("}\n");

    std::fs::write(&out, json).expect("write JSON report");
    println!("-> {out}");
}

#[allow(clippy::too_many_arguments)]
fn finish_row(
    queue: &'static str,
    config: &'static str,
    reuse: bool,
    wl: &'static str,
    threads: usize,
    iters: usize,
    cores: usize,
    mut durs: Vec<Duration>,
    mut allocs: Vec<usize>,
    fast: Option<FastPathStats>,
    reap: Option<(u64, u64)>,
) -> Row {
    finish_row_full(
        queue,
        engine_of(queue),
        None,
        config,
        reuse,
        wl,
        threads,
        iters,
        cores,
        durs.split_off(0),
        allocs.split_off(0),
        fast,
        reap,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn finish_row_full(
    queue: &'static str,
    engine: &'static str,
    capacity: Option<usize>,
    config: &'static str,
    reuse: bool,
    wl: &'static str,
    threads: usize,
    iters: usize,
    cores: usize,
    mut durs: Vec<Duration>,
    mut allocs: Vec<usize>,
    fast: Option<FastPathStats>,
    reap: Option<(u64, u64)>,
    threshold_resets: Option<u64>,
) -> Row {
    let med = median(&mut durs);
    // Pairs = 2 ops per iteration; 50-50 = 1.
    let ops = (threads * iters * if wl == "pairs" { 2 } else { 1 }) as f64;
    allocs.sort();
    let med_allocs = allocs[allocs.len() / 2] as f64;
    let row = Row {
        queue,
        engine,
        capacity,
        config,
        reuse,
        workload: wl,
        threads,
        median_secs: med.as_secs_f64(),
        mops_per_sec: ops / med.as_secs_f64() / 1e6,
        allocs_per_op: med_allocs / ops,
        oversubscribed: threads > cores,
        fast,
        reap,
        threshold_resets,
    };
    println!(
        "{:10} {:8} reuse={:5} {:11} t={}{}: {:>8.3} Mops/s, {:.4} allocs/op{}",
        row.queue,
        row.config,
        row.reuse,
        row.workload,
        row.threads,
        if row.oversubscribed { " (oversub)" } else { "" },
        row.mops_per_sec,
        row.allocs_per_op,
        match &row.fast {
            Some(fp) => format!(", fallback rate {:.4}", fp.fallback_rate()),
            None => String::new(),
        }
    );
    row
}
