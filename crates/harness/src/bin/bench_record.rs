//! Records the PR's perf baseline: throughput *and* allocation rate for
//! the fast-path/slow-path execution split against its slow-path-only
//! baseline, written as machine-readable JSON (default `BENCH_PR4.json`).
//!
//! Two grids:
//! 1. the PR2/PR3 slow-path grid — {epoch, HP} × {base, opt(1+2)} ×
//!    {reuse, alloc} × {pairs, 50-50} × a small thread sweep — kept
//!    verbatim so slow-path drift vs the previous baseline is a
//!    row-by-row diff;
//! 2. the PR4 fast-path ablation — each fast variant against its
//!    slow-path-only base (same memory management), with the merged
//!    per-handle fallback counters recorded per cell.
//!
//! The binary installs the counting allocator from `alloc-track`, so
//! `allocs_per_op` is the process-wide truth. Every row carries an
//! `oversubscribed` flag: when a cell runs more worker threads than the
//! machine has cores, its timing measures scheduler interleaving as
//! much as queue throughput, and comparisons against uncontended cells
//! are not apples-to-apples.
//!
//! ```text
//! cargo run -p harness --release --bin bench_record
//! cargo run -p harness --release --bin bench_record -- \
//!     --iters 100000 --reps 5 --out BENCH_PR4.json
//! ```
//!
//! `scripts/bench_record.sh` wraps this with the build step.

use std::fmt::Write as _;
use std::time::Duration;

use harness::args::Args;
use harness::{workload, SchedPolicy, Variant};
use kp_queue::{Config, WfQueue, WfQueueHp};
use queue_traits::FastPathStats;

#[global_allocator]
static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;

struct Row {
    queue: &'static str,
    config: &'static str,
    reuse: bool,
    workload: &'static str,
    threads: usize,
    median_secs: f64,
    mops_per_sec: f64,
    allocs_per_op: f64,
    oversubscribed: bool,
    /// Merged fast-path counters across all reps; `None` for cells
    /// without a fast path.
    fast: Option<FastPathStats>,
}

/// One timed rep: returns (duration, heap allocations during the run).
fn rep<F: FnOnce() -> Duration>(f: F) -> (Duration, usize) {
    let a0 = alloc_track::total_allocs();
    let d = f();
    (d, alloc_track::total_allocs() - a0)
}

fn median(durs: &mut [Duration]) -> Duration {
    durs.sort();
    durs[durs.len() / 2]
}

fn main() {
    let args = Args::from_env();
    let iters: usize = args.get_or("iters", 50_000);
    let reps: usize = args.get_or("reps", 3);
    let out = args.get("out").unwrap_or("BENCH_PR4.json").to_string();
    let thread_counts: Vec<usize> = match args.get("threads") {
        Some(t) => vec![t.parse().expect("--threads N")],
        None => vec![1, 4],
    };

    let cores = harness::sched::num_cores();
    println!("bench_record: iters/thread = {iters}, reps = {reps}, cores = {cores}");
    for &threads in &thread_counts {
        if threads > cores {
            eprintln!(
                "WARNING: {threads}-thread cells run on {cores} core(s): they are \
                 oversubscribed, so timings measure scheduler interleaving as much \
                 as queue throughput. Rows carry \"oversubscribed\": true."
            );
        }
    }

    let configs: [(&str, bool, Config); 4] = [
        ("base", true, Config::base()),
        ("opt_both", true, Config::opt_both()),
        ("base", false, Config::base().with_reuse(false)),
        ("opt_both", false, Config::opt_both().with_reuse(false)),
    ];

    let mut rows: Vec<Row> = Vec::new();

    // Grid 1: the slow-path grid, unchanged from the PR2/PR3 baseline
    // so drift is a row-by-row diff against BENCH_PR3.json.
    for &threads in &thread_counts {
        for (config, reuse, cfg) in configs {
            for wl in ["pairs", "fifty_fifty"] {
                for queue in ["wf-epoch", "wf-hp"] {
                    let mut durs = Vec::with_capacity(reps);
                    let mut allocs = Vec::with_capacity(reps);
                    for _ in 0..reps {
                        let (d, a) = match (queue, wl) {
                            ("wf-epoch", "pairs") => rep(|| {
                                let q: WfQueue<u64> = WfQueue::with_config(threads, cfg);
                                workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned)
                            }),
                            ("wf-epoch", _) => rep(|| {
                                let q: WfQueue<u64> = WfQueue::with_config(threads + 1, cfg);
                                workload::run_fifty_fifty(
                                    &q,
                                    threads,
                                    iters,
                                    1_000,
                                    SchedPolicy::Unpinned,
                                )
                            }),
                            (_, "pairs") => rep(|| {
                                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, cfg);
                                workload::run_pairs(&q, threads, iters, SchedPolicy::Unpinned)
                            }),
                            _ => rep(|| {
                                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, cfg);
                                workload::run_fifty_fifty(
                                    &q,
                                    threads,
                                    iters,
                                    1_000,
                                    SchedPolicy::Unpinned,
                                )
                            }),
                        };
                        durs.push(d);
                        allocs.push(a);
                    }
                    rows.push(finish_row(
                        queue, config, reuse, wl, threads, iters, cores, durs, allocs, None,
                    ));
                }
            }
        }
    }

    // Grid 2: the fast-path ablation cells (reuse=true throughout; the
    // fast path is an execution-mode knob, not a memory-management one).
    for &threads in &thread_counts {
        for wl in ["pairs", "fifty_fifty"] {
            for (fast, _base) in Variant::FAST_ABLATION {
                let queue = match fast {
                    Variant::WfFast => "wf-fast",
                    _ => "wf-fast-hp",
                };
                let mut durs = Vec::with_capacity(reps);
                let mut allocs = Vec::with_capacity(reps);
                let mut fp = FastPathStats::default();
                for _ in 0..reps {
                    let a0 = alloc_track::total_allocs();
                    let (d, stats) = match wl {
                        "pairs" => fast.run_pairs_stats(threads, iters, SchedPolicy::Unpinned),
                        _ => fast.run_fifty_fifty_stats(
                            threads,
                            iters,
                            1_000,
                            SchedPolicy::Unpinned,
                        ),
                    };
                    allocs.push(alloc_track::total_allocs() - a0);
                    durs.push(d);
                    fp.merge(&stats);
                }
                rows.push(finish_row(
                    queue,
                    "fast",
                    true,
                    wl,
                    threads,
                    iters,
                    cores,
                    durs,
                    allocs,
                    Some(fp),
                ));
            }
        }
    }

    // Headline comparison from PR2: on pairs, reuse must not be slower
    // than the alloc baseline (same queue, config, thread count).
    let mut reuse_cmps = String::new();
    for r in rows.iter().filter(|r| r.reuse && r.workload == "pairs" && r.fast.is_none()) {
        if let Some(b) = rows.iter().find(|b| {
            !b.reuse
                && b.workload == "pairs"
                && b.queue == r.queue
                && b.config == r.config
                && b.threads == r.threads
        }) {
            let speedup = r.mops_per_sec / b.mops_per_sec;
            let _ = write!(
                reuse_cmps,
                "{}    {{\"queue\": \"{}\", \"config\": \"{}\", \"threads\": {}, \
                 \"reuse_over_alloc_speedup\": {:.4}}}",
                if reuse_cmps.is_empty() { "" } else { ",\n" },
                r.queue,
                r.config,
                r.threads,
                speedup
            );
            println!(
                "pairs speedup reuse/alloc {} {} t={}: {:.3}x",
                r.queue, r.config, r.threads, speedup
            );
        }
    }

    // Headline comparison for this PR: each fast cell against its
    // slow-path-only base (same memory management, opt_both, reuse).
    let mut fast_cmps = String::new();
    let mut log_sum = 0.0f64;
    let mut n_cmps = 0usize;
    for (fast, _) in Variant::FAST_ABLATION {
        let (fast_name, base_name) = match fast {
            Variant::WfFast => ("wf-fast", "wf-epoch"),
            _ => ("wf-fast-hp", "wf-hp"),
        };
        for &threads in &thread_counts {
            for wl in ["pairs", "fifty_fifty"] {
                let f = rows
                    .iter()
                    .find(|r| r.queue == fast_name && r.workload == wl && r.threads == threads)
                    .expect("fast row");
                let b = rows
                    .iter()
                    .find(|r| {
                        r.queue == base_name
                            && r.config == "opt_both"
                            && r.reuse
                            && r.workload == wl
                            && r.threads == threads
                    })
                    .expect("base row");
                let speedup = f.mops_per_sec / b.mops_per_sec;
                log_sum += speedup.ln();
                n_cmps += 1;
                let fp = f.fast.as_ref().expect("fast row has stats");
                let _ = write!(
                    fast_cmps,
                    "{}    {{\"fast\": \"{}\", \"base\": \"{}\", \"workload\": \"{}\", \
                     \"threads\": {}, \"fast_over_base_speedup\": {:.4}, \
                     \"fallback_rate\": {:.6}}}",
                    if fast_cmps.is_empty() { "" } else { ",\n" },
                    fast_name,
                    base_name,
                    wl,
                    threads,
                    speedup,
                    fp.fallback_rate()
                );
                println!(
                    "fast/base {} vs {} {} t={}: {:.3}x (fallback rate {:.4})",
                    fast_name,
                    base_name,
                    wl,
                    threads,
                    speedup,
                    fp.fallback_rate()
                );
            }
        }
    }
    let geomean = (log_sum / n_cmps as f64).exp();
    println!("fast-over-base geomean across {n_cmps} cells: {geomean:.4}x");

    let mut json = String::new();
    json.push_str("{\n  \"pr\": 4,\n");
    let _ = writeln!(json, "  \"iters_per_thread\": {iters},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"cores\": {cores},");
    json.push_str("  \"benches\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let fast_fields = match &r.fast {
            Some(fp) => format!(
                ", \"fallback_rate\": {:.6}, \"fast_completions\": {}, \
                 \"fast_exhaustions\": {}, \"fast_starvation_demotions\": {}, \
                 \"slow_ops\": {}",
                fp.fallback_rate(),
                fp.fast_completions,
                fp.fast_exhaustions,
                fp.fast_starvation_demotions,
                fp.slow_ops
            ),
            None => String::new(),
        };
        let _ = writeln!(
            json,
            "    {{\"queue\": \"{}\", \"config\": \"{}\", \"reuse\": {}, \
             \"workload\": \"{}\", \"threads\": {}, \"oversubscribed\": {}, \
             \"median_secs\": {:.6}, \"mops_per_sec\": {:.4}, \
             \"allocs_per_op\": {:.6}{}}}{}",
            r.queue,
            r.config,
            r.reuse,
            r.workload,
            r.threads,
            r.oversubscribed,
            r.median_secs,
            r.mops_per_sec,
            r.allocs_per_op,
            fast_fields,
            if i + 1 == rows.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"pairs_reuse_vs_alloc\": [\n");
    json.push_str(&reuse_cmps);
    json.push_str("\n  ],\n  \"fast_vs_base\": [\n");
    json.push_str(&fast_cmps);
    json.push_str("\n  ],\n");
    let _ = writeln!(json, "  \"fast_vs_base_geomean\": {geomean:.4}");
    json.push_str("}\n");

    std::fs::write(&out, json).expect("write JSON report");
    println!("-> {out}");
}

#[allow(clippy::too_many_arguments)]
fn finish_row(
    queue: &'static str,
    config: &'static str,
    reuse: bool,
    wl: &'static str,
    threads: usize,
    iters: usize,
    cores: usize,
    mut durs: Vec<Duration>,
    mut allocs: Vec<usize>,
    fast: Option<FastPathStats>,
) -> Row {
    let med = median(&mut durs);
    // Pairs = 2 ops per iteration; 50-50 = 1.
    let ops = (threads * iters * if wl == "pairs" { 2 } else { 1 }) as f64;
    allocs.sort();
    let med_allocs = allocs[allocs.len() / 2] as f64;
    let row = Row {
        queue,
        config,
        reuse,
        workload: wl,
        threads,
        median_secs: med.as_secs_f64(),
        mops_per_sec: ops / med.as_secs_f64() / 1e6,
        allocs_per_op: med_allocs / ops,
        oversubscribed: threads > cores,
        fast,
    };
    println!(
        "{:10} {:8} reuse={:5} {:11} t={}{}: {:>8.3} Mops/s, {:.4} allocs/op{}",
        row.queue,
        row.config,
        row.reuse,
        row.workload,
        row.threads,
        if row.oversubscribed { " (oversub)" } else { "" },
        row.mops_per_sec,
        row.allocs_per_op,
        match &row.fast {
            Some(fp) => format!(", fallback rate {:.4}", fp.fallback_rate()),
            None => String::new(),
        }
    );
    row
}
