//! Figure 10: live-space overhead of the wait-free queues relative to
//! the lock-free one, as a function of the initial queue size.
//!
//! The paper pre-fills queues with 1..10^7 elements (decade steps),
//! runs the pairs benchmark with 8 threads while sampling the live
//! heap, and plots `WF / LF`. Small queues show a ratio near 1 (the
//! heap is dominated by non-queue objects); large queues converge to
//! ~1.5× because every wait-free node carries the extra
//! `enqTid`/`deqTid` fields.
//!
//! This binary installs the `alloc-track` counting allocator — the
//! stand-in for the JVM's `-verbose:gc` live-set reports.

use std::path::Path;

use harness::args::{Args, BenchArgs};
use harness::report::{render_table, write_csv, Series};
use harness::space::{analytic, measure_live};
use harness::Variant;
use kp_queue::WfQueue;
use ms_queue::MsQueue;

#[global_allocator]
static ALLOC: alloc_track::TrackingAlloc = alloc_track::TrackingAlloc;

fn main() {
    let args = Args::from_env();
    let bench = BenchArgs::parse(&args);
    // The paper sweeps to 10^7; default to 10^6 so the default run fits
    // small machines, with --max-size restoring paper scale.
    let max_size: usize = args.get_or("max-size", 1_000_000);
    let threads: usize = args.get_or("threads", 8);
    let iters = bench.iters.min(20_000);
    let samples: usize = args.get_or("samples", 9); // paper: nine GC samples

    println!(
        "Figure 10: space overhead | threads = {threads}, iters = {iters}, samples/run = {samples}"
    );
    println!(
        "analytic node sizes: LF = {} B, WF = {} B, asymptotic ratio = {:.3}",
        analytic::lf_node_bytes(),
        analytic::wf_node_bytes(),
        analytic::asymptotic_ratio()
    );

    let mut sizes = Vec::new();
    let mut s = 1usize;
    while s <= max_size {
        sizes.push(s);
        s *= 10;
    }

    let mut ratio_base = Series::new("base WF / LF");
    let mut ratio_opt = Series::new("opt WF (1+2) / LF");
    let mut abs_lf = Series::new("LF bytes");
    let mut abs_base = Series::new("base WF bytes");
    let mut abs_opt = Series::new("opt WF (1+2) bytes");

    for &size in &sizes {
        let lf = measure_live(MsQueue::<u64>::new, size, threads, iters, samples);
        let base_cfg = Variant::WfBase.wf_config().unwrap();
        let opt_cfg = Variant::WfOptBoth.wf_config().unwrap();
        let base = measure_live(
            || WfQueue::<u64>::with_config(threads + 1, base_cfg),
            size,
            threads,
            iters,
            samples,
        );
        let opt = measure_live(
            || WfQueue::<u64>::with_config(threads + 1, opt_cfg),
            size,
            threads,
            iters,
            samples,
        );
        let lf_bytes = lf.live_bytes.max(1.0);
        ratio_base.push(size, base.live_bytes / lf_bytes);
        ratio_opt.push(size, opt.live_bytes / lf_bytes);
        abs_lf.push(size, lf.live_bytes);
        abs_base.push(size, base.live_bytes);
        abs_opt.push(size, opt.live_bytes);
    }

    let ratios = [ratio_base, ratio_opt];
    print!(
        "{}",
        render_table("Fig 10 — live space ratio vs initial size", "size", "ratio", &ratios)
    );
    let absolutes = [abs_lf, abs_base, abs_opt];
    print!(
        "{}",
        render_table("Fig 10 (aux) — live bytes", "size", "bytes", &absolutes)
    );

    let path = Path::new(&bench.out_dir).join("fig10.csv");
    write_csv(&path, "size", &ratios).expect("write CSV");
    let path_abs = Path::new(&bench.out_dir).join("fig10_bytes.csv");
    write_csv(&path_abs, "size", &absolutes).expect("write CSV");
    println!("-> {}\n-> {}", path.display(), path_abs.display());
}
