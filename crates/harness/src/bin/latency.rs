//! Extension experiment: per-operation latency tails.
//!
//! The paper motivates wait-freedom with bounded completion time per
//! operation (real-time systems, SLAs, heterogeneous threads) but its
//! evaluation only reports total completion time. This binary measures
//! what the guarantee buys: the tail of the per-operation latency
//! distribution under oversubscription, where preempted lock-free
//! threads can stall behind the scheduler while wait-free operations
//! get finished by their helpers.

use std::path::Path;

use harness::args::{Args, BenchArgs};
use harness::latency::profile_pairs;
use harness::report::{render_table, write_csv, Series};
use harness::{SchedPolicy, Variant};
use kp_queue::{WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};

fn main() {
    let args = Args::from_env();
    let bench = BenchArgs::parse(&args);
    let sched = args
        .get("sched")
        .map(|s| {
            SchedPolicy::parse(s).unwrap_or_else(|| {
                harness::args::bad_value_exit("sched", s, "expected pinned|unpinned|yielding")
            })
        })
        .unwrap_or(SchedPolicy::Yielding);
    let threads: usize = args.get_or("threads", 2 * harness::sched::num_cores().max(4));
    let iters = bench.iters;

    println!(
        "Latency tails (pairs workload) | threads = {threads}, iters/thread = {iters}, sched = {sched}"
    );

    let variants = [
        Variant::Lf,
        Variant::LfHp,
        Variant::WfBase,
        Variant::WfOptBoth,
        Variant::WfHp,
        Variant::Mutex,
    ];
    let mut p50 = Series::new("p50");
    let mut p99 = Series::new("p99");
    let mut p999 = Series::new("p99.9");
    let mut p9999 = Series::new("p99.99");
    let mut maxs = Series::new("max");

    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10} {:>12}  [ns]",
        "variant", "p50", "p99", "p99.9", "p99.99", "max"
    );
    for (idx, v) in variants.iter().enumerate() {
        let mut profile = match v {
            Variant::Lf => profile_pairs(&MsQueue::new(), threads, iters, sched),
            Variant::LfHp => profile_pairs(&MsQueueHp::new(), threads, iters, sched),
            Variant::Mutex => profile_pairs(&MutexQueue::new(), threads, iters, sched),
            Variant::WfHp => {
                let q: WfQueueHp<u64> =
                    WfQueueHp::with_config(threads, kp_queue::Config::opt_both());
                profile_pairs(&q, threads, iters, sched)
            }
            wf => {
                let q: WfQueue<u64> =
                    WfQueue::with_config(threads, wf.wf_config().expect("wf variant"));
                profile_pairs(&q, threads, iters, sched)
            }
        };
        let q = profile.quantiles();
        println!(
            "{:>14} {:>10} {:>10} {:>10} {:>10} {:>12}",
            v.label(),
            q.p50,
            q.p99,
            q.p999,
            q.p9999,
            q.max
        );
        p50.push(idx, q.p50 as f64);
        p99.push(idx, q.p99 as f64);
        p999.push(idx, q.p999 as f64);
        p9999.push(idx, q.p9999 as f64);
        maxs.push(idx, q.max as f64);
    }
    println!("variant indices: {:?}", variants.map(|v| v.label()));

    let series = [p50, p99, p999, p9999, maxs];
    let path = Path::new(&bench.out_dir).join(format!("latency_{sched}.csv"));
    write_csv(&path, "variant_index", &series).expect("write CSV");
    print!(
        "{}",
        render_table("Latency quantiles (ns) by variant index", "variant", "ns", &series)
    );
    println!("-> {}", path.display());
}
