//! Figure 9: the optimization ablation on the pairs benchmark.
//!
//! Series {base WF, opt WF (1+2), opt WF (1), opt WF (2)}. The paper
//! shows this for the CentOS and RedHat configurations and reports the
//! gain comes mainly from optimization 1 (helping one thread per
//! operation); optimization 2's contribution is minor but grows with
//! the thread count.

use std::path::Path;

use harness::args::{Args, BenchArgs};
use harness::figures::throughput_sweep;
use harness::report::{render_table, write_csv};
use harness::{SchedPolicy, Variant};

fn main() {
    let args = Args::from_env();
    let bench = BenchArgs::parse(&args);
    // Paper sub-figures: (a) CentOS ≈ yielding, (b) RedHat ≈ pinned.
    let scheds: Vec<SchedPolicy> = match args.get("sched") {
        Some(s) => vec![SchedPolicy::parse(s).unwrap_or_else(|| {
            harness::args::bad_value_exit("sched", s, "expected pinned|unpinned|yielding")
        })],
        None => vec![SchedPolicy::Yielding, SchedPolicy::Pinned],
    };

    println!(
        "Figure 9: optimization impact (pairs) | iters/thread = {}, reps = {}, cores = {}",
        bench.iters,
        bench.reps,
        harness::sched::num_cores()
    );
    for sched in scheds {
        let series = throughput_sweep(&Variant::FIG9, bench.max_threads, bench.reps, |v, t| {
            v.run_pairs(t, bench.iters, sched)
        });
        let title = format!(
            "Fig 9 — optimization ablation, sched = {sched} (paper analog: {})",
            sched.paper_analog()
        );
        print!("{}", render_table(&title, "threads", "sec", &series));
        let path = Path::new(&bench.out_dir).join(format!("fig9_{sched}.csv"));
        write_csv(&path, "threads", &series).expect("write CSV");
        println!("-> {}\n", path.display());
    }
}
