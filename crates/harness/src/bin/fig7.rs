//! Figure 7: the **enqueue-dequeue pairs** benchmark.
//!
//! Total completion time vs. number of threads (1..=16), series
//! {LF, base WF, opt WF (1+2)}, one sub-figure per scheduler
//! configuration (standing in for the paper's three OS configurations).
//!
//! ```text
//! cargo run -p harness --release --bin fig7 -- \
//!     --iters 1000000 --reps 10            # paper scale
//! cargo run -p harness --release --bin fig7 -- --sched yielding
//! ```

use std::path::Path;

use harness::args::{Args, BenchArgs};
use harness::figures::throughput_sweep;
use harness::report::{render_table, write_csv};
use harness::{SchedPolicy, Variant};

fn main() {
    let args = Args::from_env();
    let bench = BenchArgs::parse(&args);
    let scheds: Vec<SchedPolicy> = match args.get("sched") {
        Some(s) => vec![SchedPolicy::parse(s).unwrap_or_else(|| {
            harness::args::bad_value_exit("sched", s, "expected pinned|unpinned|yielding")
        })],
        None => SchedPolicy::ALL.to_vec(),
    };

    println!(
        "Figure 7: enqueue-dequeue pairs | iters/thread = {}, reps = {}, cores = {}",
        bench.iters,
        bench.reps,
        harness::sched::num_cores()
    );
    for sched in scheds {
        let series = throughput_sweep(&Variant::FIG7, bench.max_threads, bench.reps, |v, t| {
            v.run_pairs(t, bench.iters, sched)
        });
        let title = format!(
            "Fig 7 — pairs, sched = {sched} (paper analog: {})",
            sched.paper_analog()
        );
        print!("{}", render_table(&title, "threads", "sec", &series));
        let path = Path::new(&bench.out_dir).join(format!("fig7_{sched}.csv"));
        write_csv(&path, "threads", &series).expect("write CSV");
        println!("-> {}\n", path.display());
    }
}
