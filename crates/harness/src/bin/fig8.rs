//! Figure 8: the **50% enqueues** benchmark.
//!
//! The queue is initialized with 1000 elements; each thread performs
//! `iters` operations, each chosen uniformly at random between enqueue
//! and dequeue. Series and sweep as in Figure 7. The paper observes the
//! same relative behaviour as Figure 7 at roughly half the completion
//! time (half the operations per iteration).

use std::path::Path;

use harness::args::{Args, BenchArgs};
use harness::figures::throughput_sweep;
use harness::report::{render_table, write_csv};
use harness::{SchedPolicy, Variant};

/// The paper's initial queue size for this benchmark.
const PREFILL: usize = 1000;

fn main() {
    let args = Args::from_env();
    let bench = BenchArgs::parse(&args);
    let prefill = args.get_or("prefill", PREFILL);
    let scheds: Vec<SchedPolicy> = match args.get("sched") {
        Some(s) => vec![SchedPolicy::parse(s).unwrap_or_else(|| {
            harness::args::bad_value_exit("sched", s, "expected pinned|unpinned|yielding")
        })],
        None => SchedPolicy::ALL.to_vec(),
    };

    println!(
        "Figure 8: 50% enqueues | iters/thread = {}, prefill = {}, reps = {}, cores = {}",
        bench.iters,
        prefill,
        bench.reps,
        harness::sched::num_cores()
    );
    for sched in scheds {
        let series = throughput_sweep(&Variant::FIG7, bench.max_threads, bench.reps, |v, t| {
            v.run_fifty_fifty(t, bench.iters, prefill, sched)
        });
        let title = format!(
            "Fig 8 — 50% enqueues, sched = {sched} (paper analog: {})",
            sched.paper_analog()
        );
        print!("{}", render_table(&title, "threads", "sec", &series));
        let path = Path::new(&bench.out_dir).join(format!("fig8_{sched}.csv"));
        write_csv(&path, "threads", &series).expect("write CSV");
        println!("-> {}\n", path.display());
    }
}
