//! Live-space measurement for Figure 10.
//!
//! The paper pre-fills each queue with `size` elements, runs the pairs
//! workload with 8 threads, and samples the live heap via the JVM's GC
//! log; the reported number is the ratio of the wait-free queues' live
//! set to the lock-free queue's. Here the `fig10` binary installs the
//! `alloc-track` counting allocator and this module samples it around
//! the same protocol.


use queue_traits::{ConcurrentQueue, QueueHandle};

use crate::sched::SchedPolicy;
use crate::workload;

/// Drives the epoch collector until deferred destructions drain — the
/// analog of the paper's "periodically invoked GC". Each `pin().flush()`
/// migrates this thread's deferred garbage to the global queue and
/// attempts collection; repeating lets the global epoch advance far
/// enough to free everything unreachable.
pub fn drain_deferred() {
    for _ in 0..64 {
        crossbeam_epoch::pin().flush();
    }
}

/// Result of one live-space measurement.
#[derive(Debug, Clone, Copy)]
pub struct SpaceSample {
    /// Initial queue size (elements).
    pub size: usize,
    /// Live bytes attributable to the queue while the workload ran
    /// (average of the periodic samples, minus the pre-creation
    /// baseline).
    pub live_bytes: f64,
}

/// Measures the live heap occupied by `queue` pre-filled with `size`
/// elements while `threads` workers run `iters` pairs iterations.
///
/// Sampling protocol (paper §4, Figure 10): a sampler thread takes
/// `samples` readings of the live-byte counter spread over the run
/// (standing in for the periodically forced GC reports); the result
/// averages those readings relative to the baseline captured before the
/// queue was created.
///
/// Requires the `alloc-track` allocator to be installed in the calling
/// binary; with the default allocator every reading is zero.
pub fn measure_live<Q: ConcurrentQueue<u64>>(
    make: impl FnOnce() -> Q,
    size: usize,
    threads: usize,
    iters: usize,
    samples: usize,
) -> SpaceSample {
    // Clean slate: collect garbage deferred by earlier measurements so
    // it neither inflates the baseline nor deflates readings when freed
    // mid-run.
    drain_deferred();
    let baseline = alloc_track::live_bytes();
    let queue = make();
    {
        let mut h = queue.register().expect("prefill handle");
        for i in 0..size {
            h.enqueue(workload::encode(0xFFF, i));
        }
    }
    // The paper samples the live set right after a forced GC, i.e. with
    // transient garbage removed. The epoch-collector analog: run the
    // workload in `samples` rounds and read the counter at the quiescent
    // point after each round, once deferred destructions have drained
    // (with all workers parked, repeated pin/flush cycles collect
    // everything unreachable). Each reading therefore covers exactly the
    // resident structure: nodes, descriptors, state array.
    let mut readings = Vec::with_capacity(samples);
    let per_round = (iters / samples.max(1)).max(1);
    for _ in 0..samples.max(1) {
        workload::run_pairs(&queue, threads, per_round, SchedPolicy::Unpinned);
        drain_deferred();
        readings.push(alloc_track::live_bytes().saturating_sub(baseline) as f64);
    }
    let live = readings.iter().sum::<f64>() / readings.len() as f64;
    drop(queue);
    drain_deferred();
    SpaceSample {
        size,
        live_bytes: live,
    }
}

/// Analytic per-node sizes, used to cross-check the measurement and to
/// explain the asymptotic ratio (the paper attributes its ~1.5× to the
/// extra `deqTid`/`enqTid` fields per node).
pub mod analytic {
    /// Bytes per resident element in the lock-free queue (node payload +
    /// next pointer + allocator rounding is platform-dependent; this is
    /// the struct size).
    pub fn lf_node_bytes() -> usize {
        // value: Option<u64> (16) + next: Atomic (8)
        24
    }

    /// Bytes per resident element in the wait-free queue.
    pub fn wf_node_bytes() -> usize {
        // value: Option<u64> (16) + next (8) + enq_tid (8) + deq_tid (8)
        40
    }

    /// The asymptotic WF/LF live-space ratio implied by the node
    /// layouts.
    pub fn asymptotic_ratio() -> f64 {
        wf_node_bytes() as f64 / lf_node_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_queue::MsQueue;

    #[test]
    fn measure_runs_without_tracking_allocator() {
        // Without alloc-track installed the reading is 0, but the
        // protocol (prefill, workload, sampling) must still work.
        let s = measure_live(MsQueue::<u64>::new, 100, 2, 200, 3);
        assert_eq!(s.size, 100);
        assert!(s.live_bytes >= 0.0);
    }

    #[test]
    fn analytic_ratio_matches_paper_ballpark() {
        let r = analytic::asymptotic_ratio();
        // The paper measures ~1.5 for large queues.
        assert!(r > 1.2 && r < 2.2, "ratio {r}");
    }
}
