//! Table and CSV output, shaped like the paper's figures: one row per
//! thread count (the x axis), one column per series.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One line/series of a figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label ("LF", "base WF", …).
    pub label: String,
    /// `(x, y)` points, e.g. `(threads, seconds)`.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: usize, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at `x`, if measured.
    pub fn at(&self, x: usize) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }
}

/// Renders an aligned text table: first column `x_label`, one column
/// per series.
pub fn render_table(title: &str, x_label: &str, unit: &str, series: &[Series]) -> String {
    let mut xs: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();

    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let width = series
        .iter()
        .map(|s| s.label.len().max(12))
        .max()
        .unwrap_or(12);
    let _ = write!(out, "{x_label:>10}");
    for s in series {
        let _ = write!(out, "  {:>width$}", s.label);
    }
    let _ = writeln!(out, "   [{unit}]");
    for x in xs {
        let _ = write!(out, "{x:>10}");
        for s in series {
            match s.at(x) {
                Some(y) => {
                    let _ = write!(out, "  {y:>width$.4}");
                }
                None => {
                    let _ = write!(out, "  {:>width$}", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Writes the series as a CSV (`x, <label>, <label>, …`).
pub fn write_csv(path: &Path, x_label: &str, series: &[Series]) -> io::Result<()> {
    if let Some(dir) = path.parent() {
        fs::create_dir_all(dir)?;
    }
    let mut xs: Vec<usize> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_unstable();
    xs.dedup();

    let mut out = String::new();
    out.push_str(x_label);
    for s in series {
        out.push(',');
        // Minimal CSV quoting: our labels contain no quotes.
        if s.label.contains(',') || s.label.contains(' ') {
            let _ = write!(out, "\"{}\"", s.label);
        } else {
            out.push_str(&s.label);
        }
    }
    out.push('\n');
    for x in xs {
        let _ = write!(out, "{x}");
        for s in series {
            match s.at(x) {
                Some(y) => {
                    let _ = write!(out, ",{y}");
                }
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        let mut a = Series::new("LF");
        a.push(1, 1.5);
        a.push(2, 3.25);
        let mut b = Series::new("base WF");
        b.push(1, 4.0);
        b.push(2, 8.5);
        vec![a, b]
    }

    #[test]
    fn table_contains_all_cells() {
        let t = render_table("Fig 7", "threads", "sec", &sample());
        assert!(t.contains("Fig 7"));
        assert!(t.contains("LF"));
        assert!(t.contains("base WF"));
        assert!(t.contains("3.25"));
        assert!(t.contains("8.5"));
    }

    #[test]
    fn missing_points_render_dash() {
        let mut a = Series::new("A");
        a.push(1, 1.0);
        let mut b = Series::new("B");
        b.push(2, 2.0);
        let t = render_table("t", "x", "u", &[a, b]);
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("wfq-report-test");
        let path = dir.join("fig.csv");
        write_csv(&path, "threads", &sample()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "threads,LF,\"base WF\"");
        assert_eq!(lines.next().unwrap(), "1,1.5,4");
        assert_eq!(lines.next().unwrap(), "2,3.25,8.5");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_at() {
        let s = &sample()[0];
        assert_eq!(s.at(1), Some(1.5));
        assert_eq!(s.at(99), None);
    }
}
