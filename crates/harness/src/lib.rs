//! Benchmark harness reproducing the paper's evaluation (§4).
//!
//! The paper measures total completion time of two benchmarks over
//! 1–16 threads, comparing Michael & Scott's lock-free queue (**LF**)
//! against the wait-free algorithm's variants:
//!
//! * **enqueue-dequeue pairs** — empty initial queue; each thread
//!   repeats `enqueue; dequeue` (Figure 7, and Figure 9 for the
//!   optimization ablation);
//! * **50% enqueues** — queue pre-filled with 1000 elements; each
//!   thread flips a fair coin per iteration (Figure 8);
//! * **space overhead** — live heap of the wait-free queues relative to
//!   the lock-free one as the initial queue size grows (Figure 10);
//!
//! plus this reproduction's extension experiment: per-operation latency
//! tails, the operational meaning of wait-freedom.
//!
//! The paper ran on three machine/OS configurations and found the
//! LF-vs-WF gap to be governed by scheduling behaviour. We substitute
//! three *scheduler configurations* on one host ([`SchedPolicy`]):
//! pinned threads, unpinned threads, and unpinned threads with frequent
//! voluntary yields (oversubscription-friendly). See DESIGN.md §3.
//!
//! Each figure has a binary (`fig7`, `fig8`, `fig9`, `fig10`,
//! `latency`) that prints the paper-shaped table and writes CSV files;
//! Criterion benches in the `bench` crate wrap the same runners at
//! reduced scale.

#![warn(missing_docs)]

pub mod args;
pub mod channel_load;
pub mod figures;
pub mod hist;
pub mod latency;
pub mod report;
pub mod sched;
pub mod space;
pub mod stats;
pub mod variants;
pub mod workload;

pub use sched::SchedPolicy;
pub use variants::Variant;
