//! A tiny `--key value` argument parser shared by the figure binaries
//! (no external CLI dependency needed for five flags).

use std::collections::HashMap;

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage hint) on a dangling `--key` or a token that
    /// does not start with `--`.
    pub fn from_env() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit token stream (testable).
    pub fn from_iter(tokens: impl IntoIterator<Item = String>) -> Self {
        let mut values = HashMap::new();
        let mut iter = tokens.into_iter();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {key:?}"));
            let value = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{stripped} needs a value"));
            values.insert(stripped.to_string(), value);
        }
        Args { values }
    }

    /// String value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed value of `key`, or `default`.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("bad value for --{key}: {v:?} ({e:?})")),
            None => default,
        }
    }
}

/// Standard knobs shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Maximum thread count swept (1..=max_threads). Paper: 16.
    pub max_threads: usize,
    /// Iterations per thread. Paper: 1,000,000.
    pub iters: usize,
    /// Repetitions per data point. Paper: 10.
    pub reps: usize,
    /// Output directory for CSV files.
    pub out_dir: String,
}

impl BenchArgs {
    /// Parses the standard knobs with reproduction-scale defaults
    /// (paper-scale runs: `--iters 1000000 --reps 10`).
    pub fn parse(args: &Args) -> Self {
        BenchArgs {
            max_threads: args.get_or("max-threads", 16),
            iters: args.get_or("iters", 20_000),
            reps: args.get_or("reps", 3),
            out_dir: args.get("out-dir").unwrap_or("results").to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::from_iter(toks(&["--iters", "500", "--out-dir", "/tmp/x"]));
        assert_eq!(a.get_or("iters", 0usize), 500);
        assert_eq!(a.get("out-dir"), Some("/tmp/x"));
        assert_eq!(a.get_or("reps", 7usize), 7);
    }

    #[test]
    fn bench_args_defaults() {
        let b = BenchArgs::parse(&Args::from_iter(toks(&[])));
        assert_eq!(b.max_threads, 16);
        assert_eq!(b.reps, 3);
        assert_eq!(b.out_dir, "results");
    }

    #[test]
    #[should_panic]
    fn dangling_flag_panics() {
        let _ = Args::from_iter(toks(&["--iters"]));
    }

    #[test]
    #[should_panic]
    fn non_flag_panics() {
        let _ = Args::from_iter(toks(&["iters", "5"]));
    }
}
