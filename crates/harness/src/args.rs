//! A tiny `--key value` argument parser shared by the figure binaries
//! (no external CLI dependency needed for five flags).
//!
//! Malformed command lines are user errors, not bugs: the binaries
//! report them on stderr and exit with status 2 rather than panicking
//! with a backtrace.

use std::collections::HashMap;
use std::fmt;

/// A malformed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A token that does not start with `--` where a flag was expected.
    NotAFlag(String),
    /// A trailing `--key` with no value after it.
    MissingValue(String),
    /// A value that failed to parse as the expected type.
    BadValue {
        /// The flag (without `--`).
        key: String,
        /// The offending value as given.
        value: String,
        /// The parse error, as text.
        message: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::NotAFlag(token) => {
                write!(f, "expected a --flag, got {token:?}")
            }
            ArgsError::MissingValue(key) => {
                write!(f, "flag --{key} needs a value")
            }
            ArgsError::BadValue { key, value, message } => {
                write!(f, "bad value for --{key}: {value:?} ({message})")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// Prints `err` plus a usage hint to stderr and exits with status 2
/// (the conventional exit code for command-line misuse).
fn usage_exit(err: &ArgsError) -> ! {
    eprintln!("error: {err}");
    eprintln!("usage: <binary> [--flag value]...  (all flags take a value)");
    std::process::exit(2);
}

/// Reports a bad value for `--key` on stderr and exits with status 2 —
/// for flags whose parsing lives outside [`Args`] (enum-like flags such
/// as `--sched`). Keeps every malformed command line on the same
/// graceful exit-2 path instead of a panic backtrace.
pub fn bad_value_exit(key: &str, value: &str, expected: &str) -> ! {
    usage_exit(&ArgsError::BadValue {
        key: key.to_string(),
        value: value.to_string(),
        message: expected.to_string(),
    })
}

/// Parsed command-line options.
#[derive(Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs from `std::env::args`.
    ///
    /// On a malformed command line, prints the error and a usage hint to
    /// stderr and exits with status 2.
    pub fn from_env() -> Self {
        Self::from_iter(std::env::args().skip(1)).unwrap_or_else(|e| usage_exit(&e))
    }

    /// Parses from an explicit token stream (testable).
    // Not `FromIterator`: parsing is fallible, the trait is not.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(tokens: impl IntoIterator<Item = String>) -> Result<Self, ArgsError> {
        let mut values = HashMap::new();
        let mut iter = tokens.into_iter();
        while let Some(key) = iter.next() {
            let stripped = key
                .strip_prefix("--")
                .ok_or_else(|| ArgsError::NotAFlag(key.clone()))?;
            let value = iter
                .next()
                .ok_or_else(|| ArgsError::MissingValue(stripped.to_string()))?;
            values.insert(stripped.to_string(), value);
        }
        Ok(Args { values })
    }

    /// String value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// Parsed value of `key`, or `default` when absent; `Err` when
    /// present but unparsable.
    pub fn try_get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgsError>
    where
        T::Err: fmt::Display,
    {
        match self.values.get(key) {
            Some(v) => v.parse().map_err(|e: T::Err| ArgsError::BadValue {
                key: key.to_string(),
                value: v.clone(),
                message: e.to_string(),
            }),
            None => Ok(default),
        }
    }

    /// Parsed value of `key`, or `default`. An unparsable value is
    /// reported on stderr and exits with status 2 (binary entry-point
    /// convenience around [`try_get_or`](Self::try_get_or)).
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: fmt::Display,
    {
        self.try_get_or(key, default).unwrap_or_else(|e| usage_exit(&e))
    }
}

/// Standard knobs shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Maximum thread count swept (1..=max_threads). Paper: 16.
    pub max_threads: usize,
    /// Iterations per thread. Paper: 1,000,000.
    pub iters: usize,
    /// Repetitions per data point. Paper: 10.
    pub reps: usize,
    /// Output directory for CSV files.
    pub out_dir: String,
}

impl BenchArgs {
    /// Parses the standard knobs with reproduction-scale defaults
    /// (paper-scale runs: `--iters 1000000 --reps 10`).
    pub fn parse(args: &Args) -> Self {
        BenchArgs {
            max_threads: args.get_or("max-threads", 16),
            iters: args.get_or("iters", 20_000),
            reps: args.get_or("reps", 3),
            out_dir: args.get("out-dir").unwrap_or("results").to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::from_iter(toks(&["--iters", "500", "--out-dir", "/tmp/x"])).unwrap();
        assert_eq!(a.get_or("iters", 0usize), 500);
        assert_eq!(a.get("out-dir"), Some("/tmp/x"));
        assert_eq!(a.get_or("reps", 7usize), 7);
    }

    #[test]
    fn bench_args_defaults() {
        let b = BenchArgs::parse(&Args::from_iter(toks(&[])).unwrap());
        assert_eq!(b.max_threads, 16);
        assert_eq!(b.reps, 3);
        assert_eq!(b.out_dir, "results");
    }

    #[test]
    fn dangling_flag_is_an_error() {
        match Args::from_iter(toks(&["--iters"])) {
            Err(ArgsError::MissingValue(key)) => assert_eq!(key, "iters"),
            other => panic!("expected MissingValue, got {other:?}"),
        }
    }

    #[test]
    fn non_flag_is_an_error() {
        match Args::from_iter(toks(&["iters", "5"])) {
            Err(ArgsError::NotAFlag(tok)) => assert_eq!(tok, "iters"),
            other => panic!("expected NotAFlag, got {other:?}"),
        }
    }

    #[test]
    fn bad_value_is_an_error() {
        let a = Args::from_iter(toks(&["--iters", "many"])).unwrap();
        match a.try_get_or("iters", 0usize) {
            Err(ArgsError::BadValue { key, value, .. }) => {
                assert_eq!(key, "iters");
                assert_eq!(value, "many");
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn errors_display_cleanly() {
        assert_eq!(
            ArgsError::MissingValue("iters".into()).to_string(),
            "flag --iters needs a value"
        );
        assert!(ArgsError::NotAFlag("x".into()).to_string().contains("--flag"));
    }
}
