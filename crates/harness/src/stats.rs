//! Small statistics helpers (the paper reports the average of ten runs
//! and notes negligible standard deviation).

/// Mean and sample standard deviation of a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two samples).
    pub stddev: f64,
    /// Number of samples.
    pub n: usize,
}

/// Summarizes `samples`.
pub fn summarize(samples: &[f64]) -> Summary {
    let n = samples.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            stddev: 0.0,
            n: 0,
        };
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let stddev = if n >= 2 {
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    } else {
        0.0
    };
    Summary { mean, stddev, n }
}

/// Percentile (nearest-rank) of a sorted slice; `p` in `[0, 100]`.
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constants() {
        let s = summarize(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // sample stddev of 1..4 = sqrt(5/3)
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_and_single() {
        assert_eq!(summarize(&[]).n, 0);
        let s = summarize(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentiles() {
        let data: Vec<u64> = (0..=100).collect();
        assert_eq!(percentile_sorted(&data, 0.0), 0);
        assert_eq!(percentile_sorted(&data, 50.0), 50);
        assert_eq!(percentile_sorted(&data, 100.0), 100);
        assert_eq!(percentile_sorted(&[42], 99.0), 42);
    }
}
