//! The paper's two benchmark workloads (§4), generic over any queue
//! implementing [`ConcurrentQueue`].

use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use queue_traits::{ConcurrentQueue, FastPathStats, QueueHandle};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::sched::{SchedPolicy, YIELD_EVERY};

/// The **enqueue-dequeue pairs** benchmark (Figures 7 and 9): starting
/// from an empty queue, each of `threads` workers performs `iters`
/// iterations of `enqueue(v); dequeue()`. Returns the total completion
/// time (barrier release to last worker done).
pub fn run_pairs<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    iters: usize,
    sched: SchedPolicy,
) -> Duration {
    run_pairs_with_stats(queue, threads, iters, sched).0
}

/// [`run_pairs`] plus the merged per-handle [`FastPathStats`] (all zero
/// for queues without a fast path).
pub fn run_pairs_with_stats<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    iters: usize,
    sched: SchedPolicy,
) -> (Duration, FastPathStats) {
    run_workload(queue, threads, sched, move |h, worker, yields| {
        for i in 0..iters {
            h.enqueue(encode(worker, i));
            std::hint::black_box(h.dequeue());
            maybe_yield(yields, i);
        }
    })
}

/// The **50% enqueues** benchmark (Figure 8): the queue is pre-filled
/// with `prefill` elements (1000 in the paper); each worker performs
/// `iters` operations, each chosen uniformly at random between enqueue
/// and dequeue. Returns the total completion time.
pub fn run_fifty_fifty<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    iters: usize,
    prefill: usize,
    sched: SchedPolicy,
) -> Duration {
    run_fifty_fifty_with_stats(queue, threads, iters, prefill, sched).0
}

/// [`run_fifty_fifty`] plus the merged per-handle [`FastPathStats`].
pub fn run_fifty_fifty_with_stats<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    iters: usize,
    prefill: usize,
    sched: SchedPolicy,
) -> (Duration, FastPathStats) {
    {
        let mut h = queue.register().expect("prefill handle");
        for i in 0..prefill {
            h.enqueue(encode(usize::MAX & 0xFFFF, i));
        }
    }
    run_workload(queue, threads, sched, move |h, worker, yields| {
        let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ worker as u64);
        for i in 0..iters {
            if rng.gen::<bool>() {
                h.enqueue(encode(worker, i));
            } else {
                std::hint::black_box(h.dequeue());
            }
            maybe_yield(yields, i);
        }
    })
}

/// Tags a value with its producer so correctness checks can attribute
/// it: high 16 bits worker, low 48 bits sequence.
pub fn encode(worker: usize, seq: usize) -> u64 {
    ((worker as u64 & 0xFFFF) << 48) | (seq as u64 & 0xFFFF_FFFF_FFFF)
}

#[inline]
fn maybe_yield(yields: bool, i: usize) {
    if yields && i % YIELD_EVERY == YIELD_EVERY - 1 {
        std::thread::yield_now();
    }
}

/// Spawns `threads` workers, applies the scheduling policy, releases
/// them through a barrier, and times until all are done. Each worker's
/// fast-path counters (if its handle reports any) are merged into the
/// returned [`FastPathStats`] — the merge happens after the timed body,
/// off the measured path.
///
/// The workers stamp the clock themselves (first start to last end):
/// a main-thread timestamp taken after its own barrier release is
/// wrong on an oversubscribed host, where every worker can run to
/// completion before the main thread is rescheduled, shrinking the
/// measured window to nearly zero.
fn run_workload<Q, F>(
    queue: &Q,
    threads: usize,
    sched: SchedPolicy,
    body: F,
) -> (Duration, FastPathStats)
where
    Q: ConcurrentQueue<u64>,
    F: Fn(&mut Q::Handle<'_>, usize, bool) + Sync,
{
    assert!(threads > 0);
    let barrier = Barrier::new(threads);
    let body = &body;
    let merged = Mutex::new(FastPathStats::default());
    let span = Mutex::new(None::<(Instant, Instant)>);
    // `scope` joins every worker before returning.
    std::thread::scope(|s| {
        for worker in 0..threads {
            let barrier = &barrier;
            let merged = &merged;
            let span = &span;
            s.spawn(move || {
                sched.apply(worker);
                let mut h = queue.register().expect("worker registration");
                barrier.wait();
                let t0 = Instant::now();
                body(&mut h, worker, sched.yields());
                let t1 = Instant::now();
                if let Some(fp) = h.fast_path_stats() {
                    merged.lock().unwrap().merge(&fp);
                }
                let mut s = span.lock().unwrap();
                *s = Some(match *s {
                    None => (t0, t1),
                    Some((a, b)) => (a.min(t0), b.max(t1)),
                });
            });
        }
    });
    let (first, last) = span.into_inner().unwrap().expect("threads > 0");
    (last - first, merged.into_inner().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_queue::MsQueue;

    #[test]
    fn encode_separates_workers() {
        assert_ne!(encode(0, 5), encode(1, 5));
        assert_eq!(encode(3, 9) >> 48, 3);
        assert_eq!(encode(3, 9) & 0xFFFF_FFFF_FFFF, 9);
    }

    #[test]
    fn pairs_leaves_queue_empty() {
        let q = MsQueue::new();
        let d = run_pairs(&q, 3, 2_000, SchedPolicy::Unpinned);
        assert!(d > Duration::ZERO);
        assert!(q.is_empty(), "each worker dequeues what it enqueued");
    }

    #[test]
    fn fifty_fifty_conserves_elements() {
        use queue_traits::QueueHandle as _;
        let q = MsQueue::new();
        let _ = run_fifty_fifty(&q, 2, 2_000, 100, SchedPolicy::Unpinned);
        // Elements = prefill + (enqueues - successful dequeues); we only
        // sanity-check the queue is still functional and bounded.
        let mut h = q.register().unwrap();
        let mut drained = 0;
        while h.dequeue().is_some() {
            drained += 1;
        }
        assert!(drained <= 100 + 2 * 2_000);
    }

    #[test]
    fn yielding_policy_runs() {
        let q = MsQueue::new();
        let _ = run_pairs(&q, 2, 500, SchedPolicy::Yielding);
        assert!(q.is_empty());
    }

    #[test]
    fn pinned_policy_runs() {
        let q = MsQueue::new();
        let _ = run_pairs(&q, 2, 500, SchedPolicy::Pinned);
        assert!(q.is_empty());
    }
}
