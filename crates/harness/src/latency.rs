//! Per-operation latency measurement — the reproduction's extension
//! experiment.
//!
//! Wait-freedom is a *worst-case* guarantee: every operation completes
//! in a bounded number of steps even if the scheduler conspires against
//! the thread. Throughput plots (the paper's figures) cannot show this;
//! latency tails can. This module runs the pairs workload while
//! recording every operation's wall-clock latency into a log-scaled
//! histogram, then reports median and extreme percentiles per variant.

use std::sync::Barrier;
use std::time::Instant;

use queue_traits::{ConcurrentQueue, QueueHandle};

use crate::sched::SchedPolicy;
use crate::stats::percentile_sorted;

/// A latency distribution in nanoseconds, kept as raw samples (bounded
/// by the iteration count, so memory is predictable).
#[derive(Debug, Default, Clone)]
pub struct LatencyProfile {
    samples: Vec<u64>,
}

impl LatencyProfile {
    /// Merges another profile into this one.
    pub fn merge(&mut self, other: LatencyProfile) {
        self.samples.extend(other.samples);
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sorts and reports `(p50, p99, p99.9, p99.99, max)` in
    /// nanoseconds.
    pub fn quantiles(&mut self) -> Quantiles {
        assert!(!self.samples.is_empty(), "no latency samples");
        self.samples.sort_unstable();
        Quantiles {
            p50: percentile_sorted(&self.samples, 50.0),
            p99: percentile_sorted(&self.samples, 99.0),
            p999: percentile_sorted(&self.samples, 99.9),
            p9999: percentile_sorted(&self.samples, 99.99),
            max: *self.samples.last().unwrap(),
        }
    }
}

/// Latency quantiles in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// 99.99th percentile.
    pub p9999: u64,
    /// Worst observed operation.
    pub max: u64,
}

/// Runs the pairs workload on `queue` with per-operation timing.
/// Returns the merged profile over all workers (2 × `iters` × `threads`
/// samples: each enqueue and each dequeue).
pub fn profile_pairs<Q: ConcurrentQueue<u64>>(
    queue: &Q,
    threads: usize,
    iters: usize,
    sched: SchedPolicy,
) -> LatencyProfile {
    let barrier = Barrier::new(threads);
    let mut merged = LatencyProfile::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let barrier = &barrier;
                let queue = &queue;
                s.spawn(move || {
                    sched.apply(worker);
                    let mut h = queue.register().expect("register");
                    let mut profile = LatencyProfile {
                        samples: Vec::with_capacity(2 * iters),
                    };
                    barrier.wait();
                    for i in 0..iters {
                        let t0 = Instant::now();
                        h.enqueue(crate::workload::encode(worker, i));
                        profile.samples.push(t0.elapsed().as_nanos() as u64);
                        let t1 = Instant::now();
                        std::hint::black_box(h.dequeue());
                        profile.samples.push(t1.elapsed().as_nanos() as u64);
                        if sched.yields() && i % crate::sched::YIELD_EVERY == 0 {
                            std::thread::yield_now();
                        }
                    }
                    profile
                })
            })
            .collect();
        for h in handles {
            merged.merge(h.join().unwrap());
        }
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ms_queue::MsQueue;

    #[test]
    fn profile_counts_all_ops() {
        let q = MsQueue::new();
        let mut p = profile_pairs(&q, 2, 500, SchedPolicy::Unpinned);
        assert_eq!(p.len(), 2 * 2 * 500);
        let qs = p.quantiles();
        assert!(qs.p50 <= qs.p99);
        assert!(qs.p99 <= qs.p999);
        assert!(qs.p999 <= qs.p9999);
        assert!(qs.p9999 <= qs.max);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyProfile {
            samples: vec![1, 2],
        };
        let b = LatencyProfile {
            samples: vec![3],
        };
        a.merge(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic]
    fn quantiles_of_empty_panic() {
        LatencyProfile::default().quantiles();
    }
}
