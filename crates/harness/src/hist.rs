//! A fixed-footprint latency histogram with HdrHistogram-style
//! power-of-two bucketing: each octave of the value range is split into
//! `SUB` linear sub-buckets, giving a bounded relative error of
//! `1/SUB` (~3%) across the whole `u64` range with one flat array of
//! counters. `record` is a shift, a mask and an increment — no
//! allocation, no branching on data — so it can sit directly on the
//! latency-measurement hot path of an open-loop workload.

/// Sub-buckets per octave as a power of two; 2^5 = 32 sub-buckets
/// bounds the relative quantile error at ~3.1%.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Octaves above the linear range (`u64` has 64 bit positions; the
/// first `SUB_BITS + 1` of them fit inside the linear range).
const OCTAVES: usize = 64 - SUB_BITS as usize;
/// Total counters: the linear range `0..2*SUB` plus `SUB` per octave.
const BUCKETS: usize = 2 * SUB + (OCTAVES - 1) * SUB;

/// Fixed-size log-linear histogram of `u64` samples (nanoseconds, in
/// this workspace).
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    max: u64,
    sum: u128,
}

/// Maps a value to its bucket index.
///
/// Values below `2*SUB` map linearly (exact); a value with its most
/// significant bit at position `m >= SUB_BITS + 1` keeps its top
/// `SUB_BITS + 1` significant bits: octave `m - SUB_BITS` at `SUB`
/// buckets each, past the `2*SUB` linear ones.
#[inline]
fn index_of(v: u64) -> usize {
    if v < (2 * SUB) as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let octave = (msb - SUB_BITS) as usize; // >= 1
    let sub = ((v >> (msb - SUB_BITS)) as usize) & (SUB - 1);
    SUB + octave * SUB + sub
}

/// Upper edge of a bucket: the largest value mapping into it. Reported
/// quantiles use this edge, so they never understate a latency.
fn upper_edge(index: usize) -> u64 {
    if index < 2 * SUB {
        return index as u64;
    }
    let octave = (index - SUB) / SUB;
    let sub = (index - SUB) % SUB;
    let base = 1u64 << (octave + SUB_BITS as usize);
    let width = base >> SUB_BITS; // bucket width in this octave
    base + (sub as u64 + 1) * width - 1
}

impl LogHistogram {
    /// An empty histogram. The only allocation this type ever
    /// performs.
    pub fn new() -> LogHistogram {
        LogHistogram { counts: Box::new([0; BUCKETS]), total: 0, max: 0, sum: 0 }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[index_of(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        if v > self.max {
            self.max = v;
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact sum over exact count).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The `q`-quantile (`q` in `[0, 1]`), reported as the upper edge
    /// of the bucket holding the rank-`ceil(q * n)` sample — within
    /// ~3% above the true value, never below it. 0 on an empty
    /// histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_range_is_exact() {
        let mut h = LogHistogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.len(), 64);
        assert_eq!(h.quantile(0.0), 0);
        // Rank-32 sample is value 31; the linear range is exact.
        assert_eq!(h.quantile(0.5), 31);
        assert_eq!(h.quantile(1.0), 63);
    }

    #[test]
    fn index_is_monotone_and_in_bounds() {
        let mut last = 0;
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let i = index_of(v);
            assert!(i < BUCKETS, "index {i} out of bounds for {v}");
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            v = v * 3 + 1;
        }
        assert!(index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn upper_edge_brackets_its_bucket() {
        let mut v = 1u64;
        while v < u64::MAX / 5 {
            let i = index_of(v);
            let edge = upper_edge(i);
            assert!(edge >= v, "edge {edge} below sample {v}");
            // The edge itself still lands in the same bucket.
            assert_eq!(index_of(edge), i, "edge {edge} escapes bucket of {v}");
            v = v * 5 + 3;
        }
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = LogHistogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 50_000.0), (0.99, 99_000.0), (0.999, 99_900.0)] {
            let got = h.quantile(q) as f64;
            assert!(got >= exact, "quantile {q} understated: {got} < {exact}");
            assert!(got <= exact * 1.04, "quantile {q} overstated: {got} > {exact} * 1.04");
        }
    }

    #[test]
    fn merge_matches_union() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut u = LogHistogram::new();
        for v in 0..1000u64 {
            if v % 2 == 0 { a.record(v * 17) } else { b.record(v * 17) }
            u.record(v * 17);
        }
        a.merge(&b);
        assert_eq!(a.len(), u.len());
        assert_eq!(a.max(), u.max());
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), u.quantile(q));
        }
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [10u64, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 250_015.0).abs() < 1e-9);
    }
}
