//! Scheduler configurations — the reproduction's substitute for the
//! paper's three machine/OS configurations.
//!
//! The paper's central performance finding is that the LF-vs-WF gap is
//! "intimately related to the system configuration": scheduling policy
//! and thread placement decide which interleavings occur, and helping
//! pays off exactly when threads get preempted mid-operation. We expose
//! that axis directly instead of installing three operating systems.

use std::fmt;

/// How worker threads are placed and how often they yield.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Pin worker `t` to core `t mod ncores`. Stable placement,
    /// fewest migrations — the configuration friendliest to the
    /// lock-free queue (analogous to the paper's RedHat machine, where
    /// LF wins throughout).
    Pinned,
    /// Default OS placement. Migrations and preemptions occur at the
    /// scheduler's whim (analogous to the paper's Ubuntu machine).
    Unpinned,
    /// Default placement plus a voluntary `yield_now` every
    /// `YIELD_EVERY` operations, emulating aggressive time-slicing /
    /// oversubscription (analogous to the paper's CentOS machine, the
    /// one where the optimized wait-free queue overtakes LF once
    /// threads exceed cores).
    Yielding,
}

/// Operation period between voluntary yields under
/// [`SchedPolicy::Yielding`].
pub const YIELD_EVERY: usize = 64;

impl SchedPolicy {
    /// All configurations, in the order the figures print them.
    pub const ALL: [SchedPolicy; 3] = [
        SchedPolicy::Pinned,
        SchedPolicy::Unpinned,
        SchedPolicy::Yielding,
    ];

    /// Short name used in tables and CSV file names.
    pub fn label(&self) -> &'static str {
        match self {
            SchedPolicy::Pinned => "pinned",
            SchedPolicy::Unpinned => "unpinned",
            SchedPolicy::Yielding => "yielding",
        }
    }

    /// Which paper sub-figure this configuration stands in for.
    pub fn paper_analog(&self) -> &'static str {
        match self {
            SchedPolicy::Pinned => "RedHat-operated machine (b)",
            SchedPolicy::Unpinned => "Ubuntu-operated machine (c)",
            SchedPolicy::Yielding => "CentOS-operated machine (a)",
        }
    }

    /// Applies the placement part of the policy to the calling worker
    /// thread (`worker` = 0-based index). No-op for unpinned policies or
    /// when affinity syscalls are unavailable.
    pub fn apply(&self, worker: usize) {
        if let SchedPolicy::Pinned = self {
            pin_to_core(worker % num_cores());
        }
    }

    /// True if workers should interleave voluntary yields.
    pub fn yields(&self) -> bool {
        matches!(self, SchedPolicy::Yielding)
    }

    /// Parses a label as produced by [`label`](Self::label).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pinned" => Some(SchedPolicy::Pinned),
            "unpinned" => Some(SchedPolicy::Unpinned),
            "yielding" => Some(SchedPolicy::Yielding),
            _ => None,
        }
    }
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Number of online cores.
pub fn num_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Warns on stderr — once per process, however many cells trip it —
/// when a cell runs more worker threads than the machine has cores.
/// Oversubscribed timings measure scheduler interleaving as much as
/// queue throughput, so the affected rows carry an `oversubscribed`
/// flag and this single banner explains it. Returns whether `threads`
/// oversubscribes `cores` so callers can set the per-row flag from the
/// same check.
pub fn warn_if_oversubscribed(threads: usize, cores: usize) -> bool {
    static ONCE: std::sync::Once = std::sync::Once::new();
    let over = threads > cores;
    if over {
        ONCE.call_once(|| {
            eprintln!(
                "WARNING: some cells run more worker threads than the {cores} \
                 core(s) available: they are oversubscribed, so timings measure \
                 scheduler interleaving as much as queue throughput. Affected \
                 rows carry \"oversubscribed\": true. (Warning printed once per \
                 run.)"
            );
        });
    }
    over
}

/// Pins the calling thread to `core` (Linux; silent no-op elsewhere or
/// on failure — pinning is a performance knob, not a correctness one).
pub fn pin_to_core(core: usize) {
    #[cfg(target_os = "linux")]
    // SAFETY: CPU_* macros manipulate a plain stack-allocated cpu_set_t;
    // sched_setaffinity only reads it.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_ZERO(&mut set);
        libc::CPU_SET(core % libc::CPU_SETSIZE as usize, &mut set);
        let _ = libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
    #[cfg(not(target_os = "linux"))]
    let _ = core;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for p in SchedPolicy::ALL {
            assert_eq!(SchedPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(SchedPolicy::parse("bogus"), None);
    }

    #[test]
    fn yielding_flag() {
        assert!(SchedPolicy::Yielding.yields());
        assert!(!SchedPolicy::Pinned.yields());
        assert!(!SchedPolicy::Unpinned.yields());
    }

    #[test]
    fn pinning_does_not_crash() {
        SchedPolicy::Pinned.apply(0);
        SchedPolicy::Pinned.apply(31); // wraps modulo cores
        SchedPolicy::Unpinned.apply(0);
        assert!(num_cores() >= 1);
    }
}
