//! The queue contenders, matching the series labels of the paper's
//! figures.

use std::time::Duration;

use kp_queue::{Config, WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};

use crate::sched::SchedPolicy;
use crate::workload;

/// A queue implementation under benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Michael & Scott lock-free queue, epoch reclamation — the paper's
    /// **LF** series.
    Lf,
    /// Michael & Scott on hazard pointers (reclamation ablation; not a
    /// paper series).
    LfHp,
    /// Kogan–Petrank, base algorithm — the paper's **base WF**.
    WfBase,
    /// Kogan–Petrank with optimization 1 — **opt WF (1)**.
    WfOpt1,
    /// Kogan–Petrank with optimization 2 — **opt WF (2)**.
    WfOpt2,
    /// Kogan–Petrank with both optimizations — **opt WF (1+2)**.
    WfOptBoth,
    /// Kogan–Petrank opt (1+2) on hazard pointers (§3.4): fully
    /// wait-free including memory management (reclamation ablation; not
    /// a paper series).
    WfHp,
    /// Coarse mutex around a `VecDeque` (context baseline).
    Mutex,
}

impl Variant {
    /// The three series of Figures 7 and 8.
    pub const FIG7: [Variant; 3] = [Variant::Lf, Variant::WfBase, Variant::WfOptBoth];

    /// The four series of Figure 9 (optimization ablation).
    pub const FIG9: [Variant; 4] = [
        Variant::WfBase,
        Variant::WfOptBoth,
        Variant::WfOpt1,
        Variant::WfOpt2,
    ];

    /// Everything, for exhaustive sweeps.
    pub const ALL: [Variant; 8] = [
        Variant::Lf,
        Variant::LfHp,
        Variant::WfBase,
        Variant::WfOpt1,
        Variant::WfOpt2,
        Variant::WfOptBoth,
        Variant::WfHp,
        Variant::Mutex,
    ];

    /// Series label, matching the paper's legends where applicable.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Lf => "LF",
            Variant::LfHp => "LF (hazard)",
            Variant::WfBase => "base WF",
            Variant::WfOpt1 => "opt WF (1)",
            Variant::WfOpt2 => "opt WF (2)",
            Variant::WfOptBoth => "opt WF (1+2)",
            Variant::WfHp => "WF (hazard)",
            Variant::Mutex => "mutex",
        }
    }

    /// Parses a label or short alias.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lf" | "LF" => Some(Variant::Lf),
            "lf-hp" | "LF (hazard)" => Some(Variant::LfHp),
            "wf-base" | "base WF" | "base" => Some(Variant::WfBase),
            "wf-opt1" | "opt WF (1)" | "opt1" => Some(Variant::WfOpt1),
            "wf-opt2" | "opt WF (2)" | "opt2" => Some(Variant::WfOpt2),
            "wf-opt" | "opt WF (1+2)" | "opt" => Some(Variant::WfOptBoth),
            "wf-hp" | "WF (hazard)" => Some(Variant::WfHp),
            "mutex" => Some(Variant::Mutex),
            _ => None,
        }
    }

    /// The `Config` for wait-free variants, `None` for the baselines.
    pub fn wf_config(&self) -> Option<Config> {
        match self {
            Variant::WfBase => Some(Config::base()),
            Variant::WfOpt1 => Some(Config::opt1()),
            Variant::WfOpt2 => Some(Config::opt2()),
            Variant::WfOptBoth => Some(Config::opt_both()),
            _ => None,
        }
    }

    /// Runs the pairs benchmark (Figures 7/9) on a fresh queue.
    pub fn run_pairs(&self, threads: usize, iters: usize, sched: SchedPolicy) -> Duration {
        match self {
            Variant::Lf => workload::run_pairs(&MsQueue::new(), threads, iters, sched),
            Variant::LfHp => workload::run_pairs(&MsQueueHp::new(), threads, iters, sched),
            Variant::WfHp => {
                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, Config::opt_both());
                workload::run_pairs(&q, threads, iters, sched)
            }
            Variant::Mutex => workload::run_pairs(&MutexQueue::new(), threads, iters, sched),
            wf => {
                let cfg = wf.wf_config().expect("wait-free variant");
                let q: WfQueue<u64> = WfQueue::with_config(threads, cfg);
                workload::run_pairs(&q, threads, iters, sched)
            }
        }
    }

    /// Runs the 50%-enqueues benchmark (Figure 8) on a fresh queue.
    pub fn run_fifty_fifty(
        &self,
        threads: usize,
        iters: usize,
        prefill: usize,
        sched: SchedPolicy,
    ) -> Duration {
        match self {
            Variant::Lf => {
                workload::run_fifty_fifty(&MsQueue::new(), threads, iters, prefill, sched)
            }
            Variant::LfHp => {
                workload::run_fifty_fifty(&MsQueueHp::new(), threads, iters, prefill, sched)
            }
            Variant::WfHp => {
                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, Config::opt_both());
                workload::run_fifty_fifty(&q, threads, iters, prefill, sched)
            }
            Variant::Mutex => {
                workload::run_fifty_fifty(&MutexQueue::new(), threads, iters, prefill, sched)
            }
            wf => {
                let cfg = wf.wf_config().expect("wait-free variant");
                // +1 slot: the prefill handle coexists conceptually; it
                // is dropped before workers start, but sizing generously
                // costs one array entry.
                let q: WfQueue<u64> = WfQueue::with_config(threads + 1, cfg);
                workload::run_fifty_fifty(&q, threads, iters, prefill, sched)
            }
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse_back() {
        for v in Variant::ALL {
            assert_eq!(Variant::parse(v.label()), Some(v), "{v:?}");
        }
        assert_eq!(Variant::parse("nope"), None);
    }

    #[test]
    fn wf_configs_only_for_wf() {
        assert!(Variant::Lf.wf_config().is_none());
        assert!(Variant::Mutex.wf_config().is_none());
        assert_eq!(Variant::WfBase.wf_config(), Some(Config::base()));
        assert_eq!(Variant::WfOptBoth.wf_config(), Some(Config::opt_both()));
    }

    #[test]
    fn every_variant_runs_pairs() {
        for v in Variant::ALL {
            let d = v.run_pairs(2, 300, SchedPolicy::Unpinned);
            assert!(d > Duration::ZERO, "{v}");
        }
    }

    #[test]
    fn every_variant_runs_fifty_fifty() {
        for v in Variant::ALL {
            let d = v.run_fifty_fifty(2, 300, 50, SchedPolicy::Unpinned);
            assert!(d > Duration::ZERO, "{v}");
        }
    }
}
