//! The queue contenders, matching the series labels of the paper's
//! figures.

use std::time::Duration;

use kp_queue::{Config, WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};
use queue_traits::FastPathStats;
use wcq::WcQueue;

use crate::sched::SchedPolicy;
use crate::workload;

/// A queue implementation under benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Michael & Scott lock-free queue, epoch reclamation — the paper's
    /// **LF** series.
    Lf,
    /// Michael & Scott on hazard pointers (reclamation ablation; not a
    /// paper series).
    LfHp,
    /// Kogan–Petrank, base algorithm — the paper's **base WF**.
    WfBase,
    /// Kogan–Petrank with optimization 1 — **opt WF (1)**.
    WfOpt1,
    /// Kogan–Petrank with optimization 2 — **opt WF (2)**.
    WfOpt2,
    /// Kogan–Petrank with both optimizations — **opt WF (1+2)**.
    WfOptBoth,
    /// Kogan–Petrank opt (1+2) on hazard pointers (§3.4): fully
    /// wait-free including memory management (reclamation ablation; not
    /// a paper series).
    WfHp,
    /// Kogan–Petrank opt (1+2) with the bounded lock-free fast path
    /// (DESIGN.md §12; the KP 2012 fast-path/slow-path methodology).
    WfFast,
    /// The fast path on the hazard-pointer variant.
    WfFastHp,
    /// wCQ bounded ring-buffer engine (DESIGN.md §14), sized so the
    /// benchmark workloads never hit the capacity wall.
    Wcq,
    /// wCQ with a deliberately small ring (2048 slots): the bounded
    /// regime, where enqueues block on a full queue.
    WcqBounded,
    /// Coarse mutex around a `VecDeque` (context baseline).
    Mutex,
}

/// Ring capacity for [`Variant::Wcq`] — large enough that the pairs and
/// 50-50 workloads never fill it.
pub const WCQ_CAPACITY: usize = 1 << 16;
/// Ring capacity for [`Variant::WcqBounded`] — small enough that the
/// workloads exercise the full-queue path (but above the 50-50 prefill
/// of 1000).
pub const WCQ_BOUNDED_CAPACITY: usize = 2048;

impl Variant {
    /// The three series of Figures 7 and 8.
    pub const FIG7: [Variant; 3] = [Variant::Lf, Variant::WfBase, Variant::WfOptBoth];

    /// The four series of Figure 9 (optimization ablation).
    pub const FIG9: [Variant; 4] = [
        Variant::WfBase,
        Variant::WfOptBoth,
        Variant::WfOpt1,
        Variant::WfOpt2,
    ];

    /// Everything, for exhaustive sweeps.
    pub const ALL: [Variant; 12] = [
        Variant::Lf,
        Variant::LfHp,
        Variant::WfBase,
        Variant::WfOpt1,
        Variant::WfOpt2,
        Variant::WfOptBoth,
        Variant::WfHp,
        Variant::WfFast,
        Variant::WfFastHp,
        Variant::Wcq,
        Variant::WcqBounded,
        Variant::Mutex,
    ];

    /// The fast-path ablation cells of BENCH_PR4: each fast variant
    /// paired with its slow-path-only base (same memory management).
    pub const FAST_ABLATION: [(Variant, Variant); 2] = [
        (Variant::WfFast, Variant::WfOptBoth),
        (Variant::WfFastHp, Variant::WfHp),
    ];

    /// Series label, matching the paper's legends where applicable.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Lf => "LF",
            Variant::LfHp => "LF (hazard)",
            Variant::WfBase => "base WF",
            Variant::WfOpt1 => "opt WF (1)",
            Variant::WfOpt2 => "opt WF (2)",
            Variant::WfOptBoth => "opt WF (1+2)",
            Variant::WfHp => "WF (hazard)",
            Variant::WfFast => "fast WF (1+2)",
            Variant::WfFastHp => "fast WF (hazard)",
            Variant::Wcq => "wCQ",
            Variant::WcqBounded => "wCQ (bounded)",
            Variant::Mutex => "mutex",
        }
    }

    /// Parses a label or short alias.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "lf" | "LF" => Some(Variant::Lf),
            "lf-hp" | "LF (hazard)" => Some(Variant::LfHp),
            "wf-base" | "base WF" | "base" => Some(Variant::WfBase),
            "wf-opt1" | "opt WF (1)" | "opt1" => Some(Variant::WfOpt1),
            "wf-opt2" | "opt WF (2)" | "opt2" => Some(Variant::WfOpt2),
            "wf-opt" | "opt WF (1+2)" | "opt" => Some(Variant::WfOptBoth),
            "wf-hp" | "WF (hazard)" => Some(Variant::WfHp),
            "wf-fast" | "fast WF (1+2)" | "fast" => Some(Variant::WfFast),
            "wf-fast-hp" | "fast WF (hazard)" | "fast-hp" => Some(Variant::WfFastHp),
            "wcq" | "wCQ" => Some(Variant::Wcq),
            "wcq-bounded" | "wCQ (bounded)" => Some(Variant::WcqBounded),
            "mutex" => Some(Variant::Mutex),
            _ => None,
        }
    }

    /// The `Config` for wait-free variants, `None` for the baselines.
    pub fn wf_config(&self) -> Option<Config> {
        match self {
            Variant::WfBase => Some(Config::base()),
            Variant::WfOpt1 => Some(Config::opt1()),
            Variant::WfOpt2 => Some(Config::opt2()),
            Variant::WfOptBoth => Some(Config::opt_both()),
            Variant::WfFast => Some(Config::fast()),
            _ => None,
        }
    }

    /// The engine family implementing this variant — the bench JSON's
    /// self-describing `engine` field.
    pub fn engine(&self) -> &'static str {
        match self {
            Variant::Lf | Variant::LfHp => "michael-scott",
            Variant::Wcq | Variant::WcqBounded => "wcq",
            Variant::Mutex => "mutex",
            _ => "kogan-petrank",
        }
    }

    /// The fixed element capacity, `None` for unbounded engines.
    pub fn capacity(&self) -> Option<usize> {
        match self {
            Variant::Wcq => Some(WCQ_CAPACITY),
            Variant::WcqBounded => Some(WCQ_BOUNDED_CAPACITY),
            _ => None,
        }
    }

    fn wcq_queue(&self, threads: usize) -> WcQueue<u64> {
        let cap = self.capacity().expect("wcq variant");
        WcQueue::with_config(threads, wcq::Config::new().with_capacity(cap))
    }

    /// Runs the pairs benchmark (Figures 7/9) on a fresh queue.
    pub fn run_pairs(&self, threads: usize, iters: usize, sched: SchedPolicy) -> Duration {
        self.run_pairs_stats(threads, iters, sched).0
    }

    /// [`run_pairs`](Self::run_pairs) plus the merged per-handle
    /// fast-path counters (all zero for variants without a fast path).
    pub fn run_pairs_stats(
        &self,
        threads: usize,
        iters: usize,
        sched: SchedPolicy,
    ) -> (Duration, FastPathStats) {
        match self {
            Variant::Lf => workload::run_pairs_with_stats(&MsQueue::new(), threads, iters, sched),
            Variant::LfHp => {
                workload::run_pairs_with_stats(&MsQueueHp::new(), threads, iters, sched)
            }
            Variant::WfHp => {
                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, Config::opt_both());
                workload::run_pairs_with_stats(&q, threads, iters, sched)
            }
            Variant::WfFastHp => {
                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, Config::fast());
                workload::run_pairs_with_stats(&q, threads, iters, sched)
            }
            Variant::Wcq | Variant::WcqBounded => {
                let q = self.wcq_queue(threads);
                workload::run_pairs_with_stats(&q, threads, iters, sched)
            }
            Variant::Mutex => {
                workload::run_pairs_with_stats(&MutexQueue::new(), threads, iters, sched)
            }
            wf => {
                let cfg = wf.wf_config().expect("wait-free variant");
                let q: WfQueue<u64> = WfQueue::with_config(threads, cfg);
                workload::run_pairs_with_stats(&q, threads, iters, sched)
            }
        }
    }

    /// Runs the 50%-enqueues benchmark (Figure 8) on a fresh queue.
    pub fn run_fifty_fifty(
        &self,
        threads: usize,
        iters: usize,
        prefill: usize,
        sched: SchedPolicy,
    ) -> Duration {
        self.run_fifty_fifty_stats(threads, iters, prefill, sched).0
    }

    /// [`run_fifty_fifty`](Self::run_fifty_fifty) plus the merged
    /// per-handle fast-path counters.
    pub fn run_fifty_fifty_stats(
        &self,
        threads: usize,
        iters: usize,
        prefill: usize,
        sched: SchedPolicy,
    ) -> (Duration, FastPathStats) {
        match self {
            Variant::Lf => {
                workload::run_fifty_fifty_with_stats(&MsQueue::new(), threads, iters, prefill, sched)
            }
            Variant::LfHp => workload::run_fifty_fifty_with_stats(
                &MsQueueHp::new(),
                threads,
                iters,
                prefill,
                sched,
            ),
            Variant::WfHp => {
                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, Config::opt_both());
                workload::run_fifty_fifty_with_stats(&q, threads, iters, prefill, sched)
            }
            Variant::WfFastHp => {
                let q: WfQueueHp<u64> = WfQueueHp::with_config(threads + 1, Config::fast());
                workload::run_fifty_fifty_with_stats(&q, threads, iters, prefill, sched)
            }
            Variant::Wcq | Variant::WcqBounded => {
                // +1 slot for the prefill handle, like the WF arms.
                let q = self.wcq_queue(threads + 1);
                workload::run_fifty_fifty_with_stats(&q, threads, iters, prefill, sched)
            }
            Variant::Mutex => workload::run_fifty_fifty_with_stats(
                &MutexQueue::new(),
                threads,
                iters,
                prefill,
                sched,
            ),
            wf => {
                let cfg = wf.wf_config().expect("wait-free variant");
                // +1 slot: the prefill handle coexists conceptually; it
                // is dropped before workers start, but sizing generously
                // costs one array entry.
                let q: WfQueue<u64> = WfQueue::with_config(threads + 1, cfg);
                workload::run_fifty_fifty_with_stats(&q, threads, iters, prefill, sched)
            }
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse_back() {
        for v in Variant::ALL {
            assert_eq!(Variant::parse(v.label()), Some(v), "{v:?}");
        }
        assert_eq!(Variant::parse("nope"), None);
    }

    #[test]
    fn wf_configs_only_for_wf() {
        assert!(Variant::Lf.wf_config().is_none());
        assert!(Variant::Mutex.wf_config().is_none());
        assert_eq!(Variant::WfBase.wf_config(), Some(Config::base()));
        assert_eq!(Variant::WfOptBoth.wf_config(), Some(Config::opt_both()));
    }

    #[test]
    fn every_variant_runs_pairs() {
        for v in Variant::ALL {
            let d = v.run_pairs(2, 300, SchedPolicy::Unpinned);
            assert!(d > Duration::ZERO, "{v}");
        }
    }

    #[test]
    fn every_variant_runs_fifty_fifty() {
        for v in Variant::ALL {
            let d = v.run_fifty_fifty(2, 300, 50, SchedPolicy::Unpinned);
            assert!(d > Duration::ZERO, "{v}");
        }
    }

    #[test]
    fn engines_and_capacities_are_declared() {
        assert_eq!(Variant::Wcq.engine(), "wcq");
        assert_eq!(Variant::WcqBounded.capacity(), Some(WCQ_BOUNDED_CAPACITY));
        assert_eq!(Variant::WfOptBoth.engine(), "kogan-petrank");
        assert_eq!(Variant::WfOptBoth.capacity(), None);
        assert_eq!(Variant::Lf.engine(), "michael-scott");
        // Bounded variants must clear the 50-50 prefill of 1000.
        for v in Variant::ALL {
            if let Some(cap) = v.capacity() {
                assert!(cap > 1_000, "{v}: capacity {cap} below 50-50 prefill");
            }
        }
    }

    #[test]
    fn fast_variants_report_fast_path_stats() {
        for v in [Variant::WfFast, Variant::WfFastHp, Variant::Wcq] {
            let (_, fp) = v.run_pairs_stats(2, 300, SchedPolicy::Unpinned);
            assert!(fp.fast_completions > 0, "{v}: fast path must run: {fp:?}");
            assert!(
                fp.fast_completions + fp.slow_ops >= 2 * 2 * 300,
                "{v}: every op is counted somewhere: {fp:?}"
            );
        }
        // Slow-path and baseline variants report all-zero counters.
        for v in [Variant::WfOptBoth, Variant::Lf, Variant::Mutex] {
            let (_, fp) = v.run_pairs_stats(2, 300, SchedPolicy::Unpinned);
            assert_eq!(fp.fast_completions, 0, "{v}");
        }
    }

    #[test]
    fn fast_ablation_pairs_fast_with_its_base() {
        for (fast, base) in Variant::FAST_ABLATION {
            assert!(fast.label().contains("fast"), "{fast}");
            assert!(!base.label().contains("fast"), "{base}");
        }
    }
}
