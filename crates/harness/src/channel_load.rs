//! Channel workloads for the sharded front-end (DESIGN.md §15): a
//! closed-loop throughput cell and an open-loop bursty-arrival latency
//! probe, both generic over the shard engine.
//!
//! The closed loop measures sustained transfer rate: producers push as
//! fast as backpressure allows, so the number says "how fast can this
//! configuration move messages". The open loop answers the deployment
//! question instead — "at a *fixed offered rate*, what latency does a
//! message see?" — by stamping every message with its **scheduled**
//! arrival time and measuring receive-side lateness against that
//! schedule. Stamping the schedule rather than the actual send instant
//! makes the probe coordination-omission-free: when the channel stalls,
//! the messages queued behind the stall are charged their full wait,
//! not forgiven it.
//!
//! Latencies go into a [`LogHistogram`](crate::hist::LogHistogram) —
//! record is a shift/mask/increment, and the receive buffer is
//! preallocated — so the measurement path performs no allocation.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use kp_channel::Channel;
use queue_traits::ConcurrentQueue;

use crate::hist::LogHistogram;

/// One closed-loop throughput cell.
#[derive(Debug, Clone, Copy)]
pub struct CellSpec {
    /// Producer (sender) threads.
    pub producers: usize,
    /// Consumer (receiver) threads.
    pub consumers: usize,
    /// Messages each producer sends.
    pub iters: usize,
    /// Batch size: 1 uses the scalar `send`/`recv` path, larger values
    /// use `send_batch`/`recv_batch` in chunks of this size.
    pub batch: usize,
}

impl CellSpec {
    /// Total messages the cell transfers.
    pub fn messages(&self) -> usize {
        self.producers * self.iters
    }
}

/// One open-loop bursty-arrival latency probe.
///
/// Every producer emits `bursts` bursts of `burst` messages; burst `b`
/// is *scheduled* to arrive at `b * gap` after the probe epoch, and all
/// producers share the schedule, so the instantaneous arrival rate is
/// `producers * burst` messages per `gap` — deliberately spiky. The
/// offered rate is `producers * burst / gap` on average.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopSpec {
    /// Producer (sender) threads.
    pub producers: usize,
    /// Consumer (receiver) threads.
    pub consumers: usize,
    /// Batch size for the send/receive paths (as in [`CellSpec`]).
    pub batch: usize,
    /// Messages per burst.
    pub burst: usize,
    /// Bursts per producer.
    pub bursts: usize,
    /// Scheduled gap between consecutive bursts.
    pub gap: Duration,
}

impl OpenLoopSpec {
    /// Total messages the probe offers.
    pub fn messages(&self) -> usize {
        self.producers * self.bursts * self.burst
    }

    /// Average offered rate in messages per second.
    pub fn offered_per_sec(&self) -> f64 {
        (self.producers * self.burst) as f64 / self.gap.as_secs_f64()
    }
}

/// Runs one closed-loop cell on `chan` and returns the wall-clock time
/// from the synchronized start until the last consumer drains the
/// disconnect. The channel must be freshly constructed with
/// `max_senders >= producers` and `max_receivers >= consumers`.
pub fn run_closed_loop<Q: ConcurrentQueue<u64>>(
    chan: &Channel<u64, Q>,
    spec: &CellSpec,
) -> Duration {
    assert!(spec.batch >= 1, "batch must be at least 1");
    let barrier = Barrier::new(spec.producers + spec.consumers);
    let mut received = 0usize;
    // Every worker stamps its own start (right after the barrier) and
    // end; the cell's duration is the span from the earliest start to
    // the latest end. Timing from the coordinating thread would be
    // wrong under oversubscription: the whole run can finish before
    // the coordinator is scheduled again.
    let mut first_start: Option<Instant> = None;
    let mut last_end: Option<Instant> = None;
    let mut span = |start: Instant, end: Instant| {
        first_start = Some(first_start.map_or(start, |f| f.min(start)));
        last_end = Some(last_end.map_or(end, |l| l.max(end)));
    };
    std::thread::scope(|s| {
        let producers: Vec<_> = (0..spec.producers as u64)
            .map(|p| {
                let mut tx = chan.sender();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    if spec.batch == 1 {
                        for i in 0..spec.iters as u64 {
                            tx.send((p << 48) | i).expect("receivers vanished mid-run");
                        }
                    } else {
                        let mut i = 0u64;
                        while i < spec.iters as u64 {
                            let n = spec.batch.min(spec.iters - i as usize) as u64;
                            tx.send_batch((i..i + n).map(|j| (p << 48) | j))
                                .expect("receivers vanished mid-run");
                            i += n;
                        }
                    }
                    (start, Instant::now())
                })
            })
            .collect();
        let consumers: Vec<_> = (0..spec.consumers)
            .map(|_| {
                let mut rx = chan.receiver();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let start = Instant::now();
                    let mut got = 0usize;
                    if spec.batch == 1 {
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                    } else {
                        let mut buf = Vec::with_capacity(spec.batch);
                        while let Ok(n) = rx.recv_batch(&mut buf, spec.batch) {
                            got += n;
                            buf.clear();
                        }
                    }
                    (start, Instant::now(), got)
                })
            })
            .collect();
        for p in producers {
            let (start, end) = p.join().expect("producer panicked");
            span(start, end);
        }
        for c in consumers {
            let (start, end, got) = c.join().expect("consumer panicked");
            span(start, end);
            received += got;
        }
    });
    assert_eq!(
        received,
        spec.messages(),
        "closed-loop cell lost or duplicated messages"
    );
    last_end.expect("at least one worker") - first_start.expect("at least one worker")
}

/// Waits (sleep for the coarse part, yield for the tail) until
/// `deadline` nanoseconds past `t0`. The tail yields rather than spins:
/// on an oversubscribed host a spinning producer would starve the very
/// consumers whose latency the probe measures, and a few dozen µs of
/// schedule slack simply shows up in the (schedule-relative) latency
/// samples instead of being hidden.
fn wait_until(t0: Instant, deadline: u64) {
    loop {
        let now = t0.elapsed().as_nanos() as u64;
        if now >= deadline {
            return;
        }
        let left = deadline - now;
        if left > 200_000 {
            // Leave ~100µs of yield headroom for sleep overshoot.
            std::thread::sleep(Duration::from_nanos(left - 100_000));
        } else {
            std::thread::yield_now();
        }
    }
}

/// Runs one open-loop probe on `chan`; returns the merged receive-side
/// latency histogram (nanoseconds against the arrival schedule).
///
/// The message payload *is* its scheduled arrival offset in
/// nanoseconds; a consumer's latency sample is `elapsed - schedule` at
/// the moment the message comes out of `recv`. Samples for a burst
/// that the channel absorbs late therefore include the full queueing
/// delay, even for messages the producer had not physically sent yet
/// when the stall began.
pub fn run_open_loop<Q: ConcurrentQueue<u64>>(
    chan: &Channel<u64, Q>,
    spec: &OpenLoopSpec,
) -> LogHistogram {
    assert!(spec.batch >= 1, "batch must be at least 1");
    let barrier = Barrier::new(spec.producers + spec.consumers);
    let gap = spec.gap.as_nanos() as u64;
    // The schedule epoch predates the barrier; burst `b` is scheduled
    // at `(b + 1) * gap`, so the first deadline is comfortably in the
    // future by the time the barrier releases the workers.
    let t0 = Instant::now();
    let mut merged = LogHistogram::new();
    let mut received = 0usize;
    std::thread::scope(|s| {
        for _ in 0..spec.producers {
            let mut tx = chan.sender();
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                for b in 0..spec.bursts as u64 {
                    let sched = (b + 1) * gap;
                    wait_until(t0, sched);
                    if spec.batch == 1 {
                        for _ in 0..spec.burst {
                            tx.send(sched).expect("receivers vanished mid-run");
                        }
                    } else {
                        let mut sent = 0usize;
                        while sent < spec.burst {
                            let n = spec.batch.min(spec.burst - sent);
                            tx.send_batch(std::iter::repeat_n(sched, n))
                                .expect("receivers vanished mid-run");
                            sent += n;
                        }
                    }
                }
            });
        }
        let consumers: Vec<_> = (0..spec.consumers)
            .map(|_| {
                let mut rx = chan.receiver();
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    let mut hist = LogHistogram::new();
                    let mut got = 0usize;
                    if spec.batch == 1 {
                        while let Ok(sched) = rx.recv() {
                            let now = t0.elapsed().as_nanos() as u64;
                            hist.record(now.saturating_sub(sched));
                            got += 1;
                        }
                    } else {
                        let mut buf = Vec::with_capacity(spec.batch);
                        while let Ok(n) = rx.recv_batch(&mut buf, spec.batch) {
                            let now = t0.elapsed().as_nanos() as u64;
                            for &sched in &buf {
                                hist.record(now.saturating_sub(sched));
                            }
                            got += n;
                            buf.clear();
                        }
                    }
                    (hist, got)
                })
            })
            .collect();
        for c in consumers {
            let (hist, got) = c.join().expect("consumer panicked");
            merged.merge(&hist);
            received += got;
        }
    });
    assert_eq!(
        received,
        spec.messages(),
        "open-loop probe lost or duplicated messages"
    );
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use kp_channel::ChannelConfig;

    fn cfg(shards: usize) -> ChannelConfig {
        ChannelConfig::new()
            .with_shards(shards)
            .with_max_senders(2)
            .with_max_receivers(2)
    }

    #[test]
    fn closed_loop_moves_every_message() {
        for batch in [1, 8] {
            let chan = Channel::wcq(cfg(2), 1024);
            let spec = CellSpec { producers: 2, consumers: 2, iters: 500, batch };
            let d = run_closed_loop(&chan, &spec);
            assert!(d > Duration::ZERO);
        }
    }

    #[test]
    fn open_loop_records_every_latency() {
        let chan = Channel::wcq(cfg(2), 1024);
        let spec = OpenLoopSpec {
            producers: 2,
            consumers: 2,
            batch: 8,
            burst: 16,
            bursts: 5,
            gap: Duration::from_micros(200),
        };
        let hist = run_open_loop(&chan, &spec);
        assert_eq!(hist.len(), spec.messages() as u64);
        assert!(hist.quantile(0.5) <= hist.quantile(0.99));
    }

    #[test]
    fn open_loop_works_on_unbounded_core() {
        let chan = Channel::kp(cfg(1));
        let spec = OpenLoopSpec {
            producers: 2,
            consumers: 2,
            batch: 1,
            burst: 8,
            bursts: 3,
            gap: Duration::from_micros(200),
        };
        let hist = run_open_loop(&chan, &spec);
        assert_eq!(hist.len(), spec.messages() as u64);
    }
}
