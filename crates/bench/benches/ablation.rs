//! Ablations of the design choices §3.3 of the paper sketches beyond
//! the two headline optimizations:
//!
//! * `validate_before_cas` — reading the `pending` flag before the
//!   descriptor CAS in the two `help_finish_*` methods;
//! * the helping chunk size `k` (the paper fixes `k = 1`);
//! * cyclic vs random chunk selection (deterministic vs probabilistic
//!   wait-freedom);
//! * the phase-policy axis in isolation at fixed helping policy.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{workload, SchedPolicy};
use kp_queue::{Config, HelpPolicy, PhasePolicy, WfQueue, WfQueueHp};

const ITERS: usize = 2_000;
const THREADS: usize = 4;

fn run_config(cfg: Config, threads: usize) -> Duration {
    let q: WfQueue<u64> = WfQueue::with_config(threads, cfg);
    workload::run_pairs(&q, threads, ITERS, SchedPolicy::Unpinned)
}

fn bench_validation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_validate_before_cas");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for (name, cfg) in [
        ("base", Config::base()),
        ("base+validate", Config::base().with_validation()),
        ("opt", Config::opt_both()),
        ("opt+validate", Config::opt_both().with_validation()),
    ] {
        g.bench_function(name, |b| {
            b.iter_custom(|n| (0..n).map(|_| run_config(cfg, THREADS)).sum());
        });
    }
    g.finish();
}

fn bench_chunk_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_help_chunk");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let threads = 8;
    for chunk in [1usize, 2, 4, 8] {
        let cfg = Config::opt_both().with_help(HelpPolicy::Cyclic { chunk });
        g.bench_with_input(BenchmarkId::new("cyclic", chunk), &cfg, |b, cfg| {
            b.iter_custom(|n| (0..n).map(|_| run_config(*cfg, threads)).sum());
        });
    }
    g.finish();
}

fn bench_cyclic_vs_random(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_chunk_selection");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let threads = 8;
    for (name, help) in [
        ("cyclic", HelpPolicy::Cyclic { chunk: 1 }),
        ("random", HelpPolicy::RandomChunk { chunk: 1 }),
    ] {
        let cfg = Config::opt_both().with_help(help);
        g.bench_function(name, |b| {
            b.iter_custom(|n| (0..n).map(|_| run_config(cfg, threads)).sum());
        });
    }
    g.finish();
}

fn bench_phase_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_phase_policy");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    let threads = 8;
    for (name, phase) in [
        ("max_scan", PhasePolicy::MaxScan),
        ("atomic_counter", PhasePolicy::AtomicCounter),
    ] {
        // Fix the helping policy to ScanAll so only the phase source
        // differs (this isolates optimization 2, which the paper found
        // minor but growing with the thread count).
        let cfg = Config::base().with_phase(phase);
        g.bench_function(name, |b| {
            b.iter_custom(|n| (0..n).map(|_| run_config(cfg, threads)).sum());
        });
    }
    g.finish();
}

fn run_config_hp(cfg: Config, threads: usize) -> Duration {
    let q: WfQueueHp<u64> = WfQueueHp::with_config(threads, cfg);
    workload::run_pairs(&q, threads, ITERS, SchedPolicy::Unpinned)
}

/// The descriptor/node-reuse ablation: the allocation-free hot path
/// (packed state-slot words + recycled nodes) against the same
/// algorithm with node reuse disabled, i.e. a fresh heap node per
/// enqueue — the alloc-per-transition baseline. Alongside the timing,
/// each leg prints its measured allocation rate once (`node_allocs` /
/// `node_reuses` stats over one probe run) so the throughput numbers
/// can be read next to the allocation behaviour they come from.
fn bench_reuse_vs_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_reuse_vs_alloc");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for (name, cfg) in [
        ("epoch/reuse", Config::opt_both()),
        ("epoch/alloc", Config::opt_both().with_reuse(false)),
    ] {
        {
            let q: WfQueue<u64> = WfQueue::with_config(THREADS, cfg);
            workload::run_pairs(&q, THREADS, ITERS, SchedPolicy::Unpinned);
            let s = q.stats();
            println!(
                "{name}: probe run {} fresh node allocs, {} reuses over {} enqueues",
                s.node_allocs, s.node_reuses, s.enqueues
            );
        }
        g.bench_function(name, |b| {
            b.iter_custom(|n| (0..n).map(|_| run_config(cfg, THREADS)).sum());
        });
    }
    for (name, cfg) in [
        ("hp/reuse", Config::opt_both()),
        ("hp/alloc", Config::opt_both().with_reuse(false)),
    ] {
        {
            let q: WfQueueHp<u64> = WfQueueHp::with_config(THREADS, cfg);
            workload::run_pairs(&q, THREADS, ITERS, SchedPolicy::Unpinned);
            let s = q.stats();
            println!(
                "{name}: probe run {} fresh node allocs, {} reuses over {} enqueues",
                s.node_allocs, s.node_reuses, s.enqueues
            );
        }
        g.bench_function(name, |b| {
            b.iter_custom(|n| (0..n).map(|_| run_config_hp(cfg, THREADS)).sum());
        });
    }
    g.finish();
}

criterion_group!(
    ablation,
    bench_validation,
    bench_chunk_size,
    bench_cyclic_vs_random,
    bench_phase_policy,
    bench_reuse_vs_alloc
);
criterion_main!(ablation);
