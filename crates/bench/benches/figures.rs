//! Criterion benches mirroring the paper's figures at reduced scale.
//!
//! One group per figure; within a group, one benchmark per
//! (variant, thread-count) cell, measuring the total completion time of
//! the workload exactly as the figure binaries do (`iter_custom`
//! returns the workload's own wall-clock measurement). For paper-scale
//! numbers use the `harness` binaries; these benches exist so
//! `cargo bench` regenerates every figure's data in minutes and guards
//! against performance regressions.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use harness::{SchedPolicy, Variant};

/// Iterations per thread per workload run (paper: 1,000,000).
const ITERS: usize = 2_000;
/// 50%-enqueues prefill (paper: 1000).
const PREFILL: usize = 1000;
/// Thread counts sampled from the paper's 1..=16 sweep.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_pairs");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for &threads in &THREADS {
        for v in Variant::FIG7 {
            g.bench_with_input(
                BenchmarkId::new(v.label().replace(' ', "_"), threads),
                &threads,
                |b, &t| {
                    b.iter_custom(|n| {
                        let mut total = Duration::ZERO;
                        for _ in 0..n {
                            total += v.run_pairs(t, ITERS, SchedPolicy::Unpinned);
                        }
                        total
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_fifty_fifty");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for &threads in &THREADS {
        for v in Variant::FIG7 {
            g.bench_with_input(
                BenchmarkId::new(v.label().replace(' ', "_"), threads),
                &threads,
                |b, &t| {
                    b.iter_custom(|n| {
                        let mut total = Duration::ZERO;
                        for _ in 0..n {
                            total += v.run_fifty_fifty(t, ITERS, PREFILL, SchedPolicy::Unpinned);
                        }
                        total
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_ablation");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for &threads in &THREADS {
        for v in Variant::FIG9 {
            g.bench_with_input(
                BenchmarkId::new(v.label().replace(' ', "_"), threads),
                &threads,
                |b, &t| {
                    b.iter_custom(|n| {
                        let mut total = Duration::ZERO;
                        for _ in 0..n {
                            total += v.run_pairs(t, ITERS, SchedPolicy::Unpinned);
                        }
                        total
                    });
                },
            );
        }
    }
    g.finish();
}

/// Figure 10's time-axis counterpart: the live-byte measurement itself
/// runs in the `fig10` binary (it needs to own the global allocator);
/// here we bench the *throughput* effect of resident queue size, the
/// other observable of that experiment.
fn bench_fig10_resident_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_resident_size");
    g.sample_size(10);
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for size in [0usize, 1_000, 100_000] {
        for v in [Variant::Lf, Variant::WfOptBoth] {
            g.bench_with_input(
                BenchmarkId::new(v.label().replace(' ', "_"), size),
                &size,
                |b, &size| {
                    b.iter_custom(|n| {
                        let mut total = Duration::ZERO;
                        for _ in 0..n {
                            total += v.run_fifty_fifty(4, ITERS, size, SchedPolicy::Unpinned);
                        }
                        total
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10_resident_size
);
criterion_main!(figures);
