//! Microbenchmarks of the substrates the queue is built on: hazard
//! pointers vs epoch reclamation, the virtual-ID pool, and single-op
//! costs of every queue variant (the uncontended floor that explains
//! the figures' 1-thread column).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kp_queue::{Config, ConcurrentQueue, QueueHandle, WfQueue, WfQueueHp};
use ms_queue::{MsQueue, MsQueueHp, MutexQueue};

fn bench_single_thread_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_thread_pair");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    // One enqueue+dequeue pair per iteration, steady state.
    {
        let q = MsQueue::new();
        let mut h = q.register().unwrap();
        g.bench_function("LF_epoch", |b| {
            b.iter(|| {
                h.enqueue(1u64);
                criterion::black_box(h.dequeue());
            })
        });
    }
    {
        let q = MsQueueHp::new();
        let mut h = q.register().unwrap();
        g.bench_function("LF_hazard", |b| {
            b.iter(|| {
                h.enqueue(1u64);
                criterion::black_box(h.dequeue());
            })
        });
    }
    {
        let q = MutexQueue::new();
        let mut h = q.register().unwrap();
        g.bench_function("mutex", |b| {
            b.iter(|| {
                h.enqueue(1u64);
                criterion::black_box(h.dequeue());
            })
        });
    }
    {
        let q: WfQueueHp<u64> = WfQueueHp::with_config(4, Config::opt_both());
        let mut h = q.register().unwrap();
        g.bench_function("WF_opt_hazard_n4", |b| {
            b.iter(|| {
                h.enqueue(1u64);
                criterion::black_box(h.dequeue());
            })
        });
    }
    for (name, cfg, slots) in [
        ("WF_base_n4", Config::base(), 4),
        ("WF_base_n16", Config::base(), 16),
        ("WF_opt_n4", Config::opt_both(), 4),
        ("WF_opt_n16", Config::opt_both(), 16),
    ] {
        // The paper's §3.3 point: the base version's uncontended cost
        // grows with NUM_THRDS (state scans), the optimized one's does
        // not — hence the n4/n16 pairs.
        let q: WfQueue<u64> = WfQueue::with_config(slots, cfg);
        let mut h = q.register().unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                h.enqueue(1u64);
                criterion::black_box(h.dequeue());
            })
        });
    }
    g.finish();
}

fn bench_hazard_protect(c: &mut Criterion) {
    use std::sync::atomic::AtomicPtr;
    let mut g = c.benchmark_group("hazard");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    let domain = hazard::Domain::new(2);
    let target = AtomicPtr::new(Box::into_raw(Box::new(7u64)));
    let p = domain.enter();
    g.bench_function("protect_clear", |b| {
        b.iter(|| {
            let ptr = p.protect(0, &target);
            criterion::black_box(ptr);
            p.clear(0);
        })
    });
    g.bench_function("retire_scan_amortized", |b| {
        let mut p2 = domain.enter();
        b.iter(|| {
            // One retire per iteration; scans amortize at the threshold.
            let obj = Box::into_raw(Box::new(1u64));
            unsafe { p2.retire(obj) };
        })
    });
    g.finish();
    drop(p);
    unsafe {
        drop(Box::from_raw(
            target.swap(std::ptr::null_mut(), std::sync::atomic::Ordering::AcqRel),
        ))
    };
}

fn bench_idpool(c: &mut Criterion) {
    let mut g = c.benchmark_group("idpool");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    for capacity in [8usize, 64, 512] {
        let pool = idpool::IdPool::new(capacity);
        g.bench_with_input(
            BenchmarkId::new("acquire_release", capacity),
            &pool,
            |b, pool| {
                b.iter(|| {
                    let g1 = pool.acquire().unwrap();
                    criterion::black_box(g1.id());
                })
            },
        );
    }
    g.finish();
}

fn bench_epoch_pin(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("pin", |b| {
        b.iter(|| {
            criterion::black_box(crossbeam_epoch::pin());
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_single_thread_ops,
    bench_hazard_protect,
    bench_idpool,
    bench_epoch_pin
);
criterion_main!(substrates);
