//! Property-based tests for the renaming pool: arbitrary interleavings
//! of acquire/release (driven as a single-threaded script against a
//! model) never hand out duplicates, never exceed capacity, and always
//! recycle released names.

use idpool::{IdGuard, IdPool};
use proptest::prelude::*;
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
enum Step {
    Acquire,
    /// Release the i-th oldest held guard (modulo holdings).
    Release(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        3 => Just(Step::Acquire),
        2 => (0usize..16).prop_map(Step::Release),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn script_matches_model(
        capacity in 1usize..12,
        script in prop::collection::vec(step_strategy(), 0..200),
    ) {
        let pool = IdPool::new(capacity);
        let mut held: Vec<IdGuard<'_>> = Vec::new();
        for step in script {
            match step {
                Step::Acquire => {
                    match pool.acquire() {
                        Some(g) => {
                            prop_assert!(g.id() < capacity, "id in range");
                            prop_assert!(
                                held.len() < capacity,
                                "acquire succeeded with pool already full"
                            );
                            held.push(g);
                        }
                        None => {
                            prop_assert_eq!(
                                held.len(), capacity,
                                "acquire failed with free slots remaining"
                            );
                        }
                    }
                }
                Step::Release(i) => {
                    if !held.is_empty() {
                        let idx = i % held.len();
                        held.swap_remove(idx);
                    }
                }
            }
            // Held IDs are always pairwise distinct.
            let ids: HashSet<usize> = held.iter().map(|g| g.id()).collect();
            prop_assert_eq!(ids.len(), held.len(), "duplicate live IDs");
            prop_assert_eq!(pool.in_use(), held.len(), "in_use bookkeeping");
        }
    }

    #[test]
    fn full_drain_refill(capacity in 1usize..32) {
        let pool = IdPool::new(capacity);
        for _round in 0..3 {
            let guards: Vec<_> = (0..capacity)
                .map(|_| pool.acquire().expect("capacity available"))
                .collect();
            let ids: HashSet<usize> = guards.iter().map(|g| g.id()).collect();
            prop_assert_eq!(ids.len(), capacity, "all IDs distinct when full");
            prop_assert!(pool.acquire().is_none());
            drop(guards);
            prop_assert_eq!(pool.in_use(), 0);
        }
    }

    #[test]
    fn acquire_exact_respects_holdings(capacity in 2usize..10, target in 0usize..10) {
        let pool = IdPool::new(capacity);
        let target = target % capacity;
        let g = pool.acquire_exact(target).expect("free pool");
        prop_assert_eq!(g.id(), target);
        prop_assert!(pool.acquire_exact(target).is_none());
        // The rest of the pool is still available.
        let rest: Vec<_> = (0..capacity - 1)
            .map(|_| pool.acquire().expect("other slots free"))
            .collect();
        prop_assert!(rest.iter().all(|r| r.id() != target));
    }
}
