//! Crash-reclamation properties for the renaming pool (§3.3's
//! long-lived renaming): a thread that *dies* while holding a virtual
//! ID — a panic unwinding a worker mid-operation — must release the ID
//! exactly once. Random interleavings of acquires, orderly releases and
//! simulated crashes must never leak a slot (the pool would otherwise
//! shrink forever under thread churn) and never double-release one
//! (`IdPool::release` debug-asserts the slot was claimed, so a double
//! release fails these debug-build tests loudly).

use idpool::{IdGuard, IdPool};
use proptest::prelude::*;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Panic payload for simulated crashes, filtered out of the default
/// panic hook so the expected unwinds don't spam test output.
struct SimulatedCrash;

fn quiet_simulated_crashes() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimulatedCrash>().is_none() {
                default(info);
            }
        }));
    });
}

#[derive(Debug, Clone, Copy)]
enum Step {
    Acquire,
    /// Orderly release of the i-th held guard (modulo holdings).
    Release(usize),
    /// The holder of the i-th guard dies in place: the guard is dropped
    /// by its panic unwind.
    CrashInPlace(usize),
    /// The holder dies on its own thread: the guard moves into a worker
    /// that panics mid-"operation", and the crash is observed as a
    /// `JoinHandle` error.
    CrashOnThread(usize),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => Just(Step::Acquire),
        2 => (0usize..16).prop_map(Step::Release),
        2 => (0usize..16).prop_map(Step::CrashInPlace),
        1 => (0usize..16).prop_map(Step::CrashOnThread),
    ]
}

/// Drops `guard` inside a panicking closure, as a real unwinding worker
/// would.
fn crash_in_place(guard: IdGuard<'_>) {
    let result = panic::catch_unwind(AssertUnwindSafe(move || {
        let _held_to_the_grave = guard;
        panic::panic_any(SimulatedCrash);
    }));
    assert!(result.is_err(), "the simulated crash must unwind");
}

/// Moves `guard` into a worker thread that panics while holding it.
fn crash_on_thread(guard: IdGuard<'_>) {
    std::thread::scope(|s| {
        let worker = s.spawn(move || {
            let _held_to_the_grave = guard;
            panic::panic_any(SimulatedCrash);
        });
        let err = worker.join().expect_err("worker must die");
        assert!(
            err.downcast_ref::<SimulatedCrash>().is_some(),
            "worker died of something other than the simulated crash"
        );
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary interleavings of acquire / release / crash keep the
    /// pool's bookkeeping exact: live IDs stay distinct, `in_use`
    /// matches the survivors, and every slot freed by a crash is
    /// immediately re-acquirable.
    #[test]
    fn crashes_never_leak_or_double_release(
        capacity in 1usize..10,
        script in prop::collection::vec(step_strategy(), 0..120),
    ) {
        quiet_simulated_crashes();
        let pool = IdPool::new(capacity);
        let mut held: Vec<IdGuard<'_>> = Vec::new();
        for step in script {
            match step {
                Step::Acquire => {
                    if let Some(g) = pool.acquire() {
                        prop_assert!(g.id() < capacity);
                        held.push(g);
                    } else {
                        prop_assert_eq!(held.len(), capacity,
                            "acquire failed with free slots remaining");
                    }
                }
                Step::Release(i) => {
                    if !held.is_empty() {
                        let idx = i % held.len();
                        drop(held.swap_remove(idx));
                    }
                }
                Step::CrashInPlace(i) => {
                    if !held.is_empty() {
                        let idx = i % held.len();
                        let id = held[idx].id();
                        crash_in_place(held.swap_remove(idx));
                        // The crashed slot is free again, exactly once.
                        let back = pool.acquire_exact(id);
                        prop_assert!(back.is_some(),
                            "slot {} not reclaimable after crash", id);
                        drop(back);
                    }
                }
                Step::CrashOnThread(i) => {
                    if !held.is_empty() {
                        let idx = i % held.len();
                        let id = held[idx].id();
                        crash_on_thread(held.swap_remove(idx));
                        let back = pool.acquire_exact(id);
                        prop_assert!(back.is_some(),
                            "slot {} not reclaimable after thread death", id);
                        drop(back);
                    }
                }
            }
            let ids: HashSet<usize> = held.iter().map(|g| g.id()).collect();
            prop_assert_eq!(ids.len(), held.len(), "duplicate live IDs");
            prop_assert_eq!(pool.in_use(), held.len(),
                "slots leaked or double-released");
        }
        // Quiescence: dropping the survivors empties the pool entirely.
        drop(held);
        prop_assert_eq!(pool.in_use(), 0);
    }

    /// Churn entirely made of crashing workers: a pool survives its full
    /// capacity being claimed and crash-released many times over, which
    /// is the §3.3 requirement that thread death not permanently consume
    /// names from the (small) namespace.
    #[test]
    fn sustained_crash_churn_keeps_full_capacity(capacity in 1usize..8) {
        quiet_simulated_crashes();
        let pool = IdPool::new(capacity);
        for _round in 0..6 {
            let guards: Vec<_> = (0..capacity)
                .map(|_| pool.acquire().expect("full capacity available"))
                .collect();
            prop_assert!(pool.acquire().is_none());
            std::thread::scope(|s| {
                let workers: Vec<_> = guards
                    .into_iter()
                    .map(|g| {
                        s.spawn(move || {
                            let _held_to_the_grave = g;
                            panic::panic_any(SimulatedCrash);
                        })
                    })
                    .collect();
                // Join (and thereby acknowledge) every planned death —
                // an unjoined panicked scoped thread re-panics the scope.
                for w in workers {
                    w.join().expect_err("worker must die");
                }
            });
            prop_assert_eq!(pool.in_use(), 0, "crashed workers leaked slots");
        }
    }
}
