//! Wait-free *long-lived renaming*: a fixed pool of small integer IDs.
//!
//! The Kogan–Petrank queue (like most helping-based wait-free algorithms)
//! assumes each thread owns a unique ID in `0..NUM_THRDS`, used to index
//! the shared `state` array. Section 3.3 of the paper notes that this
//! assumption can be relaxed for applications with dynamically created
//! threads by acquiring and releasing *virtual* IDs from a small name
//! space through a long-lived renaming algorithm.
//!
//! [`IdPool`] is such an algorithm: `capacity` slots, each claimed with a
//! single CAS. [`IdPool::acquire`] scans at most `capacity` slots, so it
//! completes in a bounded number of steps regardless of other threads —
//! it is wait-free. A rotating start hint spreads concurrent acquirers
//! across the slot array to keep the common case at one CAS.
//!
//! # Leases and reaping
//!
//! Each slot packs a **generation counter** next to its state, and a
//! claim is a *lease* on `(id, generation)` rather than plain ownership:
//!
//! * [`IdPool::acquire`] claims `Free(g)` → `Claimed(g)` and the
//!   returned [`IdGuard`] remembers `g`.
//! * [`IdGuard`]'s drop releases with a CAS `Claimed(g)` → `Free(g+1)`.
//!   If the CAS fails the lease was already revoked (the slot was
//!   reaped, and possibly re-acquired at a later generation) and the
//!   release is a **no-op** — a stale guard can never free a successor's
//!   claim.
//! * A reaper revokes an abandoned lease with
//!   [`IdPool::begin_reap`] (`Claimed(g)` → `Reaping(g)`, granting it
//!   exclusive reap rights for generation `g`) and completes with
//!   [`IdPool::finish_reap`] (`Reaping(g)` → `Free(g+1)`). If the reaper
//!   itself dies mid-reap, a successor takes over with
//!   [`IdPool::takeover_reap`] (`Reaping(g)` → `Reaping(g+1)`): the
//!   generation bump means exactly one successor wins and the original
//!   reaper's `finish_reap(g)` becomes a harmless no-op.
//!
//! Every transition is a single bounded CAS, so the pool stays wait-free.
//! The generation is 62 bits wide; wrap-around is not a practical
//! concern (it would take centuries of continuous churn on one slot).
//!
//! ```
//! use idpool::{IdPool, SlotState};
//!
//! let pool = IdPool::new(4);
//! let a = pool.acquire().unwrap();
//! let b = pool.acquire().unwrap();
//! assert_ne!(a.id(), b.id());
//! drop(a); // slot is released and may be re-acquired
//! assert_eq!(pool.in_use(), 1);
//! let view = pool.inspect(b.id()).unwrap();
//! assert_eq!(view.state, SlotState::Claimed);
//! ```

#![warn(missing_docs)]

use std::fmt;
use kp_sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use kp_sync::CachePadded;

// Fault-injection sites (`idpool.acquire` / `idpool.release`), compiled
// away unless the `chaos` feature is on — see the `chaos` crate.
#[cfg(feature = "chaos")]
macro_rules! inject {
    ($site:expr) => {
        ::chaos::hit($site)
    };
}
#[cfg(not(feature = "chaos"))]
macro_rules! inject {
    ($site:expr) => {};
}

/// Slot states, packed into the low bits of each slot word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// Unclaimed; `acquire` may take it.
    Free,
    /// Leased to a live [`IdGuard`] (or to a holder that abandoned it —
    /// the pool cannot tell; that is what reaping is for).
    Claimed,
    /// A reaper holds exclusive reap rights and is tearing the previous
    /// lease down.
    Reaping,
}

/// A snapshot of one slot: its state and lease generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotView {
    /// Current lease generation of the slot.
    pub generation: u64,
    /// Current state of the slot.
    pub state: SlotState,
}

const STATE_BITS: u32 = 2;
const STATE_MASK: u64 = 0b11;
const FREE: u64 = 0;
const CLAIMED: u64 = 1;
const REAPING: u64 = 2;

#[inline]
const fn pack(generation: u64, state: u64) -> u64 {
    (generation << STATE_BITS) | state
}

#[inline]
const fn generation_of(word: u64) -> u64 {
    word >> STATE_BITS
}

#[inline]
const fn state_of(word: u64) -> u64 {
    word & STATE_MASK
}

fn decode(word: u64) -> SlotView {
    let state = match state_of(word) {
        FREE => SlotState::Free,
        CLAIMED => SlotState::Claimed,
        REAPING => SlotState::Reaping,
        // INVARIANT: only the three constants above are ever stored
        // (every transition goes through pack() with one of them); the
        // fourth bit pattern is unreachable.
        _ => {
            debug_assert!(false, "corrupt idpool slot word {word:#x}");
            SlotState::Claimed
        }
    };
    SlotView {
        generation: generation_of(word),
        state,
    }
}

/// A fixed-capacity pool of reusable small integer IDs with lease
/// generations (see the crate docs for the reap protocol).
///
/// All operations are wait-free: `acquire` performs at most one CAS per
/// slot and visits each slot at most once; every other transition is a
/// single CAS.
pub struct IdPool {
    /// Packed `(generation << 2) | state` per slot. One cache line per
    /// slot so that releases by one thread do not invalidate the line
    /// another thread is probing.
    slots: Box<[CachePadded<AtomicU64>]>,
    /// Rotating hint for where the next acquirer should start probing.
    next_hint: CachePadded<AtomicUsize>,
}

impl IdPool {
    /// Creates a pool with IDs `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IdPool capacity must be positive");
        let slots = (0..capacity)
            .map(|_| CachePadded::new(AtomicU64::new(pack(0, FREE))))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        IdPool {
            slots,
            next_hint: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of IDs managed by this pool.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of IDs currently claimed or mid-reap. Linearizable only in
    /// quiescent states; intended for diagnostics and tests.
    pub fn in_use(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| state_of(s.load(Ordering::Acquire)) != FREE)
            .count()
    }

    /// A snapshot of slot `id`'s state and generation, or `None` when
    /// `id` is out of range. Advisory: the slot may change immediately
    /// after the load; act on it only through the CAS-based transitions.
    pub fn inspect(&self, id: usize) -> Option<SlotView> {
        let slot = self.slots.get(id)?;
        Some(decode(slot.load(Ordering::Acquire)))
    }

    /// True when the lease `(id, generation)` is still the slot's
    /// current `Claimed` lease. Used by lease holders to detect that
    /// they were reaped out from under themselves (a lease-contract
    /// violation — see `begin_reap`).
    pub fn lease_holds(&self, id: usize, generation: u64) -> bool {
        self.inspect(id)
            .is_some_and(|v| v.state == SlotState::Claimed && v.generation == generation)
    }

    /// Claims a free ID, returning a guard that releases it on drop.
    ///
    /// Returns `None` if every slot is claimed at the instant each was
    /// probed. Wait-free: at most `capacity` CAS attempts.
    pub fn acquire(&self) -> Option<IdGuard<'_>> {
        inject!("idpool.acquire");
        let n = self.slots.len();
        // Relaxed is fine for a pure performance hint.
        let start = self.next_hint.fetch_add(1, Ordering::Relaxed) % n;
        for probe in 0..n {
            let i = (start + probe) % n;
            if let Some(generation) = self.try_claim(i) {
                return Some(IdGuard {
                    pool: self,
                    id: i,
                    generation,
                });
            }
        }
        None
    }

    /// Claims a *specific* ID if free. Useful for deterministic tests.
    pub fn acquire_exact(&self, id: usize) -> Option<IdGuard<'_>> {
        if id >= self.slots.len() {
            return None;
        }
        self.try_claim(id).map(|generation| IdGuard {
            pool: self,
            id,
            generation,
        })
    }

    /// One claim attempt on slot `i`: `Free(g)` → `Claimed(g)`.
    fn try_claim(&self, i: usize) -> Option<u64> {
        let word = self.slots[i].load(Ordering::Acquire);
        if state_of(word) != FREE {
            return None;
        }
        let generation = generation_of(word);
        self.slots[i]
            .compare_exchange(
                word,
                pack(generation, CLAIMED),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .ok()
            .map(|_| generation)
    }

    /// `Claimed(g)` → `Free(g+1)`. A failed CAS means the lease was
    /// already revoked by a reaper (and the slot possibly re-acquired at
    /// a later generation): the release is deliberately a no-op then, so
    /// a stale guard can never free a successor's claim.
    fn release(&self, id: usize, generation: u64) {
        inject!("idpool.release");
        debug_assert!(id < self.slots.len());
        let _ = self.slots[id].compare_exchange(
            pack(generation, CLAIMED),
            pack(generation + 1, FREE),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }

    /// Revokes an abandoned lease: `Claimed(generation)` → `Reaping
    /// (generation)`. Success grants the caller *exclusive* reap rights
    /// for this generation; it must eventually call
    /// [`finish_reap`](IdPool::finish_reap) with the same generation
    /// (or die and be taken over via
    /// [`takeover_reap`](IdPool::takeover_reap)).
    ///
    /// Returns `false` when the slot is no longer `Claimed(generation)`
    /// — the holder released it, another reaper got there first, or the
    /// generation moved on.
    pub fn begin_reap(&self, id: usize, generation: u64) -> bool {
        if id >= self.slots.len() {
            return false;
        }
        self.slots[id]
            .compare_exchange(
                pack(generation, CLAIMED),
                pack(generation, REAPING),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Completes a reap: `Reaping(generation)` → `Free(generation+1)`.
    /// Returns `false` when the reap was taken over (the generation
    /// moved on) — the caller lost its reap rights and must not treat
    /// the slot as its own.
    pub fn finish_reap(&self, id: usize, generation: u64) -> bool {
        if id >= self.slots.len() {
            return false;
        }
        self.slots[id]
            .compare_exchange(
                pack(generation, REAPING),
                pack(generation + 1, FREE),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Adopts a reap whose reaper appears dead: `Reaping(generation)` →
    /// `Reaping(generation+1)`. The generation bump guarantees at most
    /// one successor wins; the original reaper's
    /// [`finish_reap`](IdPool::finish_reap)`(generation)` then fails
    /// harmlessly. On success returns the new generation the caller now
    /// owns (pass it to `finish_reap`).
    pub fn takeover_reap(&self, id: usize, generation: u64) -> Option<u64> {
        if id >= self.slots.len() {
            return None;
        }
        self.slots[id]
            .compare_exchange(
                pack(generation, REAPING),
                pack(generation + 1, REAPING),
                Ordering::AcqRel,
                Ordering::Relaxed,
            )
            .ok()
            .map(|_| generation + 1)
    }
}

impl fmt::Debug for IdPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdPool")
            .field("capacity", &self.capacity())
            .field("in_use", &self.in_use())
            .finish()
    }
}

/// RAII guard for a claimed ID. Releasing happens on drop and is a
/// no-op if the lease was reaped in the meantime (stale-release
/// protection — see the crate docs).
pub struct IdGuard<'p> {
    pool: &'p IdPool,
    id: usize,
    generation: u64,
}

impl IdGuard<'_> {
    /// The claimed ID, in `0..pool.capacity()`.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The lease generation this guard holds.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// True while this guard's lease has not been revoked by a reaper.
    pub fn lease_holds(&self) -> bool {
        self.pool.lease_holds(self.id, self.generation)
    }
}

impl Drop for IdGuard<'_> {
    fn drop(&mut self) {
        self.pool.release(self.id, self.generation);
    }
}

impl fmt::Debug for IdGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdGuard")
            .field("id", &self.id)
            .field("generation", &self.generation)
            .finish()
    }
}

// SAFETY: An IdGuard can be moved to (and dropped on) another thread; the pool it
// references is Sync.
unsafe impl Send for IdGuard<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Barrier;

    #[test]
    fn acquire_all_then_exhausted() {
        let pool = IdPool::new(3);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        let c = pool.acquire().unwrap();
        let ids: HashSet<_> = [a.id(), b.id(), c.id()].into_iter().collect();
        assert_eq!(ids.len(), 3, "all IDs distinct");
        assert!(ids.iter().all(|&i| i < 3));
        assert!(pool.acquire().is_none(), "pool exhausted");
        drop(b);
        let d = pool.acquire().expect("released slot is reusable");
        assert!(d.id() < 3);
    }

    #[test]
    fn acquire_exact() {
        let pool = IdPool::new(4);
        let g = pool.acquire_exact(2).unwrap();
        assert_eq!(g.id(), 2);
        assert!(pool.acquire_exact(2).is_none(), "slot 2 already claimed");
        assert!(pool.acquire_exact(99).is_none(), "out of range");
        drop(g);
        assert_eq!(pool.acquire_exact(2).unwrap().id(), 2);
    }

    #[test]
    fn in_use_counts() {
        let pool = IdPool::new(8);
        assert_eq!(pool.in_use(), 0);
        let guards: Vec<_> = (0..5).map(|_| pool.acquire().unwrap()).collect();
        assert_eq!(pool.in_use(), 5);
        drop(guards);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = IdPool::new(0);
    }

    #[test]
    fn generations_advance_per_lease() {
        let pool = IdPool::new(1);
        let a = pool.acquire_exact(0).unwrap();
        assert_eq!(a.generation(), 0);
        drop(a);
        let b = pool.acquire_exact(0).unwrap();
        assert_eq!(b.generation(), 1, "release bumps the generation");
        assert!(b.lease_holds());
    }

    #[test]
    fn reap_protocol_roundtrip() {
        let pool = IdPool::new(2);
        let g = pool.acquire_exact(0).unwrap();
        let generation = g.generation();
        std::mem::forget(g); // abandon the lease (guard never drops)

        assert!(pool.begin_reap(0, generation));
        assert!(
            !pool.begin_reap(0, generation),
            "reap rights are exclusive"
        );
        assert_eq!(
            pool.inspect(0).unwrap(),
            SlotView {
                generation,
                state: SlotState::Reaping
            }
        );
        assert!(!pool.lease_holds(0, generation), "lease revoked");
        assert!(pool.finish_reap(0, generation));
        let next = pool.acquire_exact(0).expect("reaped slot is reusable");
        assert_eq!(next.generation(), generation + 1);
    }

    #[test]
    fn stale_release_after_reap_is_noop() {
        // The satellite-task scenario: a holder stalls past its lease,
        // gets reaped, the slot is re-acquired — and then the original
        // guard finally drops. The stale release must not disturb the
        // new lease.
        let pool = IdPool::new(1);
        let stalled = pool.acquire_exact(0).unwrap();
        assert!(pool.begin_reap(0, stalled.generation()));
        assert!(pool.finish_reap(0, stalled.generation()));
        let successor = pool.acquire_exact(0).unwrap();
        assert_eq!(successor.generation(), 1);

        drop(stalled); // stale release: CAS on generation 0 fails, no-op
        assert!(successor.lease_holds(), "successor's lease untouched");
        assert_eq!(pool.in_use(), 1);
        drop(successor);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.acquire_exact(0).unwrap().generation(), 2);
    }

    #[test]
    fn reap_takeover_bumps_generation_exactly_once() {
        let pool = IdPool::new(1);
        let g = pool.acquire_exact(0).unwrap();
        let g0 = g.generation();
        std::mem::forget(g);

        assert!(pool.begin_reap(0, g0)); // reaper A
        let g1 = pool.takeover_reap(0, g0).expect("reaper B adopts"); // A died
        assert_eq!(g1, g0 + 1);
        assert!(
            pool.takeover_reap(0, g0).is_none(),
            "only one successor wins a takeover"
        );
        assert!(!pool.finish_reap(0, g0), "A's finish is a stale no-op");
        assert!(pool.finish_reap(0, g1), "B completes the reap");
        assert_eq!(pool.acquire_exact(0).unwrap().generation(), g1 + 1);
    }

    #[test]
    fn begin_reap_fails_on_free_or_stale_slots() {
        let pool = IdPool::new(2);
        assert!(!pool.begin_reap(0, 0), "cannot reap a free slot");
        let g = pool.acquire_exact(0).unwrap();
        assert!(!pool.begin_reap(0, g.generation() + 1), "wrong generation");
        assert!(!pool.begin_reap(99, 0), "out of range");
        drop(g);
        assert!(!pool.begin_reap(0, 0), "released slot is not reapable");
    }

    #[test]
    fn concurrent_acquire_is_unique() {
        const THREADS: usize = 16;
        let pool = IdPool::new(THREADS);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let mut seen = Vec::new();
                        for _ in 0..1000 {
                            let g = pool.acquire().expect("capacity == thread count");
                            seen.push(g.id());
                        }
                        seen
                    })
                })
                .collect();
            for h in handles {
                let ids = h.join().unwrap();
                assert!(ids.iter().all(|&i| i < THREADS));
            }
        });
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn oversubscribed_acquire_never_duplicates() {
        // More threads than slots: some acquires fail, but no two live
        // guards ever share an ID. We check by having each holder write
        // its thread token into a table slot and verify it is unchanged
        // before release.
        const SLOTS: usize = 4;
        const THREADS: usize = 12;
        let pool = IdPool::new(SLOTS);
        let owner: Vec<AtomicUsize> = (0..SLOTS).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pool = &pool;
                let owner = &owner;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..2000 {
                        if let Some(g) = pool.acquire() {
                            owner[g.id()].store(t, Ordering::SeqCst);
                            std::hint::spin_loop();
                            assert_eq!(
                                owner[g.id()].load(Ordering::SeqCst),
                                t,
                                "two guards alive for the same ID"
                            );
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn concurrent_reap_race_single_winner() {
        // Many threads race begin_reap on the same abandoned lease; the
        // protocol must elect exactly one reaper.
        const THREADS: usize = 8;
        for _ in 0..200 {
            let pool = IdPool::new(1);
            let g = pool.acquire_exact(0).unwrap();
            let generation = g.generation();
            std::mem::forget(g);
            let barrier = Barrier::new(THREADS);
            let wins = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..THREADS {
                    let pool = &pool;
                    let barrier = &barrier;
                    let wins = &wins;
                    s.spawn(move || {
                        barrier.wait();
                        if pool.begin_reap(0, generation) {
                            wins.fetch_add(1, Ordering::SeqCst);
                            assert!(pool.finish_reap(0, generation));
                        }
                    });
                }
            });
            assert_eq!(wins.load(Ordering::SeqCst), 1, "exactly one reaper");
            assert_eq!(pool.acquire_exact(0).unwrap().generation(), generation + 1);
        }
    }
}
