//! Wait-free *long-lived renaming*: a fixed pool of small integer IDs.
//!
//! The Kogan–Petrank queue (like most helping-based wait-free algorithms)
//! assumes each thread owns a unique ID in `0..NUM_THRDS`, used to index
//! the shared `state` array. Section 3.3 of the paper notes that this
//! assumption can be relaxed for applications with dynamically created
//! threads by acquiring and releasing *virtual* IDs from a small name
//! space through a long-lived renaming algorithm.
//!
//! [`IdPool`] is such an algorithm: `capacity` slots, each claimed with a
//! single CAS. [`IdPool::acquire`] scans at most `capacity` slots, so it
//! completes in a bounded number of steps regardless of other threads —
//! it is wait-free. A rotating start hint spreads concurrent acquirers
//! across the slot array to keep the common case at one CAS.
//!
//! ```
//! use idpool::IdPool;
//!
//! let pool = IdPool::new(4);
//! let a = pool.acquire().unwrap();
//! let b = pool.acquire().unwrap();
//! assert_ne!(a.id(), b.id());
//! drop(a); // slot is released and may be re-acquired
//! assert_eq!(pool.in_use(), 1);
//! ```

#![warn(missing_docs)]

use std::fmt;
use kp_sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use kp_sync::CachePadded;

// Fault-injection sites (`idpool.acquire` / `idpool.release`), compiled
// away unless the `chaos` feature is on — see the `chaos` crate.
#[cfg(feature = "chaos")]
macro_rules! inject {
    ($site:expr) => {
        ::chaos::hit($site)
    };
}
#[cfg(not(feature = "chaos"))]
macro_rules! inject {
    ($site:expr) => {};
}

/// A fixed-capacity pool of reusable small integer IDs.
///
/// All operations are wait-free: `acquire` performs at most one CAS per
/// slot and visits each slot at most once; `release` is a single store.
pub struct IdPool {
    /// `true` = slot is claimed. One cache line per slot so that releases
    /// by one thread do not invalidate the line another thread is probing.
    slots: Box<[CachePadded<AtomicBool>]>,
    /// Rotating hint for where the next acquirer should start probing.
    next_hint: CachePadded<AtomicUsize>,
}

impl IdPool {
    /// Creates a pool with IDs `0..capacity`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "IdPool capacity must be positive");
        let slots = (0..capacity)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        IdPool {
            slots,
            next_hint: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Number of IDs managed by this pool.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of IDs currently claimed. Linearizable only in quiescent
    /// states; intended for diagnostics and tests.
    pub fn in_use(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Acquire))
            .count()
    }

    /// Claims a free ID, returning a guard that releases it on drop.
    ///
    /// Returns `None` if every slot is claimed at the instant each was
    /// probed. Wait-free: at most `capacity` CAS attempts.
    pub fn acquire(&self) -> Option<IdGuard<'_>> {
        inject!("idpool.acquire");
        let n = self.slots.len();
        // Relaxed is fine for a pure performance hint.
        let start = self.next_hint.fetch_add(1, Ordering::Relaxed) % n;
        for probe in 0..n {
            let i = (start + probe) % n;
            if self.slots[i]
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                return Some(IdGuard { pool: self, id: i });
            }
        }
        None
    }

    /// Claims a *specific* ID if free. Useful for deterministic tests.
    pub fn acquire_exact(&self, id: usize) -> Option<IdGuard<'_>> {
        if id >= self.slots.len() {
            return None;
        }
        self.slots[id]
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .ok()
            .map(|_| IdGuard { pool: self, id })
    }

    fn release(&self, id: usize) {
        inject!("idpool.release");
        debug_assert!(id < self.slots.len());
        let was = self.slots[id].swap(false, Ordering::AcqRel);
        debug_assert!(was, "released an ID ({id}) that was not claimed");
    }
}

impl fmt::Debug for IdPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdPool")
            .field("capacity", &self.capacity())
            .field("in_use", &self.in_use())
            .finish()
    }
}

/// RAII guard for a claimed ID. Releasing happens on drop.
pub struct IdGuard<'p> {
    pool: &'p IdPool,
    id: usize,
}

impl IdGuard<'_> {
    /// The claimed ID, in `0..pool.capacity()`.
    pub fn id(&self) -> usize {
        self.id
    }
}

impl Drop for IdGuard<'_> {
    fn drop(&mut self) {
        self.pool.release(self.id);
    }
}

impl fmt::Debug for IdGuard<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdGuard").field("id", &self.id).finish()
    }
}

// SAFETY: An IdGuard can be moved to (and dropped on) another thread; the pool it
// references is Sync.
unsafe impl Send for IdGuard<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Barrier;

    #[test]
    fn acquire_all_then_exhausted() {
        let pool = IdPool::new(3);
        let a = pool.acquire().unwrap();
        let b = pool.acquire().unwrap();
        let c = pool.acquire().unwrap();
        let ids: HashSet<_> = [a.id(), b.id(), c.id()].into_iter().collect();
        assert_eq!(ids.len(), 3, "all IDs distinct");
        assert!(ids.iter().all(|&i| i < 3));
        assert!(pool.acquire().is_none(), "pool exhausted");
        drop(b);
        let d = pool.acquire().expect("released slot is reusable");
        assert!(d.id() < 3);
    }

    #[test]
    fn acquire_exact() {
        let pool = IdPool::new(4);
        let g = pool.acquire_exact(2).unwrap();
        assert_eq!(g.id(), 2);
        assert!(pool.acquire_exact(2).is_none(), "slot 2 already claimed");
        assert!(pool.acquire_exact(99).is_none(), "out of range");
        drop(g);
        assert_eq!(pool.acquire_exact(2).unwrap().id(), 2);
    }

    #[test]
    fn in_use_counts() {
        let pool = IdPool::new(8);
        assert_eq!(pool.in_use(), 0);
        let guards: Vec<_> = (0..5).map(|_| pool.acquire().unwrap()).collect();
        assert_eq!(pool.in_use(), 5);
        drop(guards);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        let _ = IdPool::new(0);
    }

    #[test]
    fn concurrent_acquire_is_unique() {
        const THREADS: usize = 16;
        let pool = IdPool::new(THREADS);
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let mut seen = Vec::new();
                        for _ in 0..1000 {
                            let g = pool.acquire().expect("capacity == thread count");
                            seen.push(g.id());
                        }
                        seen
                    })
                })
                .collect();
            for h in handles {
                let ids = h.join().unwrap();
                assert!(ids.iter().all(|&i| i < THREADS));
            }
        });
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn oversubscribed_acquire_never_duplicates() {
        // More threads than slots: some acquires fail, but no two live
        // guards ever share an ID. We check by having each holder write
        // its thread token into a table slot and verify it is unchanged
        // before release.
        const SLOTS: usize = 4;
        const THREADS: usize = 12;
        let pool = IdPool::new(SLOTS);
        let owner: Vec<AtomicUsize> = (0..SLOTS).map(|_| AtomicUsize::new(usize::MAX)).collect();
        let barrier = Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let pool = &pool;
                let owner = &owner;
                let barrier = &barrier;
                s.spawn(move || {
                    barrier.wait();
                    for _ in 0..2000 {
                        if let Some(g) = pool.acquire() {
                            owner[g.id()].store(t, Ordering::SeqCst);
                            std::hint::spin_loop();
                            assert_eq!(
                                owner[g.id()].load(Ordering::SeqCst),
                                t,
                                "two guards alive for the same ID"
                            );
                        }
                    }
                });
            }
        });
    }
}
