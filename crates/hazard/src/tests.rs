//! Unit tests for the hazard-pointer domain.

use kp_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use crate::Domain;

/// An object whose drop increments a shared counter.
struct Counting {
    drops: Arc<AtomicUsize>,
    #[allow(dead_code)]
    payload: u64,
}

impl Drop for Counting {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

fn counting(drops: &Arc<AtomicUsize>) -> *mut Counting {
    Box::into_raw(Box::new(Counting {
        drops: drops.clone(),
        payload: 7,
    }))
}

#[test]
fn retire_without_hazard_reclaims_on_scan() {
    let drops = Arc::new(AtomicUsize::new(0));
    let domain = Domain::new(2);
    let mut p = domain.enter();
    for _ in 0..10 {
        // SAFETY: counting() leaks a fresh Box; each is retired exactly once.
        unsafe { p.retire(counting(&drops)) };
    }
    assert_eq!(drops.load(Ordering::SeqCst), 0, "below threshold: parked");
    p.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 10);
    assert_eq!(p.reclaimed(), 10);
}

#[test]
fn protected_object_survives_scan() {
    let drops = Arc::new(AtomicUsize::new(0));
    let domain = Domain::new(1);
    let obj = counting(&drops);
    let shared = AtomicPtr::new(obj);

    let protector = domain.enter();
    let mut retirer = domain.enter();

    let got = protector.protect(0, &shared);
    assert_eq!(got, obj);

    // Unlink and retire while the other participant holds protection.
    let old = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
    // SAFETY: `old` was unlinked from `shared`; retired exactly once.
    unsafe { retirer.retire(old) };
    retirer.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 0, "hazard must block reclaim");
    assert_eq!(retirer.retired_len(), 1);

    protector.clear(0);
    retirer.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 1, "cleared hazard frees it");
}

#[test]
fn threshold_triggers_automatic_scan() {
    let drops = Arc::new(AtomicUsize::new(0));
    let domain = Domain::new(1);
    let mut p = domain.enter();
    let threshold = domain.scan_threshold();
    for _ in 0..threshold {
        // SAFETY: counting() leaks a fresh Box; each is retired exactly once.
        unsafe { p.retire(counting(&drops)) };
    }
    assert_eq!(
        drops.load(Ordering::SeqCst),
        threshold,
        "hitting the threshold must reclaim everything unprotected"
    );
}

#[test]
fn domain_drop_frees_orphans() {
    let drops = Arc::new(AtomicUsize::new(0));
    {
        let domain = Domain::new(1);
        let holder = domain.enter(); // keeps a hazard so the retirer can't free
        let obj = counting(&drops);
        let shared = AtomicPtr::new(obj);
        let got = holder.protect(0, &shared);
        assert!(!got.is_null());

        {
            let mut retirer = domain.enter();
            // SAFETY: the swapped-out pointer is unlinked; retired exactly once.
            unsafe { retirer.retire(shared.swap(std::ptr::null_mut(), Ordering::AcqRel)) };
            // retirer drops here; the protected object becomes an orphan.
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(holder);
        // Domain drop adopts orphans and frees them.
    }
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}

#[test]
fn record_reuse_after_departure() {
    let domain = Domain::new(1);
    {
        let _a = domain.enter();
        let _b = domain.enter();
        assert_eq!(domain.total_slots(), 2);
    }
    // Both departed: re-entering should reuse records, not grow the list.
    let _c = domain.enter();
    let _d = domain.enter();
    assert_eq!(domain.total_slots(), 2, "records must be recycled");
}

#[test]
fn orphans_adopted_by_next_scan() {
    let drops = Arc::new(AtomicUsize::new(0));
    let domain = Domain::new(1);
    let holder = domain.enter();
    let obj = counting(&drops);
    let shared = AtomicPtr::new(obj);
    holder.protect(0, &shared);
    {
        let mut retirer = domain.enter();
        // SAFETY: the swapped-out pointer is unlinked; retired exactly once.
        unsafe { retirer.retire(shared.swap(std::ptr::null_mut(), Ordering::AcqRel)) };
    } // orphaned, still protected
    holder.clear(0);
    let mut adopter = domain.enter();
    adopter.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 1, "adopter frees the orphan");
}

#[test]
fn protect_follows_moving_pointer() {
    // protect() must re-validate: if the source changes between load and
    // hazard publish, it retries with the new value.
    let domain = Domain::new(1);
    let a = Box::into_raw(Box::new(1u64));
    let shared = AtomicPtr::new(a);
    let p = domain.enter();
    let got = p.protect(0, &shared);
    assert_eq!(got, a);
    // SAFETY: single-threaded test; `a` is unlinked and dropped exactly once.
    unsafe { drop(Box::from_raw(a)) };
}

#[test]
fn concurrent_stress_no_use_after_free() {
    // Threads repeatedly publish a fresh object into a shared cell,
    // retiring the displaced one, while readers protect-and-read. Any
    // use-after-free would be seen as a wrong payload (under ASan/MIRI it
    // would abort; here we rely on the payload check plus drop counts).
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const OPS: usize = if cfg!(debug_assertions) { 3_000 } else { 20_000 };

    let drops = Arc::new(AtomicUsize::new(0));
    let domain = Domain::new(1);
    let shared = AtomicPtr::new(counting(&drops));
    let barrier = Barrier::new(WRITERS + READERS);
    let created = AtomicUsize::new(1);

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            s.spawn(|| {
                let mut p = domain.enter();
                barrier.wait();
                for _ in 0..OPS {
                    let fresh = counting(&drops);
                    created.fetch_add(1, Ordering::Relaxed);
                    let old = shared.swap(fresh, Ordering::AcqRel);
                    // SAFETY: `old` was just unlinked by the swap; retired exactly once.
                    unsafe { p.retire(old) };
                }
            });
        }
        for _ in 0..READERS {
            s.spawn(|| {
                let p = domain.enter();
                barrier.wait();
                for _ in 0..OPS {
                    let obj = p.protect(0, &shared);
                    // SAFETY: protected by hazard slot 0.
                    let val = unsafe { (*obj).payload };
                    assert_eq!(val, 7, "payload corrupted: use-after-free");
                    p.clear(0);
                }
            });
        }
    });

    // Free the final resident object.
    let last = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
    // SAFETY: all threads joined; `last` is the only remaining object.
    unsafe { drop(Box::from_raw(last)) };
    drop(domain);
    assert_eq!(
        drops.load(Ordering::SeqCst),
        created.load(Ordering::Relaxed),
        "every created object must be dropped exactly once"
    );
}

#[test]
fn quarantine_clears_abandoned_hazards_and_recycles_the_record() {
    // A participant publishes a hazard and is then leaked (its
    // destructor never runs): the hazard pins the retired object and
    // the record stays claimed forever. Quarantine must undo both.
    let drops = Arc::new(AtomicUsize::new(0));
    let domain = Domain::new(1);

    let obj = counting(&drops);
    let shared = AtomicPtr::new(obj);
    let abandoned = domain.enter();
    abandoned.protect(0, &shared);
    let token = abandoned.record_token();
    assert!(token != 0);
    std::mem::forget(abandoned); // leaked: Drop never clears the slot

    let mut retirer = domain.enter();
    // SAFETY: swapped out of `shared`; retired exactly once.
    unsafe { retirer.retire(shared.swap(std::ptr::null_mut(), Ordering::AcqRel)) };
    retirer.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 0, "leaked hazard still pins");

    // SAFETY: the leaked participant is unreachable — forget() consumed
    // the only handle to it; no code can ever use its record again.
    assert!(unsafe { domain.quarantine(token) });
    retirer.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 1, "quarantine unpins");

    // SAFETY: same leaked participant as above; still unreachable.
    assert!(
        !unsafe { domain.quarantine(token) },
        "second quarantine is a no-op (record already returned)"
    );
    // SAFETY: 0 never names a participant; the call must refuse it.
    assert!(!unsafe { domain.quarantine(0) }, "token 0 is never valid");

    // The quarantined record is adoptable: re-entering must not grow
    // the record list.
    let slots_before = domain.total_slots();
    let adopter = domain.enter();
    assert_eq!(domain.total_slots(), slots_before, "record recycled");
    drop(adopter);
    drop(retirer);
}

#[test]
fn two_domains_are_isolated() {
    // A hazard in domain A must not block reclamation in domain B.
    let drops = Arc::new(AtomicUsize::new(0));
    let da = Domain::new(1);
    let db = Domain::new(1);

    let obj = counting(&drops);
    let shared = AtomicPtr::new(obj);
    let pa = da.enter();
    pa.protect(0, &shared); // protected in A only

    let mut pb = db.enter();
    // SAFETY: swapped out of `shared`; retired exactly once.
    unsafe { pb.retire(shared.swap(std::ptr::null_mut(), Ordering::AcqRel)) };
    pb.scan();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        1,
        "domain B ignores domain A's hazards (objects must not straddle domains)"
    );
}
