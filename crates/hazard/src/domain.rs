//! The global state of a hazard-pointer instance: the record list and the
//! orphaned-retired stack.

use std::ptr;
use kp_sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

use crate::participant::Participant;
use crate::retired::Retired;

/// One thread's entry in the domain: `K` hazard slots plus an `active`
/// flag used to hand records from departed threads to new ones.
pub(crate) struct Record {
    /// Next record in the grow-only global list.
    pub(crate) next: *mut Record,
    /// Claimed by a live participant?
    pub(crate) active: AtomicBool,
    /// The hazard slots. Null = slot empty.
    pub(crate) hazards: Box<[AtomicPtr<u8>]>,
}

/// A batch of retired objects abandoned by a departing participant,
/// stacked on the domain for adoption.
struct OrphanBatch {
    next: *mut OrphanBatch,
    retired: Vec<Retired>,
}

/// An independent hazard-pointer universe.
///
/// Objects retired in one domain are only checked against hazard slots of
/// the *same* domain, so each data structure (or group of structures
/// sharing nodes) should use its own domain.
pub struct Domain {
    /// Head of the grow-only record list.
    records: AtomicPtr<Record>,
    /// Hazard slots per record (`K`).
    slots_per_record: usize,
    /// Total records ever created; `H = slots_per_record * record_count`.
    record_count: AtomicUsize,
    /// Retired lists abandoned by departed participants.
    orphans: AtomicPtr<OrphanBatch>,
}

// SAFETY: all shared state is atomics; raw pointers are only dereferenced
// under the protocol documented on each method.
unsafe impl Send for Domain {}
// SAFETY: as for Send — all shared access is through atomics.
unsafe impl Sync for Domain {}

impl Domain {
    /// Creates a domain whose participants each get `slots_per_record`
    /// hazard slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots_per_record` is zero.
    pub fn new(slots_per_record: usize) -> Self {
        assert!(slots_per_record > 0, "need at least one hazard slot");
        Domain {
            records: AtomicPtr::new(ptr::null_mut()),
            slots_per_record,
            record_count: AtomicUsize::new(0),
            orphans: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Number of hazard slots per participant.
    pub fn slots_per_record(&self) -> usize {
        self.slots_per_record
    }

    /// Total hazard slots in the domain (`H` in Michael's analysis).
    pub fn total_slots(&self) -> usize {
        self.record_count.load(Ordering::Acquire) * self.slots_per_record
    }

    /// Joins the domain, claiming (or creating) a hazard record.
    ///
    /// Wait-free: reusing scans the finite record list with one CAS per
    /// record; appending is a bounded-retry CAS loop only contended by
    /// other *new* records (and in any case bounded by the number of
    /// concurrent joiners, a property we accept as "wait-free for all
    /// practical purposes", exactly like the paper's phase counter).
    pub fn enter(&self) -> Participant<'_> {
        // Try to adopt an inactive record first.
        let mut cur = self.records.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records are never freed while the domain is alive.
            let rec = unsafe { &*cur };
            if !rec.active.load(Ordering::Relaxed)
                && rec
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return Participant::new(self, cur);
            }
            cur = rec.next;
        }
        // Allocate and push a fresh record.
        let hazards = (0..self.slots_per_record)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let rec = Box::into_raw(Box::new(Record {
            next: ptr::null_mut(),
            active: AtomicBool::new(true),
            hazards,
        }));
        let mut head = self.records.load(Ordering::Acquire);
        loop {
            // SAFETY: `rec` is not yet shared.
            unsafe { (*rec).next = head };
            match self
                .records
                .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.record_count.fetch_add(1, Ordering::AcqRel);
        Participant::new(self, rec)
    }

    /// Snapshot of every non-null hazard pointer in the domain, sorted
    /// (and deduplicated) for binary search, written into a caller-owned
    /// buffer so a steady-state scan allocates nothing — the buffer
    /// amortizes to the domain's slot count and is reused across scans
    /// by `Participant`. SeqCst loads pair with the SeqCst hazard
    /// publishes in `Participant::protect`.
    pub(crate) fn collect_hazards_into(&self, out: &mut Vec<*mut u8>) {
        out.clear();
        let mut cur = self.records.load(Ordering::SeqCst);
        while !cur.is_null() {
            // SAFETY: records live as long as the domain.
            let rec = unsafe { &*cur };
            for slot in rec.hazards.iter() {
                let p = slot.load(Ordering::SeqCst);
                if !p.is_null() {
                    out.push(p);
                }
            }
            cur = rec.next;
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Pops the entire orphan stack; the caller adopts the contents.
    pub(crate) fn take_orphans(&self) -> Vec<Retired> {
        let mut head = self.orphans.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !head.is_null() {
            // SAFETY: we exclusively own the popped stack.
            let batch = unsafe { Box::from_raw(head) };
            out.extend(batch.retired);
            head = batch.next;
        }
        out
    }

    /// Pushes a departing participant's leftovers for later adoption.
    pub(crate) fn push_orphans(&self, retired: Vec<Retired>) {
        if retired.is_empty() {
            return;
        }
        let batch = Box::into_raw(Box::new(OrphanBatch {
            next: ptr::null_mut(),
            retired,
        }));
        let mut head = self.orphans.load(Ordering::Acquire);
        loop {
            // SAFETY: `batch` is not yet shared.
            unsafe { (*batch).next = head };
            match self
                .orphans
                .compare_exchange(head, batch, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Forcibly clears the hazard slots of an abandoned participant's
    /// record and returns the record to the domain for adoption.
    /// `token` is the value [`Participant::record_token`] returned for
    /// the abandoned participant. Returns `true` when a matching active
    /// record was found.
    ///
    /// A leaked [`Participant`] never runs its destructor: its published
    /// hazards pin retired objects forever and its record stays claimed.
    /// Quarantine replicates the destructor's record cleanup (null every
    /// slot, deactivate) — but *not* the private retired-list handoff,
    /// which is unreachable from the record. Those retirees leak,
    /// bounded by the scan threshold (`Domain::scan_threshold`), the
    /// documented cost of an abandoned participant.
    ///
    /// [`Participant::record_token`]: crate::Participant::record_token
    ///
    /// # Safety
    ///
    /// The participant behind `token` must never be used again (its
    /// owner leaked it and will never call methods on it, or its thread
    /// has exited). Clearing the hazards of a participant still in use
    /// lets the scan reclaim objects it is actively dereferencing —
    /// use-after-free; and deactivating its record lets a new
    /// participant share the slots — both UB.
    pub unsafe fn quarantine(&self, token: usize) -> bool {
        if token == 0 {
            return false;
        }
        let mut cur = self.records.load(Ordering::Acquire);
        while !cur.is_null() {
            if cur as usize == token {
                // SAFETY: records are never freed while the domain lives.
                let rec = unsafe { &*cur };
                if !rec.active.load(Ordering::Acquire) {
                    // Already quarantined (or the leak was cleaned up
                    // some other way); don't disturb a possible adopter.
                    return false;
                }
                // Mirror Participant::drop's record half: SeqCst clears
                // so in-flight scans (SeqCst hazard snapshot) observe
                // the nulls, then hand the record back for adoption.
                for slot in rec.hazards.iter() {
                    slot.store(ptr::null_mut(), Ordering::SeqCst);
                }
                rec.active.store(false, Ordering::Release);
                return true;
            }
            // SAFETY: as above — the list is grow-only and immortal.
            cur = unsafe { (*cur).next };
        }
        false
    }

    /// Retire threshold: scan when a local retired list reaches this size.
    /// Michael's analysis wants `R = H + Θ(H)`; we use `max(2H, 64)` so
    /// small domains still batch enough to amortize the scan.
    pub(crate) fn scan_threshold(&self) -> usize {
        (2 * self.total_slots()).max(64)
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // No participant can outlive the domain (they borrow it), so no
        // hazard slot is set and every retired object is reclaimable.
        for r in self.take_orphans() {
            // SAFETY: no hazards remain; each object reclaimed once.
            unsafe { r.reclaim() };
        }
        let mut cur = *self.records.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access in Drop; records were Box-allocated.
            let rec = unsafe { Box::from_raw(cur) };
            debug_assert!(
                !rec.active.load(Ordering::Relaxed),
                "participant outlived its domain"
            );
            cur = rec.next;
        }
    }
}

impl std::fmt::Debug for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Domain")
            .field("slots_per_record", &self.slots_per_record)
            .field("records", &self.record_count.load(Ordering::Relaxed))
            .finish()
    }
}
