//! Per-thread hazard-pointer state: protection slots and the retired list.

use std::ptr;
use kp_sync::atomic::{AtomicPtr, Ordering};

use crate::domain::{Domain, Record};
use crate::retired::Retired;

// Fault-injection sites (`hazard.protect` / `hazard.retire` /
// `hazard.scan`), compiled away unless the `chaos` feature is on — see
// the `chaos` crate.
#[cfg(feature = "chaos")]
macro_rules! inject {
    ($site:expr) => {
        ::chaos::hit($site)
    };
}
#[cfg(not(feature = "chaos"))]
macro_rules! inject {
    ($site:expr) => {};
}

/// A thread's membership in a [`Domain`].
///
/// Holds `K` hazard slots (see [`Domain::slots_per_record`]) and a private
/// retired list. Not `Sync`: one participant per thread. It is `Send`, so
/// it may be created on one thread and moved into a worker.
pub struct Participant<'d> {
    domain: &'d Domain,
    record: *mut Record,
    retired: Vec<Retired>,
    /// Scratch buffer for the hazard snapshot, reused across scans so
    /// steady-state reclamation allocates nothing.
    hazard_scratch: Vec<*mut u8>,
    /// Number of successful reclamations, for tests/diagnostics.
    reclaimed: usize,
}

// SAFETY: the record pointer is only mutated through atomics; moving the
// participant between threads is fine because all accesses go through
// `&mut self` or atomics.
unsafe impl Send for Participant<'_> {}

impl<'d> Participant<'d> {
    pub(crate) fn new(domain: &'d Domain, record: *mut Record) -> Self {
        Participant {
            domain,
            record,
            // Pre-size past the scan threshold (plus headroom for a few
            // adopted orphans) so pushes never grow the Vec in steady
            // state.
            retired: Vec::with_capacity(domain.scan_threshold() + 64),
            hazard_scratch: Vec::with_capacity(domain.total_slots() + 16),
            reclaimed: 0,
        }
    }

    fn slots(&self) -> &[AtomicPtr<u8>] {
        // SAFETY: records live as long as the domain, which outlives `'d`.
        unsafe { &(*self.record).hazards }
    }

    /// The domain this participant belongs to.
    pub fn domain(&self) -> &'d Domain {
        self.domain
    }

    /// An opaque token identifying this participant's hazard record
    /// (stable for the life of the domain; never `0`). An external
    /// liveness layer can pass it to [`Domain::quarantine`] if this
    /// participant is abandoned without running its destructor.
    pub fn record_token(&self) -> usize {
        self.record as usize
    }

    /// Number of objects this participant has reclaimed so far.
    pub fn reclaimed(&self) -> usize {
        self.reclaimed
    }

    /// Number of objects currently parked on this participant's retired
    /// list.
    pub fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Publishes `ptr` in hazard slot `slot`.
    ///
    /// SeqCst so the store is globally ordered before the caller's
    /// subsequent validation load — the classic store-load fence hazard
    /// pointers require.
    ///
    /// This is the *raw* interface: the caller must re-validate that the
    /// object is still reachable (e.g. re-load the source pointer) after
    /// this call and retry if not. Prefer [`protect`](Self::protect).
    pub fn set<T>(&self, slot: usize, ptr: *mut T) {
        self.slots()[slot].store(ptr.cast(), Ordering::SeqCst);
    }

    /// Clears hazard slot `slot`.
    pub fn clear(&self, slot: usize) {
        self.slots()[slot].store(ptr::null_mut(), Ordering::Release);
    }

    /// Reads `src` and protects the loaded pointer in slot `slot`,
    /// retrying until the protection is stable (the pointer re-read from
    /// `src` is unchanged after publishing the hazard).
    ///
    /// On return, if the result is non-null it will not be reclaimed
    /// until the slot is overwritten or cleared — provided the data
    /// structure retires objects only after unlinking them from `src`.
    pub fn protect<T>(&self, slot: usize, src: &AtomicPtr<T>) -> *mut T {
        inject!("hazard.protect");
        let mut p = src.load(Ordering::Acquire);
        loop {
            self.set(slot, p);
            // A stall here — hazard published but not yet validated — is
            // the schedule Michael's protocol exists to survive.
            inject!("hazard.protect.validate");
            let q = src.load(Ordering::SeqCst);
            if q == p {
                return p;
            }
            p = q;
        }
    }

    /// Hands `ptr` to the reclamation machinery.
    ///
    /// # Safety
    ///
    /// * `ptr` came from `Box::into_raw` and ownership is transferred.
    /// * The object has been unlinked: no thread can create a *new*
    ///   reference to it after this call (threads holding hazard
    ///   protection established earlier are exactly what the scan checks).
    /// * `retire` is called at most once per object.
    pub unsafe fn retire<T: Send>(&mut self, ptr: *mut T) {
        inject!("hazard.retire");
        debug_assert!(!ptr.is_null(), "retiring a null pointer");
        // SAFETY: forwarded from the caller.
        self.retired.push(unsafe { Retired::new(ptr) });
        if self.retired.len() >= self.domain.scan_threshold() {
            self.scan();
        }
    }

    /// [`retire`](Self::retire) with a custom disposal function instead
    /// of `Box::from_raw`: once no hazard pointer covers `ptr`, the
    /// scan calls `drop_fn(ptr, ctx)`. This is how kp-queue routes
    /// reclaimed nodes into its reuse pool rather than the allocator.
    ///
    /// # Safety
    ///
    /// * The object has been unlinked: no thread can create a *new*
    ///   reference to it after this call.
    /// * `drop_fn(ptr, ctx)` fully disposes of the object exactly once;
    ///   at most one `retire_with`/`retire` call per object.
    /// * `ptr` and `ctx` must remain valid until `drop_fn` runs, on
    ///   whatever thread runs it (orphan adoption may move the retiree
    ///   to another participant, or to `Domain::drop`).
    pub unsafe fn retire_with(
        &mut self,
        ptr: *mut u8,
        ctx: *mut u8,
        drop_fn: unsafe fn(*mut u8, *mut u8),
    ) {
        inject!("hazard.retire");
        debug_assert!(!ptr.is_null(), "retiring a null pointer");
        // SAFETY: forwarded from the caller.
        self.retired.push(unsafe { Retired::with_fn(ptr, ctx, drop_fn) });
        if self.retired.len() >= self.domain.scan_threshold() {
            self.scan();
        }
    }

    /// Reclaims every retired object not covered by a hazard pointer.
    ///
    /// Also adopts orphaned retired lists left behind by departed
    /// participants. Bounded work: one pass over the domain's hazard
    /// slots plus one pass over the retired list — wait-free. And
    /// allocation-free in steady state: the hazard snapshot lands in a
    /// reused scratch buffer and survivors are compacted in place with
    /// `swap_remove` (order is irrelevant to correctness).
    pub fn scan(&mut self) {
        inject!("hazard.scan");
        self.retired.extend(self.domain.take_orphans());
        if self.retired.is_empty() {
            return;
        }
        self.domain.collect_hazards_into(&mut self.hazard_scratch);
        let mut i = 0;
        while i < self.retired.len() {
            if self.hazard_scratch.binary_search(&self.retired[i].ptr).is_ok() {
                i += 1;
            } else {
                let r = self.retired.swap_remove(i);
                // SAFETY: object unlinked (retire contract) and no hazard
                // covers it at a point after it was unlinked, so no thread
                // can still acquire a reference.
                unsafe { r.reclaim() };
                self.reclaimed += 1;
            }
        }
    }
}

impl Drop for Participant<'_> {
    fn drop(&mut self) {
        // Last chance to free eagerly, then abandon leftovers for
        // adoption and return the record to the domain.
        self.scan();
        for slot in self.slots() {
            slot.store(ptr::null_mut(), Ordering::Release);
        }
        if !self.retired.is_empty() {
            self.domain.push_orphans(std::mem::take(&mut self.retired));
        }
        // SAFETY: record outlives participant.
        unsafe { (*self.record).active.store(false, Ordering::Release) };
    }
}

impl std::fmt::Debug for Participant<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Participant")
            .field("retired", &self.retired.len())
            .field("reclaimed", &self.reclaimed)
            .finish()
    }
}
