//! Hazard-pointer safe memory reclamation, implemented from scratch after
//! Michael, *Hazard Pointers: Safe Memory Reclamation for Lock-Free
//! Objects* (IEEE TPDS 2004).
//!
//! Section 3.4 of Kogan & Petrank's PPoPP 2011 paper prescribes exactly
//! this technique for running their wait-free queue outside a
//! garbage-collected runtime: hazard pointers are single-writer
//! multi-reader registers that threads use to mark objects they may still
//! access; a removed object is reclaimed only once no hazard pointer
//! covers it. Both marking (a store) and reclamation (a bounded scan) are
//! wait-free, so layering it under the queue preserves the queue's
//! progress guarantee — unlike epoch-based schemes, which are merely
//! lock-free.
//!
//! # Architecture
//!
//! * A [`Domain`] owns a grow-only, lock-free list of *records*, each with
//!   `K` hazard slots. Threads join with [`Domain::enter`], which either
//!   reuses an inactive record (one CAS per record, bounded) or appends a
//!   fresh one.
//! * A [`Participant`] provides `protect`/`clear` on its record's slots
//!   and a thread-local *retired list*. When the retired list exceeds a
//!   threshold proportional to the total number of hazard slots, the
//!   participant scans all hazards and frees every retired object not
//!   covered by one.
//! * When a participant leaves, any objects it could not yet free are
//!   pushed onto the domain's *orphan* stack and adopted by the next scan
//!   of any participant (or freed when the domain is dropped).
//!
//! # Example
//!
//! ```
//! use hazard::Domain;
//! use std::sync::atomic::{AtomicPtr, Ordering};
//!
//! let domain = Domain::new(2);
//! let shared = AtomicPtr::new(Box::into_raw(Box::new(42u64)));
//!
//! let mut p = domain.enter();
//! let ptr = p.protect(0, &shared);
//! assert_eq!(unsafe { *ptr }, 42);
//!
//! // Unlink, then retire: the object is freed once no hazard covers it.
//! let old = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
//! unsafe { p.retire(old) };
//! p.clear(0);
//! ```

#![warn(missing_docs)]

mod domain;
mod participant;
mod retired;

pub use domain::Domain;
pub use participant::Participant;

#[cfg(test)]
mod tests;
