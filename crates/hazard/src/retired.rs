//! Type-erased retired objects awaiting reclamation.

/// A heap object that has been unlinked from its data structure and is
/// waiting for no hazard pointer to cover it.
pub(crate) struct Retired {
    /// Address of the object (also the value hazard slots are compared
    /// against).
    pub(crate) ptr: *mut u8,
    /// Opaque context forwarded to `drop_fn` (null for plain
    /// [`Retired::new`] retirees). Lets data structures route reclaimed
    /// objects somewhere other than the allocator — e.g. kp-queue's
    /// node pool.
    pub(crate) ctx: *mut u8,
    /// Disposes of the object. Captures the concrete type.
    pub(crate) drop_fn: unsafe fn(*mut u8, *mut u8),
}

impl Retired {
    /// Type-erases `ptr`, which must have come from `Box::into_raw`.
    ///
    /// # Safety
    ///
    /// `ptr` must be a valid, uniquely owned `Box<T>` allocation.
    pub(crate) unsafe fn new<T>(ptr: *mut T) -> Self {
        // SAFETY contract: `p` must be the `Box::into_raw::<T>` pointer this
        // `Retired` was built from (guaranteed by `new` below).
        unsafe fn drop_box<T>(p: *mut u8, _ctx: *mut u8) {
            // SAFETY: `p` was produced by `Box::into_raw::<T>` in
            // `Retired::new` and is reclaimed exactly once.
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        Retired {
            ptr: ptr.cast(),
            ctx: std::ptr::null_mut(),
            drop_fn: drop_box::<T>,
        }
    }

    /// A retiree with a custom disposal function and context.
    ///
    /// # Safety
    ///
    /// `drop_fn(ptr, ctx)` must fully dispose of the object exactly
    /// once, and `ctx` must stay valid until then (including across
    /// orphan adoption by another thread — both pointers may cross
    /// threads, which is why `Retired: Send` is asserted below and
    /// guarded by the `Send` bounds on the public retire entry points).
    pub(crate) unsafe fn with_fn(ptr: *mut u8, ctx: *mut u8, drop_fn: unsafe fn(*mut u8, *mut u8)) -> Self {
        Retired { ptr, ctx, drop_fn }
    }

    /// Disposes of the object.
    ///
    /// # Safety
    ///
    /// No thread may hold a hazard pointer to `self.ptr`, and `reclaim`
    /// must be called at most once.
    pub(crate) unsafe fn reclaim(self) {
        // SAFETY: the caller upholds this fn's contract (no live hazard to
        // `ptr`, called at most once), which is exactly `drop_fn`'s contract.
        unsafe { (self.drop_fn)(self.ptr, self.ctx) }
    }
}

// SAFETY: Retired objects are moved between threads (orphan adoption). The
// underlying objects are required to be `Send` by the retire entry
// points' bounds; custom drop_fns take the same obligation via
// `with_fn`'s safety contract.
unsafe impl Send for Retired {}

#[cfg(test)]
mod tests {
    use super::*;
    use kp_sync::atomic::{AtomicUsize, Ordering};

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counting;
    impl Drop for Counting {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn reclaim_runs_drop() {
        let before = DROPS.load(Ordering::SeqCst);
        // SAFETY: the Box is freshly leaked and uniquely owned.
        let r = unsafe { Retired::new(Box::into_raw(Box::new(Counting))) };
        // SAFETY: no hazard pointers exist; reclaimed exactly once.
        unsafe { r.reclaim() };
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }

    #[test]
    fn with_fn_forwards_the_context() {
        // SAFETY: unsafe only to match `drop_fn`'s signature; requires `ctx`
        // to point at a live AtomicUsize.
        unsafe fn record(p: *mut u8, ctx: *mut u8) {
            // SAFETY: test wiring — ctx is the AtomicUsize below.
            unsafe { (*ctx.cast::<AtomicUsize>()).store(p as usize, Ordering::SeqCst) };
        }
        let seen = AtomicUsize::new(0);
        let obj = 0xC0u8;
        // SAFETY: `obj` and `seen` outlive `r`; `record` upholds with_fn's contract.
        let r = unsafe {
            Retired::with_fn(
                &obj as *const u8 as *mut u8,
                &seen as *const AtomicUsize as *mut u8,
                record,
            )
        };
        // SAFETY: called once; `record` only stores to `seen`.
        unsafe { r.reclaim() };
        assert_eq!(seen.load(Ordering::SeqCst), &obj as *const u8 as usize);
    }
}
