//! Type-erased retired objects awaiting reclamation.

/// A heap object that has been unlinked from its data structure and is
/// waiting for no hazard pointer to cover it.
pub(crate) struct Retired {
    /// Address of the object (also the value hazard slots are compared
    /// against).
    pub(crate) ptr: *mut u8,
    /// Deallocates and drops the object. Captures the concrete type.
    pub(crate) drop_fn: unsafe fn(*mut u8),
}

impl Retired {
    /// Type-erases `ptr`, which must have come from `Box::into_raw`.
    ///
    /// # Safety
    ///
    /// `ptr` must be a valid, uniquely owned `Box<T>` allocation.
    pub(crate) unsafe fn new<T>(ptr: *mut T) -> Self {
        unsafe fn drop_box<T>(p: *mut u8) {
            // SAFETY: `p` was produced by `Box::into_raw::<T>` in
            // `Retired::new` and is reclaimed exactly once.
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        Retired {
            ptr: ptr.cast(),
            drop_fn: drop_box::<T>,
        }
    }

    /// Drops and frees the object.
    ///
    /// # Safety
    ///
    /// No thread may hold a hazard pointer to `self.ptr`, and `reclaim`
    /// must be called at most once.
    pub(crate) unsafe fn reclaim(self) {
        unsafe { (self.drop_fn)(self.ptr) }
    }
}

// Retired objects are moved between threads (orphan adoption). The
// underlying objects are required to be `Send` by `Participant::retire`'s
// bound.
unsafe impl Send for Retired {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    struct Counting;
    impl Drop for Counting {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn reclaim_runs_drop() {
        let before = DROPS.load(Ordering::SeqCst);
        let r = unsafe { Retired::new(Box::into_raw(Box::new(Counting))) };
        unsafe { r.reclaim() };
        assert_eq!(DROPS.load(Ordering::SeqCst), before + 1);
    }
}
