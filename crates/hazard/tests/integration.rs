//! Integration tests driving the hazard-pointer domain through a real
//! lock-free data structure (a Treiber stack built inside the test) —
//! the classical validation workload from Michael's paper — plus
//! lifecycle edge cases that unit tests don't reach.

use kp_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use hazard::Domain;

/// A minimal Treiber stack using the domain under test.
struct Stack<T> {
    head: AtomicPtr<StackNode<T>>,
    domain: Domain,
}

struct StackNode<T> {
    value: T,
    next: *mut StackNode<T>,
}

// SAFETY: the stack shares only its atomic head across threads; payloads
// are bounded by `T: Send` and move with node ownership.
unsafe impl<T: Send> Send for Stack<T> {}
// SAFETY: as for Send.
unsafe impl<T: Send> Sync for Stack<T> {}
// SAFETY: the raw `next` pointer is only dereferenced under the hazard
// protocol; the node owns its T.
unsafe impl<T: Send> Send for StackNode<T> {}

impl<T: Send> Stack<T> {
    fn new() -> Self {
        Stack {
            head: AtomicPtr::new(std::ptr::null_mut()),
            domain: Domain::new(1),
        }
    }

    fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(StackNode {
            value,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: node not yet shared.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    fn pop(&self, p: &mut hazard::Participant<'_>) -> Option<T>
    where
        T: Copy,
    {
        loop {
            let head = p.protect(0, &self.head);
            if head.is_null() {
                p.clear(0);
                return None;
            }
            // SAFETY: protected by slot 0.
            let next = unsafe { (*head).next };
            if self
                .head
                .compare_exchange(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // SAFETY: we own the popped node; value is Copy.
                let value = unsafe { (*head).value };
                p.clear(0);
                // SAFETY: unlinked by our CAS.
                unsafe { p.retire(head) };
                return Some(value);
            }
        }
    }
}

impl<T> Drop for Stack<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.next;
        }
    }
}

#[test]
fn treiber_stack_conservation_under_contention() {
    const THREADS: usize = 6;
    const PER: usize = if cfg!(debug_assertions) { 3_000 } else { 20_000 };
    let stack = Stack::new();
    let popped = AtomicUsize::new(0);
    let sum = AtomicUsize::new(0);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let stack = &stack;
            let popped = &popped;
            let sum = &sum;
            let barrier = &barrier;
            s.spawn(move || {
                let mut p = stack.domain.enter();
                barrier.wait();
                for i in 0..PER {
                    stack.push(t * PER + i);
                    if let Some(v) = stack.pop(&mut p) {
                        popped.fetch_add(1, Ordering::Relaxed);
                        sum.fetch_add(v, Ordering::Relaxed);
                        assert!(v < THREADS * PER, "corrupted value {v}: use-after-free?");
                    }
                }
            });
        }
    });
    assert!(popped.load(Ordering::Relaxed) <= THREADS * PER);
}

#[test]
fn domain_survives_many_participant_generations() {
    // Records must be recycled across thread generations, keeping the
    // domain's footprint bounded.
    let domain = Domain::new(2);
    for _gen in 0..20 {
        std::thread::scope(|s| {
            for _ in 0..4 {
                let domain = &domain;
                s.spawn(move || {
                    let mut p = domain.enter();
                    for _ in 0..100 {
                        let obj = Box::into_raw(Box::new(123u64));
                        // SAFETY: obj uniquely owned, never shared.
                        unsafe { p.retire(obj) };
                    }
                    p.scan();
                });
            }
        });
    }
    assert!(
        domain.total_slots() <= 4 * 2,
        "records must be recycled, not grown per generation (slots = {})",
        domain.total_slots()
    );
}

#[test]
fn retired_under_protection_survives_until_release_across_threads() {
    let drops = Arc::new(AtomicUsize::new(0));
    struct D(Arc<AtomicUsize>, u64);
    impl Drop for D {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    let domain = Domain::new(1);
    let shared = AtomicPtr::new(Box::into_raw(Box::new(D(drops.clone(), 7))));
    let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
    let (held_tx, held_rx) = std::sync::mpsc::channel::<()>();

    std::thread::scope(|s| {
        // Reader thread: protects, signals, waits, validates payload.
        {
            let domain = &domain;
            let shared = &shared;
            s.spawn(move || {
                let p = domain.enter();
                let obj = p.protect(0, shared);
                held_tx.send(()).unwrap();
                hold_rx.recv().unwrap();
                // Still safe to read despite a concurrent retire + scan.
                // SAFETY: hazard slot 0 covers obj.
                assert_eq!(unsafe { (*obj).1 }, 7);
                p.clear(0);
            });
        }
        // Writer thread: unlinks, retires, scans — must not free yet.
        held_rx.recv().unwrap();
        let mut p = domain.enter();
        let old = shared.swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: unlinked above.
        unsafe { p.retire(old) };
        p.scan();
        assert_eq!(drops.load(Ordering::SeqCst), 0, "protected: must survive");
        hold_tx.send(()).unwrap();
    });

    // Reader gone: now it can be freed.
    let mut p = domain.enter();
    p.scan();
    assert_eq!(drops.load(Ordering::SeqCst), 1);
}
