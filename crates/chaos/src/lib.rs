//! Deterministic fault injection for the wait-free queue test suite.
//!
//! The paper's correctness claims are strongest exactly where friendly
//! OS schedules never go: a helper stalled between two of an
//! operation's three atomic steps, or a thread that dies mid-operation
//! (§3.3's exit discussion). This crate provides the machinery the
//! torture suite uses to force those schedules:
//!
//! * **Injection points.** Instrumented crates mark each shared-memory
//!   step with an `inject!("site.name")` macro. With their `chaos`
//!   cargo feature off the macro expands to nothing; with it on, every
//!   hit calls [`hit`], which counts the step and consults the active
//!   fault plan.
//! * **[`FaultPlan`]** — a deterministic, seed-derivable set of rules
//!   saying "the k-th time thread t reaches site s: stall for N yields
//!   / storm yields / die". Thread identity is the *virtual* ID the
//!   test registered via [`register_thread`], so plans are stable
//!   across runs.
//! * **Watchdog** — counts shared-memory steps between
//!   [`op_begin`]/[`op_end`] per thread and records the worst case, so
//!   tests can assert the empirical per-operation step bound stays
//!   linear in the number of registered threads even under stalls.
//!
//! Only threads that registered are ever affected; the plan is
//! installed process-globally under a lock ([`install`]) so concurrent
//! unit tests in the same binary cannot interfere with a torture run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock};

// ---------------------------------------------------------------------
// Plans
// ---------------------------------------------------------------------

/// Which registered thread a rule applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadSel {
    /// Any registered thread.
    Any,
    /// The thread registered with this virtual ID.
    Id(usize),
}

impl ThreadSel {
    fn matches(&self, tid: usize) -> bool {
        match self {
            ThreadSel::Any => true,
            ThreadSel::Id(id) => *id == tid,
        }
    }
}

/// What happens when a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Park the thread at the site for `yields` voluntary yields —
    /// a helper stalled between atomic steps.
    Stall { yields: u32 },
    /// Simulated crash: unwind out of the operation with a
    /// [`ChaosKill`] panic payload. The harness thread catches it; the
    /// queue code does not, so the operation is abandoned wherever the
    /// site sits.
    Kill,
}

/// A single fault rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Site name; a trailing `*` matches any site with that prefix.
    pub site: String,
    pub thread: ThreadSel,
    /// 0-based occurrence index: the rule fires the `hit`-th time the
    /// selected thread reaches a matching site.
    pub hit: u64,
    pub action: Action,
}

impl Rule {
    fn site_matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }
}

/// Background yield noise: every `period`-th step of a registered
/// thread inserts `yields` voluntary yields, scrambling the schedule
/// without targeting a specific site.
#[derive(Debug, Clone, Copy)]
pub struct Storm {
    pub period: u64,
    pub yields: u32,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    pub rules: Vec<Rule>,
    pub storm: Option<Storm>,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a stall rule (builder style).
    pub fn stall(mut self, site: &str, thread: ThreadSel, hit: u64, yields: u32) -> Self {
        self.rules.push(Rule { site: site.to_string(), thread, hit, action: Action::Stall { yields } });
        self
    }

    /// Adds a kill rule (builder style).
    pub fn kill(mut self, site: &str, thread: ThreadSel, hit: u64) -> Self {
        self.rules.push(Rule { site: site.to_string(), thread, hit, action: Action::Kill });
        self
    }

    /// Adds background yield noise (builder style).
    pub fn with_storm(mut self, period: u64, yields: u32) -> Self {
        self.storm = Some(Storm { period, yields });
        self
    }

    /// Derives a plan of `n_stalls` stall rules over the given sites
    /// and `threads` registered IDs, plus a yield storm, entirely from
    /// `seed`. The same seed always yields the same plan.
    pub fn seeded(seed: u64, sites: &[&str], threads: usize, n_stalls: usize) -> FaultPlan {
        assert!(!sites.is_empty() && threads > 0);
        let mut state = seed;
        let mut next = move || splitmix64(&mut state);
        let mut plan = FaultPlan::new();
        for _ in 0..n_stalls {
            let site = sites[(next() % sites.len() as u64) as usize];
            let thread = ThreadSel::Id((next() % threads as u64) as usize);
            let hit = next() % 8;
            let yields = 1 + (next() % 64) as u32;
            plan = plan.stall(site, thread, hit, yields);
        }
        plan.with_storm(5 + seed % 11, 1 + (seed % 3) as u32)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Global session
// ---------------------------------------------------------------------

/// Panic payload of [`Action::Kill`]. Torture harnesses downcast the
/// `JoinHandle` error to this to confirm the death was the planned one.
#[derive(Debug)]
pub struct ChaosKill {
    pub site: &'static str,
    pub thread: usize,
}

#[derive(Default)]
struct SessionStats {
    max_op_steps: AtomicU64,
    total_steps: AtomicU64,
    stalls: AtomicU64,
    kills: AtomicU64,
    ops: AtomicU64,
}

struct PlanState {
    plan: FaultPlan,
    stats: SessionStats,
}

fn active_cell() -> &'static RwLock<Option<Arc<PlanState>>> {
    static ACTIVE: OnceLock<RwLock<Option<Arc<PlanState>>>> = OnceLock::new();
    ACTIVE.get_or_init(|| RwLock::new(None))
}

fn session_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Counters observed while a plan was installed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Report {
    /// Worst shared-memory step count of any single completed operation.
    pub max_op_steps: u64,
    /// Total instrumented steps executed by registered threads.
    pub total_steps: u64,
    /// Stall rules fired (incl. storm bursts).
    pub stalls: u64,
    /// Kill rules fired.
    pub kills: u64,
    /// Operations completed by registered threads.
    pub ops: u64,
}

impl Report {
    /// The empirical wait-freedom check: the worst observed
    /// per-operation step count must stay below a budget linear in the
    /// number of threads. Returns the budget it checked against.
    pub fn assert_linear_bound(&self, threads: usize, base: u64, per_thread: u64) -> u64 {
        let budget = base + per_thread * threads as u64;
        assert!(
            self.max_op_steps <= budget,
            "wait-freedom watchdog: an operation took {} instrumented steps, \
             over the linear budget {} (= {} + {}*{} threads)",
            self.max_op_steps,
            budget,
            base,
            per_thread,
            threads
        );
        budget
    }
}

/// An installed fault plan. Dropping it uninstalls the plan and frees
/// the global chaos slot for the next test.
pub struct ChaosSession {
    _serial: MutexGuard<'static, ()>,
}

/// Installs `plan` process-wide. Blocks until any other session ends.
pub fn install(plan: FaultPlan) -> ChaosSession {
    let serial = match session_lock().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *active_cell().write().unwrap() =
        Some(Arc::new(PlanState { plan, stats: SessionStats::default() }));
    ChaosSession { _serial: serial }
}

impl ChaosSession {
    /// Snapshot of the session's counters.
    pub fn report(&self) -> Report {
        let guard = active_cell().read().unwrap();
        let state = guard.as_ref().expect("session active");
        Report {
            max_op_steps: state.stats.max_op_steps.load(Ordering::SeqCst),
            total_steps: state.stats.total_steps.load(Ordering::SeqCst),
            stalls: state.stats.stalls.load(Ordering::SeqCst),
            kills: state.stats.kills.load(Ordering::SeqCst),
            ops: state.stats.ops.load(Ordering::SeqCst),
        }
    }
}

impl Drop for ChaosSession {
    fn drop(&mut self) {
        *active_cell().write().unwrap() = None;
    }
}

// ---------------------------------------------------------------------
// Per-thread state
// ---------------------------------------------------------------------

struct ThreadState {
    id: usize,
    /// Per-site occurrence counters (rule matching).
    site_hits: HashMap<&'static str, u64>,
    /// Steps since thread registration (storm phase).
    total_hits: u64,
    /// Steps inside the current operation (watchdog).
    op_steps: u64,
    in_op: bool,
    /// Set once a kill fired so the unwind path (handle Drop cleanup
    /// re-enters instrumented code) is not re-killed.
    killing: bool,
}

thread_local! {
    static THREAD: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
}

/// Marks the calling thread as participating in the active chaos
/// session under virtual ID `id` (use the queue's virtual thread ID so
/// plans and queue behavior line up). Unregisters on drop.
pub fn register_thread(id: usize) -> ThreadToken {
    THREAD.with(|t| {
        *t.borrow_mut() = Some(ThreadState {
            id,
            site_hits: HashMap::new(),
            total_hits: 0,
            op_steps: 0,
            in_op: false,
            killing: false,
        });
    });
    ThreadToken { _priv: () }
}

/// RAII handle for a registered thread.
pub struct ThreadToken {
    _priv: (),
}

impl Drop for ThreadToken {
    fn drop(&mut self) {
        let _ = THREAD.try_with(|t| *t.borrow_mut() = None);
    }
}

/// Instrumentation entry point: one shared-memory step at `site`.
/// No-op for unregistered threads.
pub fn hit(site: &'static str) {
    // Decide under the thread-local borrow, act (yield/panic) outside it.
    enum Fire {
        Nothing,
        Yields(u64),
        Kill(usize),
    }
    let fire = THREAD.try_with(|t| {
        let mut borrow = t.borrow_mut();
        let state = match borrow.as_mut() {
            Some(s) if !s.killing => s,
            _ => return Fire::Nothing,
        };
        let guard = active_cell().read().unwrap();
        let plan_state = match guard.as_ref() {
            Some(p) => p,
            None => return Fire::Nothing,
        };
        state.total_hits += 1;
        if state.in_op {
            state.op_steps += 1;
        }
        plan_state.stats.total_steps.fetch_add(1, Ordering::Relaxed);
        let occurrence = {
            let c = state.site_hits.entry(site).or_insert(0);
            let n = *c;
            *c += 1;
            n
        };
        let mut yields: u64 = 0;
        if let Some(storm) = plan_state.plan.storm {
            if storm.period > 0 && state.total_hits % storm.period == 0 {
                yields += storm.yields as u64;
            }
        }
        for rule in &plan_state.plan.rules {
            if rule.hit == occurrence && rule.thread.matches(state.id) && rule.site_matches(site) {
                match rule.action {
                    Action::Stall { yields: y } => {
                        plan_state.stats.stalls.fetch_add(1, Ordering::Relaxed);
                        yields += y as u64;
                    }
                    Action::Kill => {
                        plan_state.stats.kills.fetch_add(1, Ordering::Relaxed);
                        state.killing = true;
                        return Fire::Kill(state.id);
                    }
                }
            }
        }
        if yields > 0 {
            Fire::Yields(yields)
        } else {
            Fire::Nothing
        }
    });
    match fire {
        Ok(Fire::Nothing) | Err(_) => {}
        Ok(Fire::Yields(n)) => {
            for _ in 0..n {
                std::thread::yield_now();
            }
        }
        Ok(Fire::Kill(thread)) => {
            std::panic::panic_any(ChaosKill { site, thread });
        }
    }
}

/// Watchdog: marks the start of one queue operation on this thread.
pub fn op_begin() {
    let _ = THREAD.try_with(|t| {
        if let Some(state) = t.borrow_mut().as_mut() {
            state.in_op = true;
            state.op_steps = 0;
        }
    });
}

/// Watchdog: marks the end of the operation begun by [`op_begin`] and
/// folds its step count into the session maximum.
pub fn op_end() {
    let steps = THREAD.try_with(|t| {
        t.borrow_mut().as_mut().and_then(|state| {
            if !state.in_op {
                return None;
            }
            state.in_op = false;
            Some(state.op_steps)
        })
    });
    if let Ok(Some(steps)) = steps {
        if let Some(plan_state) = active_cell().read().unwrap().as_ref() {
            plan_state.stats.ops.fetch_add(1, Ordering::Relaxed);
            plan_state.stats.max_op_steps.fetch_max(steps, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unregistered_threads_unaffected() {
        let _session = install(FaultPlan::new().kill("x", ThreadSel::Any, 0));
        hit("x"); // would panic if the rule applied
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, &["s1", "s2"], 4, 6);
        let b = FaultPlan::seeded(42, &["s1", "s2"], 4, 6);
        assert_eq!(a.rules.len(), b.rules.len());
        for (x, y) in a.rules.iter().zip(&b.rules) {
            assert_eq!(x.site, y.site);
            assert_eq!(x.thread, y.thread);
            assert_eq!(x.hit, y.hit);
            assert_eq!(x.action, y.action);
        }
        let c = FaultPlan::seeded(43, &["s1", "s2"], 4, 6);
        let differs = a
            .rules
            .iter()
            .zip(&c.rules)
            .any(|(x, y)| x.site != y.site || x.thread != y.thread || x.hit != y.hit);
        assert!(differs, "different seeds should give different plans");
    }

    #[test]
    fn stall_counts_and_watchdog() {
        let session = install(FaultPlan::new().stall("site.a", ThreadSel::Id(0), 1, 3));
        let token = register_thread(0);
        op_begin();
        hit("site.a"); // occurrence 0: no rule
        hit("site.a"); // occurrence 1: stall fires
        hit("site.b");
        op_end();
        let report = session.report();
        assert_eq!(report.stalls, 1);
        assert_eq!(report.ops, 1);
        assert_eq!(report.max_op_steps, 3);
        assert_eq!(report.total_steps, 3);
        report.assert_linear_bound(1, 4, 0);
        drop(token);
    }

    #[test]
    fn kill_fires_once_and_marks_thread() {
        let session = install(FaultPlan::new().kill("die.here", ThreadSel::Id(7), 0));
        let err = std::thread::spawn(|| {
            let _token = register_thread(7);
            hit("die.here");
            unreachable!("kill must unwind");
        })
        .join()
        .expect_err("thread should die");
        let kill = err.downcast_ref::<ChaosKill>().expect("ChaosKill payload");
        assert_eq!(kill.site, "die.here");
        assert_eq!(kill.thread, 7);
        assert_eq!(session.report().kills, 1);
    }

    #[test]
    fn killed_thread_cleanup_is_not_rekilled() {
        let _session = install(FaultPlan::new().kill("a", ThreadSel::Id(1), 0).kill("b", ThreadSel::Id(1), 0));
        std::thread::spawn(|| {
            let _token = register_thread(1);
            struct Cleanup;
            impl Drop for Cleanup {
                fn drop(&mut self) {
                    // Unwind path re-enters instrumented code; the kill
                    // on "b" must not fire (double panic would abort).
                    hit("b");
                }
            }
            let _cleanup = Cleanup;
            hit("a");
        })
        .join()
        .expect_err("planned kill");
    }

    #[test]
    fn wildcard_sites_match_prefix() {
        let r = Rule {
            site: "kp.enq.*".to_string(),
            thread: ThreadSel::Any,
            hit: 0,
            action: Action::Stall { yields: 1 },
        };
        assert!(r.site_matches("kp.enq.append"));
        assert!(!r.site_matches("kp.deq.lock"));
    }

    #[test]
    #[should_panic(expected = "wait-freedom watchdog")]
    fn watchdog_bound_violation_panics() {
        let report = Report { max_op_steps: 1000, ..Default::default() };
        report.assert_linear_bound(2, 10, 10);
    }
}
