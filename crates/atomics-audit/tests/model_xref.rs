//! Cross-references the ordering manifest against the kp-model checker.
//!
//! Every `ATOMICS.toml` site tagged `role = "linearization"` must name
//! the kp-model step(s) it implements via `model_steps`, and those
//! names must exist in the model's step vocabulary (`STEP_NAMES`). The
//! reverse direction is pinned too: the three linearization-relevant
//! step families of the paper — the append CAS, the `deqTid` lock CAS,
//! and the empty observation — must each be claimed by some site in
//! *both* queue variants' files, so deleting a manifest entry (or
//! retagging it away from `linearization`) fails here even though the
//! audit binary itself would still pass.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn manifest() -> atomics_audit::manifest::Manifest {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let text = std::fs::read_to_string(root.join("ATOMICS.toml")).expect("read ATOMICS.toml");
    atomics_audit::manifest::parse(&text).expect("ATOMICS.toml parses")
}

#[test]
fn every_linearization_site_names_known_model_steps() {
    let m = manifest();
    let known: BTreeSet<&str> = kp_model::STEP_NAMES.iter().copied().collect();
    let mut linearization_sites = 0;
    for site in &m.sites {
        if site.role != "linearization" {
            continue;
        }
        linearization_sites += 1;
        assert!(
            !site.model_steps.is_empty(),
            "{}/{}: linearization site without model_steps",
            site.file,
            site.symbol
        );
        for step in &site.model_steps {
            assert!(
                known.contains(step.as_str()),
                "{}/{}: model_steps names `{step}`, which kp-model does not define \
                 (known: {known:?})",
                site.file,
                site.symbol
            );
        }
    }
    assert!(linearization_sites > 0, "manifest has no linearization sites at all");
}

#[test]
fn paper_linearization_steps_are_claimed_in_both_variants() {
    let m = manifest();
    // The paper's linearization structure, per variant: enqueue
    // linearizes at the append CAS (Append), a successful dequeue at
    // the deqTid lock CAS (Lock), and an empty dequeue at the empty
    // observation acknowledged through the descriptor transition
    // (Stage0Empty).
    for variant in ["crates/kp-queue/src/queue.rs", "crates/kp-queue/src/hp/queue.rs"] {
        let claimed: BTreeSet<&str> = m
            .sites
            .iter()
            .filter(|s| s.role == "linearization")
            // desc.rs descriptor transitions serve both variants.
            .filter(|s| s.file == variant || s.file == "crates/kp-queue/src/desc.rs")
            .flat_map(|s| s.model_steps.iter().map(String::as_str))
            .collect();
        // The fast path reuses the same three linearization points
        // without a descriptor (DESIGN.md §12); each must be claimed by
        // a site in both variants too.
        for required in ["Append", "Lock", "Stage0Empty", "FastAppend", "FastLock", "FastEmpty"] {
            assert!(
                claimed.contains(required),
                "{variant}: no linearization site claims model step `{required}` \
                 (claimed: {claimed:?})"
            );
        }
    }
}

#[test]
fn model_steps_only_appear_on_linearization_sites() {
    // The audit binary enforces this too (rule bad-role); duplicating
    // it here keeps the invariant covered by plain `cargo test` even if
    // someone runs the suite without the gate.
    let m = manifest();
    for site in &m.sites {
        if site.role != "linearization" {
            assert!(
                site.model_steps.is_empty(),
                "{}/{}: model_steps on a `{}` site",
                site.file,
                site.symbol,
                site.role
            );
        }
    }
}
