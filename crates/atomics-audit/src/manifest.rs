//! The `ATOMICS.toml` manifest: parser and data model.
//!
//! The container has no `toml` crate, so this module implements the
//! small TOML subset the manifest needs: top-level tables (`[audit]`),
//! arrays of tables (`[[site]]`, `[[suppress]]`), and string / integer
//! / boolean / string-array values. Unknown keys are an error — the
//! manifest is a reviewed artifact and silent typos (`rol = "stats"`)
//! must not weaken the audit.

use std::collections::HashMap;
use std::fmt;

/// Role tags a site may carry. Order here is the order `--dump` lists
/// them in for humans.
pub const ROLES: &[&str] = &["linearization", "doorway", "helper-guard", "reclamation", "stats"];

/// One `[[site]]` entry.
#[derive(Debug, Clone)]
pub struct ManifestSite {
    /// Root-relative file path.
    pub file: String,
    /// Enclosing fn name (`(top)` for module scope).
    pub symbol: String,
    /// Atomic method name.
    pub op: String,
    /// Ordinal within (file, symbol, op).
    pub index: usize,
    /// Claimed orderings, in call order (`"?"` = parameterized).
    pub order: Vec<String>,
    /// Role tag (one of [`ROLES`]).
    pub role: String,
    /// One-line justification.
    pub why: String,
    /// Extra justification required when any ordering is `SeqCst`.
    pub sc: Option<String>,
    /// For `linearization` sites: the kp-model step names this site
    /// implements (checked by the cross-reference test).
    pub model_steps: Vec<String>,
    /// Manifest line, for error messages.
    pub decl_line: usize,
}

impl ManifestSite {
    /// The anchor key matching [`crate::scan::Site::anchor`].
    pub fn key(&self) -> (String, String, String, usize) {
        (self.file.clone(), self.symbol.clone(), self.op.clone(), self.index)
    }
}

/// One `[[suppress]]` entry: disables `rule` at (file, symbol).
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule id being suppressed.
    pub rule: String,
    /// Root-relative file path the suppression applies to.
    pub file: String,
    /// Fn name, or `*` for the whole file.
    pub symbol: String,
    /// Required human rationale.
    pub reason: String,
}

/// The `[audit]` scope configuration.
#[derive(Debug, Clone, Default)]
pub struct AuditConfig {
    /// Directories (root-relative) to scan.
    pub scope: Vec<String>,
}

/// Parsed manifest.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Scope config.
    pub audit: AuditConfig,
    /// Documented sites.
    pub sites: Vec<ManifestSite>,
    /// Rule suppressions.
    pub suppressions: Vec<Suppression>,
}

impl Manifest {
    /// Index of sites by anchor key; duplicate anchors are an error and
    /// reported by the caller via [`Manifest::duplicate_keys`].
    pub fn site_index(&self) -> HashMap<(String, String, String, usize), &ManifestSite> {
        let mut map = HashMap::new();
        for s in &self.sites {
            map.insert(s.key(), s);
        }
        map
    }

    /// Anchor keys declared more than once.
    pub fn duplicate_keys(&self) -> Vec<String> {
        let mut seen = HashMap::new();
        let mut dups = Vec::new();
        for s in &self.sites {
            if seen.insert(s.key(), ()).is_some() {
                dups.push(format!("{} {}/{}#{}", s.file, s.symbol, s.op, s.index));
            }
        }
        dups
    }

    /// Whether `rule` is suppressed at (file, symbol).
    pub fn is_suppressed(&self, rule: &str, file: &str, symbol: &str) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && s.file == file && (s.symbol == "*" || s.symbol == symbol))
    }
}

/// Parse error with line context.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based manifest line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ATOMICS.toml:{}: {}", self.line, self.msg)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    StrArray(Vec<String>),
}

/// Parses manifest text.
pub fn parse(text: &str) -> Result<Manifest, ParseError> {
    enum Section {
        None,
        Audit,
        Site(RawTable),
        Suppress(RawTable),
    }
    struct RawTable {
        line: usize,
        kv: HashMap<String, (Value, usize)>,
    }

    let mut manifest = Manifest::default();
    let mut section = Section::None;

    let flush = |section: &mut Section, manifest: &mut Manifest| -> Result<(), ParseError> {
        match std::mem::replace(section, Section::None) {
            Section::Site(t) => manifest.sites.push(site_from(t.kv, t.line)?),
            Section::Suppress(t) => manifest.suppressions.push(suppress_from(t.kv, t.line)?),
            _ => {}
        }
        Ok(())
    };

    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = strip_line_comment(raw_line).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            flush(&mut section, &mut manifest)?;
            section = match header.trim() {
                "site" => Section::Site(RawTable { line: lineno, kv: HashMap::new() }),
                "suppress" => Section::Suppress(RawTable { line: lineno, kv: HashMap::new() }),
                other => {
                    return Err(ParseError {
                        line: lineno,
                        msg: format!("unknown array-of-tables `[[{other}]]` (expected site or suppress)"),
                    })
                }
            };
            continue;
        }
        if let Some(header) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            flush(&mut section, &mut manifest)?;
            section = match header.trim() {
                "audit" => Section::Audit,
                other => {
                    return Err(ParseError {
                        line: lineno,
                        msg: format!("unknown table `[{other}]` (expected audit)"),
                    })
                }
            };
            continue;
        }
        let (key, value) = parse_kv(&line, lineno)?;
        match &mut section {
            Section::None => {
                return Err(ParseError { line: lineno, msg: "key outside any table".into() })
            }
            Section::Audit => match (key.as_str(), &value) {
                ("scope", Value::StrArray(dirs)) => manifest.audit.scope = dirs.clone(),
                ("scope", _) => {
                    return Err(ParseError { line: lineno, msg: "audit.scope must be a string array".into() })
                }
                (k, _) => {
                    return Err(ParseError { line: lineno, msg: format!("unknown [audit] key `{k}`") })
                }
            },
            Section::Site(t) | Section::Suppress(t) => {
                if t.kv.insert(key.clone(), (value, lineno)).is_some() {
                    return Err(ParseError { line: lineno, msg: format!("duplicate key `{key}`") });
                }
            }
        }
    }
    flush(&mut section, &mut manifest)?;
    Ok(manifest)
}

fn site_from(mut kv: HashMap<String, (Value, usize)>, line: usize) -> Result<ManifestSite, ParseError> {
    let file = take_str(&mut kv, "file", line)?;
    let symbol = take_str(&mut kv, "fn", line)?;
    let op = take_str(&mut kv, "op", line)?;
    let index = take_int(&mut kv, "index", line)? as usize;
    let order = take_str_array(&mut kv, "order", line)?;
    let role = take_str(&mut kv, "role", line)?;
    let why = take_str(&mut kv, "why", line)?;
    let sc = take_opt_str(&mut kv, "sc");
    let model_steps = take_opt_str_array(&mut kv, "model_steps", line)?.unwrap_or_default();
    if let Some((_, (_, l))) = kv.into_iter().next() {
        return Err(ParseError { line: l, msg: "unknown [[site]] key".into() });
    }
    if why.trim().is_empty() {
        return Err(ParseError { line, msg: "site `why` must be non-empty".into() });
    }
    Ok(ManifestSite { file, symbol, op, index, order, role, why, sc, model_steps, decl_line: line })
}

fn suppress_from(mut kv: HashMap<String, (Value, usize)>, line: usize) -> Result<Suppression, ParseError> {
    let rule = take_str(&mut kv, "rule", line)?;
    let file = take_str(&mut kv, "file", line)?;
    let symbol = take_opt_str(&mut kv, "fn").unwrap_or_else(|| "*".to_string());
    let reason = take_str(&mut kv, "reason", line)?;
    if let Some((_, (_, l))) = kv.into_iter().next() {
        return Err(ParseError { line: l, msg: "unknown [[suppress]] key".into() });
    }
    if reason.trim().is_empty() {
        return Err(ParseError { line, msg: "suppress `reason` must be non-empty".into() });
    }
    Ok(Suppression { rule, file, symbol, reason })
}

fn take_str(kv: &mut HashMap<String, (Value, usize)>, key: &str, line: usize) -> Result<String, ParseError> {
    match kv.remove(key) {
        Some((Value::Str(s), _)) => Ok(s),
        Some((_, l)) => Err(ParseError { line: l, msg: format!("`{key}` must be a string") }),
        None => Err(ParseError { line, msg: format!("missing required key `{key}`") }),
    }
}

fn take_opt_str(kv: &mut HashMap<String, (Value, usize)>, key: &str) -> Option<String> {
    match kv.remove(key) {
        Some((Value::Str(s), _)) => Some(s),
        Some((v, l)) => {
            // Re-insert so the unknown-key check reports it; type errors
            // on optional keys surface as "unknown key" at that line.
            kv.insert(key.to_string(), (v, l));
            None
        }
        None => None,
    }
}

fn take_int(kv: &mut HashMap<String, (Value, usize)>, key: &str, line: usize) -> Result<i64, ParseError> {
    match kv.remove(key) {
        Some((Value::Int(n), _)) => Ok(n),
        Some((_, l)) => Err(ParseError { line: l, msg: format!("`{key}` must be an integer") }),
        None => Err(ParseError { line, msg: format!("missing required key `{key}`") }),
    }
}

fn take_str_array(
    kv: &mut HashMap<String, (Value, usize)>,
    key: &str,
    line: usize,
) -> Result<Vec<String>, ParseError> {
    match kv.remove(key) {
        Some((Value::StrArray(v), _)) => Ok(v),
        Some((_, l)) => Err(ParseError { line: l, msg: format!("`{key}` must be a string array") }),
        None => Err(ParseError { line, msg: format!("missing required key `{key}`") }),
    }
}

fn take_opt_str_array(
    kv: &mut HashMap<String, (Value, usize)>,
    key: &str,
    _line: usize,
) -> Result<Option<Vec<String>>, ParseError> {
    match kv.remove(key) {
        Some((Value::StrArray(v), _)) => Ok(Some(v)),
        Some((_, l)) => Err(ParseError { line: l, msg: format!("`{key}` must be a string array") }),
        None => Ok(None),
    }
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_line_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'"' => in_str = !in_str,
            b'\\' if in_str => i += 1,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_kv(line: &str, lineno: usize) -> Result<(String, Value), ParseError> {
    let eq = line
        .find('=')
        .ok_or_else(|| ParseError { line: lineno, msg: format!("expected `key = value`, got `{line}`") })?;
    let key = line[..eq].trim().to_string();
    if key.is_empty() || !key.bytes().all(|c| c == b'_' || c.is_ascii_alphanumeric()) {
        return Err(ParseError { line: lineno, msg: format!("bad key `{key}`") });
    }
    let value = parse_value(line[eq + 1..].trim(), lineno)?;
    Ok((key, value))
}

fn parse_value(s: &str, lineno: usize) -> Result<Value, ParseError> {
    if let Some(body) = s.strip_prefix('"') {
        let end = unescaped_quote(body)
            .ok_or_else(|| ParseError { line: lineno, msg: "unterminated string".into() })?;
        if !body[end + 1..].trim().is_empty() {
            return Err(ParseError { line: lineno, msg: "trailing junk after string".into() });
        }
        return Ok(Value::Str(unescape(&body[..end])));
    }
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| ParseError { line: lineno, msg: "unterminated array (arrays must be single-line)".into() })?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            let inner = rest
                .strip_prefix('"')
                .ok_or_else(|| ParseError { line: lineno, msg: "array items must be strings".into() })?;
            let end = unescaped_quote(inner)
                .ok_or_else(|| ParseError { line: lineno, msg: "unterminated string in array".into() })?;
            items.push(unescape(&inner[..end]));
            rest = inner[end + 1..].trim();
            if let Some(r) = rest.strip_prefix(',') {
                rest = r.trim();
            } else if !rest.is_empty() {
                return Err(ParseError { line: lineno, msg: "expected `,` between array items".into() });
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(ParseError { line: lineno, msg: format!("cannot parse value `{s}`") })
}

/// Index of the first unescaped `"` in `s`.
fn unescaped_quote(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return Some(i),
            _ => i += 1,
        }
    }
    None
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# The manifest.
[audit]
scope = ["crates/kp-queue", "crates/hazard"]

[[site]]
file = "crates/kp-queue/src/queue.rs"   # trailing comment
fn = "help_enq"
op = "compare_exchange"
index = 0
order = ["SeqCst", "SeqCst"]
role = "linearization"
why = "appends the node; the linearization point of enqueue"
sc = "doorway counterexample: see DESIGN.md section 7"
model_steps = ["Append"]

[[site]]
file = "crates/kp-queue/src/stats.rs"
fn = "bump"
op = "fetch_add"
index = 0
order = ["Relaxed"]
role = "stats"
why = "monotonic counter, no synchronization intent"

[[suppress]]
rule = "sc-justification"
file = "crates/kp-queue/src/tests.rs"
reason = "test scaffolding uses SeqCst for simplicity"
"#;

    #[test]
    fn parses_sample() {
        let m = parse(SAMPLE).expect("parse");
        assert_eq!(m.audit.scope, vec!["crates/kp-queue", "crates/hazard"]);
        assert_eq!(m.sites.len(), 2);
        let s = &m.sites[0];
        assert_eq!(s.symbol, "help_enq");
        assert_eq!(s.order, vec!["SeqCst", "SeqCst"]);
        assert_eq!(s.model_steps, vec!["Append"]);
        assert!(s.sc.is_some());
        assert!(m.sites[1].sc.is_none());
        assert_eq!(m.suppressions.len(), 1);
        assert_eq!(m.suppressions[0].symbol, "*");
        assert!(m.is_suppressed("sc-justification", "crates/kp-queue/src/tests.rs", "anything"));
        assert!(!m.is_suppressed("sc-justification", "crates/kp-queue/src/queue.rs", "anything"));
    }

    #[test]
    fn missing_required_key_is_error() {
        let bad = "[[site]]\nfile = \"a.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"SeqCst\"]\nrole = \"stats\"\n";
        let err = parse(bad).unwrap_err();
        assert!(err.msg.contains("why"), "{}", err);
    }

    #[test]
    fn unknown_key_is_error() {
        let bad = "[[site]]\nfile = \"a.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"SeqCst\"]\nrole = \"stats\"\nwhy = \"x\"\nrol = \"oops\"\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn empty_why_is_error() {
        let bad = "[[site]]\nfile = \"a.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"SeqCst\"]\nrole = \"stats\"\nwhy = \"  \"\n";
        assert!(parse(bad).is_err());
    }

    #[test]
    fn duplicate_anchor_detection() {
        let two = "[[site]]\nfile = \"a.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"?\"]\nrole = \"stats\"\nwhy = \"x\"\n[[site]]\nfile = \"a.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"?\"]\nrole = \"stats\"\nwhy = \"y\"\n";
        let m = parse(two).expect("parse");
        assert_eq!(m.duplicate_keys().len(), 1);
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let m = parse("[audit]\nscope = [\"a#b\"]\n").expect("parse");
        assert_eq!(m.audit.scope, vec!["a#b"]);
    }
}
