//! Static audit of the workspace's atomic operations and `unsafe` code
//! against the checked-in `ATOMICS.toml` ordering manifest.
//!
//! The PPoPP 2011 wait-free queue's correctness argument lives in its
//! memory orderings: the doorway load, the three-CAS enqueue/dequeue
//! scheme, the Lemma 1/2 exactly-once guards. A silent `SeqCst` →
//! `Relaxed` "cleanup" compiles fine and passes every unit test on
//! x86, then loses dequeues on ARM. This crate makes each ordering a
//! *reviewed claim*: every atomic call site in the audited crates must
//! have a manifest entry stating its orderings, a role tag, and a
//! one-line justification, and CI diffs code against manifest on every
//! run (`cargo run -p atomics-audit`).
//!
//! The pipeline:
//!
//! 1. [`scan`] extracts atomic call sites, `unsafe` occurrences, and
//!    facade violations from the scoped sources, using stable anchors
//!    `(file, fn, op, index)` that survive line churn.
//! 2. [`manifest`] parses `ATOMICS.toml` (hand-rolled TOML subset —
//!    the container has no `toml` crate).
//! 3. [`rules`] diffs the two and emits findings, each suppressible by
//!    a reviewed `[[suppress]]` entry.
//!
//! The binary exits 0 when clean, 1 on findings, 2 on operational
//! errors — `scripts/ci.sh` treats non-zero as a gate failure.

#![warn(missing_docs)]

pub mod manifest;
pub mod rules;
pub mod scan;

use std::path::Path;

/// Outcome of one audit run, for the binary and for tests.
#[derive(Debug)]
pub struct AuditOutcome {
    /// Unsuppressed findings (empty = gate passes).
    pub findings: Vec<rules::Finding>,
    /// How many findings a `[[suppress]]` entry absorbed.
    pub suppressed: usize,
    /// Scan statistics for the summary line.
    pub stats: AuditStats,
}

/// Coverage counters printed in the summary.
#[derive(Debug, Default)]
pub struct AuditStats {
    /// Files scanned.
    pub files: usize,
    /// Atomic call sites found in code.
    pub sites: usize,
    /// Manifest entries.
    pub manifest_sites: usize,
    /// `unsafe` occurrences found.
    pub unsafes: usize,
}

/// Runs the full audit: parse manifest at `manifest_path`, scan the
/// manifest's scope under `root`, apply the rules.
pub fn audit(root: &Path, manifest_path: &Path) -> Result<AuditOutcome, String> {
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
    let manifest = manifest::parse(&text).map_err(|e| e.to_string())?;
    if manifest.audit.scope.is_empty() {
        return Err("ATOMICS.toml [audit] scope is empty — nothing to audit".into());
    }
    let report = scan::scan_scope(root, &manifest.audit.scope)?;
    let (findings, suppressed) = rules::run(&report, &manifest);
    Ok(AuditOutcome {
        findings,
        suppressed,
        stats: AuditStats {
            files: report.files.len(),
            sites: report.sites.len(),
            manifest_sites: manifest.sites.len(),
            unsafes: report.unsafes.len(),
        },
    })
}

/// Scans the scope and prints a TOML skeleton for every atomic site —
/// the bootstrap path for populating `ATOMICS.toml` and the recovery
/// path after a refactor moves sites.
pub fn dump_skeleton(root: &Path, scope: &[String]) -> Result<String, String> {
    let report = scan::scan_scope(root, scope)?;
    let mut out = String::new();
    for site in &report.sites {
        out.push_str(&format!(
            "[[site]]\nfile = \"{}\"\nfn = \"{}\"\nop = \"{}\"\nindex = {}\norder = [{}]\n# recv: {}  (line {})\nrole = \"FIXME\"\nwhy = \"FIXME\"\n\n",
            site.file,
            site.symbol,
            site.op,
            site.index,
            site.orderings.iter().map(|o| format!("\"{o}\"")).collect::<Vec<_>>().join(", "),
            site.recv,
            site.line,
        ));
    }
    Ok(out)
}
