//! CI gate: `cargo run -p atomics-audit [-- --root DIR --manifest FILE]`.
//!
//! Exit codes: 0 clean, 1 unsuppressed findings, 2 operational error
//! (unreadable manifest, bad scope, parse failure).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = default_root();
    let mut manifest: Option<PathBuf> = None;
    let mut dump = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--manifest" => match args.next() {
                Some(v) => manifest = Some(PathBuf::from(v)),
                None => return usage("--manifest needs a value"),
            },
            "--dump" => dump = true,
            "--help" | "-h" => {
                print!("{HELP}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let manifest = manifest.unwrap_or_else(|| root.join("ATOMICS.toml"));

    if dump {
        // Bootstrap mode: scope comes from the manifest when present,
        // else the default audited crates.
        let scope = match std::fs::read_to_string(&manifest)
            .ok()
            .and_then(|t| atomics_audit::manifest::parse(&t).ok())
            .map(|m| m.audit.scope)
        {
            Some(s) if !s.is_empty() => s,
            _ => vec![
                "crates/kp-queue".to_string(),
                "crates/hazard".to_string(),
                "crates/idpool".to_string(),
            ],
        };
        return match atomics_audit::dump_skeleton(&root, &scope) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("atomics-audit: {e}");
                ExitCode::from(2)
            }
        };
    }

    match atomics_audit::audit(&root, &manifest) {
        Ok(outcome) => {
            for f in &outcome.findings {
                println!("{f}");
            }
            let s = &outcome.stats;
            println!(
                "atomics-audit: {} files, {} atomic sites ({} in manifest), {} unsafe occurrences, \
                 {} finding(s), {} suppressed",
                s.files,
                s.sites,
                s.manifest_sites,
                s.unsafes,
                outcome.findings.len(),
                outcome.suppressed
            );
            if outcome.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("atomics-audit: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: two levels up from this crate's manifest dir
/// when run via `cargo run -p atomics-audit`, else the cwd.
fn default_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(dir);
        if let Some(root) = p.ancestors().nth(2) {
            return root.to_path_buf();
        }
    }
    PathBuf::from(".")
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("atomics-audit: {msg}\n{HELP}");
    ExitCode::from(2)
}

const HELP: &str = "\
Usage: cargo run -p atomics-audit [-- OPTIONS]

Audits every atomic call site and unsafe occurrence in the scoped
crates against ATOMICS.toml. Exit 0 = clean, 1 = findings, 2 = error.

Options:
  --root DIR        workspace root (default: autodetected)
  --manifest FILE   manifest path (default: ROOT/ATOMICS.toml)
  --dump            print a TOML skeleton for every atomic site found
                    (bootstrap / refactor-recovery aid) and exit
  -h, --help        this text
";
