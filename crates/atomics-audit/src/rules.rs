//! Lint rules run over the scan report against the manifest.
//!
//! Every rule has a stable id and every finding names it, so a
//! reviewer-approved exception is one `[[suppress]]` entry away — the
//! audit is strict by default but never a dead end.

use crate::manifest::{Manifest, ManifestSite, ROLES};
use crate::scan::{ScanReport, Site};
use std::collections::HashSet;
use std::fmt;

/// Rule identifiers, kept in one place so `--explain`-style help and
/// suppressions can't drift from the implementation.
pub mod rule {
    /// Atomic call site with no `[[site]]` manifest entry.
    pub const UNDOCUMENTED: &str = "undocumented-atomic";
    /// Manifest entry whose anchor no longer matches any code site.
    pub const STALE: &str = "stale-manifest";
    /// Manifest entry declared twice for the same anchor.
    pub const DUPLICATE: &str = "duplicate-site";
    /// Code orderings differ from the manifest's `order` claim.
    pub const ORDER_DRIFT: &str = "order-drift";
    /// SeqCst ordering used without an `sc = "…"` justification.
    pub const SC_JUSTIFICATION: &str = "sc-justification";
    /// CAS failure ordering stronger than the success ordering's
    /// load half.
    pub const CAS_FAILURE: &str = "cas-failure-order";
    /// `linearization`-tagged site weaker than its op class requires.
    pub const LIN_STRENGTH: &str = "linearization-strength";
    /// `unsafe` occurrence without an attached `SAFETY:` comment.
    pub const SAFETY: &str = "safety-comment";
    /// Direct `std::sync::atomic` / `crossbeam_utils` reference outside
    /// the `kp-sync` facade.
    pub const FACADE: &str = "facade";
    /// Unknown role tag, or `model_steps` misuse.
    pub const BAD_ROLE: &str = "bad-role";
}

/// All rule ids, for validating `[[suppress]]` entries.
pub const ALL_RULES: &[&str] = &[
    rule::UNDOCUMENTED,
    rule::STALE,
    rule::DUPLICATE,
    rule::ORDER_DRIFT,
    rule::SC_JUSTIFICATION,
    rule::CAS_FAILURE,
    rule::LIN_STRENGTH,
    rule::SAFETY,
    rule::FACADE,
    rule::BAD_ROLE,
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id.
    pub rule: &'static str,
    /// Root-relative file.
    pub file: String,
    /// 1-based line (0 = manifest-side finding with no code location).
    pub line: usize,
    /// Enclosing symbol, when known.
    pub symbol: String,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "[{}] {}:{} ({}): {}", self.rule, self.file, self.line, self.symbol, self.msg)
        } else {
            write!(f, "[{}] {} ({}): {}", self.rule, self.file, self.symbol, self.msg)
        }
    }
}

/// Synchronization strength rank for whole orderings.
/// `Release` and `Acquire` are incomparable in the memory model; for
/// lint purposes both rank as "half" (1) below `AcqRel` (2) below
/// `SeqCst` (3) — the rules below only ever compare within one
/// direction class, where the rank order is sound.
fn rank(ord: &str) -> Option<u8> {
    match ord {
        "Relaxed" => Some(0),
        "Acquire" | "Release" => Some(1),
        "AcqRel" => Some(2),
        "SeqCst" => Some(3),
        _ => None, // "?" or unknown
    }
}

/// The *load half* of an ordering, for the CAS failure-vs-success
/// comparison: a CAS failure performs only a load, so its ordering must
/// not promise more acquire strength than the success ordering's load
/// side already does.
fn load_half(ord: &str) -> Option<u8> {
    match ord {
        "Relaxed" | "Release" => Some(0),
        "Acquire" | "AcqRel" => Some(1),
        "SeqCst" => Some(2),
        _ => None,
    }
}

fn is_cas(op: &str) -> bool {
    matches!(op, "compare_exchange" | "compare_exchange_weak" | "fetch_update")
}

fn is_rmw(op: &str) -> bool {
    op != "load" && op != "store"
}

/// Runs every rule; returns findings not covered by a suppression,
/// plus the count of suppressed findings (reported for transparency).
pub fn run(report: &ScanReport, manifest: &Manifest) -> (Vec<Finding>, usize) {
    let mut findings = Vec::new();

    for dup in manifest.duplicate_keys() {
        findings.push(Finding {
            rule: rule::DUPLICATE,
            file: "ATOMICS.toml".into(),
            line: 0,
            symbol: dup,
            msg: "same anchor declared by two [[site]] entries".into(),
        });
    }
    for s in &manifest.suppressions {
        if !ALL_RULES.contains(&s.rule.as_str()) {
            findings.push(Finding {
                rule: rule::BAD_ROLE,
                file: "ATOMICS.toml".into(),
                line: 0,
                symbol: s.file.clone(),
                msg: format!("suppression names unknown rule `{}`", s.rule),
            });
        }
    }

    let index = manifest.site_index();
    let mut matched: HashSet<(String, String, String, usize)> = HashSet::new();

    for site in &report.sites {
        match index.get(&(site.file.clone(), site.symbol.clone(), site.op.clone(), site.index)) {
            None => findings.push(Finding {
                rule: rule::UNDOCUMENTED,
                file: site.file.clone(),
                line: site.line,
                symbol: site.symbol.clone(),
                msg: format!(
                    "atomic `{}.{}({})` has no ATOMICS.toml entry (anchor: {})",
                    site.recv,
                    site.op,
                    site.orderings.join(", "),
                    site.anchor()
                ),
            }),
            Some(entry) => {
                matched.insert(entry.key());
                check_site(site, entry, &mut findings);
            }
        }
    }

    for entry in &manifest.sites {
        if !matched.contains(&entry.key()) {
            findings.push(Finding {
                rule: rule::STALE,
                file: entry.file.clone(),
                line: 0,
                symbol: entry.symbol.clone(),
                msg: format!(
                    "manifest entry {}/{}#{} (ATOMICS.toml:{}) matches no code site — \
                     update or remove it",
                    entry.symbol, entry.op, entry.index, entry.decl_line
                ),
            });
        }
        check_manifest_entry(entry, &mut findings);
    }

    for u in &report.unsafes {
        if !u.documented {
            findings.push(Finding {
                rule: rule::SAFETY,
                file: u.file.clone(),
                line: u.line,
                symbol: u.symbol.clone(),
                msg: format!("{} without an attached `// SAFETY:` comment", u.kind),
            });
        }
    }

    for v in &report.facade {
        findings.push(Finding {
            rule: rule::FACADE,
            file: v.file.clone(),
            line: v.line,
            symbol: "(import)".into(),
            msg: format!("direct `{}` reference — import via `kp_sync` instead", v.what),
        });
    }

    let (kept, suppressed): (Vec<_>, Vec<_>) = findings
        .into_iter()
        .partition(|f| !manifest.is_suppressed(f.rule, &f.file, &f.symbol));
    (kept, suppressed.len())
}

/// Rules that need both the code site and its manifest entry.
fn check_site(site: &Site, entry: &ManifestSite, findings: &mut Vec<Finding>) {
    // order-drift: exact match, element-wise. This is also what stops a
    // site from being *stronger* than the manifest claims — any change
    // in either direction must be re-justified in review.
    if site.orderings != entry.order {
        findings.push(Finding {
            rule: rule::ORDER_DRIFT,
            file: site.file.clone(),
            line: site.line,
            symbol: site.symbol.clone(),
            msg: format!(
                "code orderings [{}] != manifest claim [{}] (ATOMICS.toml:{})",
                site.orderings.join(", "),
                entry.order.join(", "),
                entry.decl_line
            ),
        });
    }

    if site.orderings.iter().any(|o| o == "SeqCst")
        && entry.sc.as_deref().is_none_or(|s| s.trim().is_empty())
    {
        findings.push(Finding {
            rule: rule::SC_JUSTIFICATION,
            file: site.file.clone(),
            line: site.line,
            symbol: site.symbol.clone(),
            msg: format!(
                "SeqCst at {} needs an `sc = \"…\"` justification in its manifest entry",
                site.anchor()
            ),
        });
    }

    if is_cas(&site.op) && site.orderings.len() == 2 {
        let (succ, fail) = (&site.orderings[0], &site.orderings[1]);
        if let (Some(s), Some(f)) = (load_half(succ), load_half(fail)) {
            if f > s {
                findings.push(Finding {
                    rule: rule::CAS_FAILURE,
                    file: site.file.clone(),
                    line: site.line,
                    symbol: site.symbol.clone(),
                    msg: format!(
                        "CAS failure ordering {fail} is stronger than the load half of \
                         success ordering {succ} — relax the failure ordering"
                    ),
                });
            }
        }
    }

    if entry.role == "linearization" {
        // A linearization point must synchronize: RMW ops need both
        // halves (>= AcqRel), a load needs Acquire, a store Release.
        let needed = if is_rmw(&site.op) { 2 } else { 1 };
        let actual = site.orderings.first().and_then(|o| rank(o));
        if let Some(a) = actual {
            if a < needed {
                findings.push(Finding {
                    rule: rule::LIN_STRENGTH,
                    file: site.file.clone(),
                    line: site.line,
                    symbol: site.symbol.clone(),
                    msg: format!(
                        "linearization site uses {} but its op class requires at least {}",
                        site.orderings[0],
                        if needed == 2 { "AcqRel" } else { "Acquire/Release" }
                    ),
                });
            }
        }
    }
}

/// Manifest-side validity rules (run even for stale entries, so a bad
/// role never hides behind a rename).
fn check_manifest_entry(entry: &ManifestSite, findings: &mut Vec<Finding>) {
    if !ROLES.contains(&entry.role.as_str()) {
        findings.push(Finding {
            rule: rule::BAD_ROLE,
            file: entry.file.clone(),
            line: 0,
            symbol: entry.symbol.clone(),
            msg: format!(
                "unknown role `{}` (ATOMICS.toml:{}); expected one of: {}",
                entry.role,
                entry.decl_line,
                ROLES.join(", ")
            ),
        });
    }
    if entry.role == "linearization" && entry.model_steps.is_empty() {
        findings.push(Finding {
            rule: rule::BAD_ROLE,
            file: entry.file.clone(),
            line: 0,
            symbol: entry.symbol.clone(),
            msg: format!(
                "linearization site (ATOMICS.toml:{}) must name its kp-model `model_steps`",
                entry.decl_line
            ),
        });
    }
    if entry.role != "linearization" && !entry.model_steps.is_empty() {
        findings.push(Finding {
            rule: rule::BAD_ROLE,
            file: entry.file.clone(),
            line: 0,
            symbol: entry.symbol.clone(),
            msg: format!(
                "`model_steps` is only meaningful for role=linearization (ATOMICS.toml:{})",
                entry.decl_line
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest;
    use crate::scan;

    fn report_for(src: &str) -> ScanReport {
        let mut r = ScanReport::default();
        scan::scan_file("lib.rs", src, &mut r);
        r
    }

    fn manifest_for(toml: &str) -> Manifest {
        manifest::parse(toml).expect("manifest parses")
    }

    const DOCUMENTED: &str = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"Acquire\"]\nrole = \"helper-guard\"\nwhy = \"x\"\n";

    #[test]
    fn undocumented_site_is_flagged() {
        let r = report_for("fn f() { X.load(Ordering::Acquire); }");
        let (f, _) = run(&r, &manifest_for(""));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::UNDOCUMENTED);
    }

    #[test]
    fn documented_site_is_clean() {
        let r = report_for("fn f() { X.load(Ordering::Acquire); }");
        let (f, _) = run(&r, &manifest_for(DOCUMENTED));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn order_drift_is_flagged() {
        let r = report_for("fn f() { X.load(Ordering::SeqCst); }");
        let (f, _) = run(&r, &manifest_for(DOCUMENTED));
        assert!(f.iter().any(|f| f.rule == rule::ORDER_DRIFT));
    }

    #[test]
    fn stale_entry_is_flagged() {
        let r = report_for("fn g() {}");
        let (f, _) = run(&r, &manifest_for(DOCUMENTED));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rule::STALE);
    }

    #[test]
    fn seqcst_needs_sc_field() {
        let m = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"SeqCst\"]\nrole = \"doorway\"\nwhy = \"x\"\n";
        let r = report_for("fn f() { X.load(Ordering::SeqCst); }");
        let (f, _) = run(&r, &manifest_for(m));
        assert!(f.iter().any(|f| f.rule == rule::SC_JUSTIFICATION), "{f:?}");
        let with_sc = format!("{m}sc = \"paper requires TSO-like total order here\"\n");
        let (f2, _) = run(&r, &manifest_for(&with_sc));
        assert!(f2.is_empty(), "{f2:?}");
    }

    #[test]
    fn cas_failure_stronger_than_success_is_flagged() {
        let m = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"compare_exchange\"\nindex = 0\norder = [\"Release\", \"Acquire\"]\nrole = \"reclamation\"\nwhy = \"x\"\n";
        let r = report_for("fn f() { X.compare_exchange(a, b, Ordering::Release, Ordering::Acquire); }");
        let (f, _) = run(&r, &manifest_for(m));
        assert!(f.iter().any(|f| f.rule == rule::CAS_FAILURE), "{f:?}");
    }

    #[test]
    fn cas_acqrel_acquire_is_fine() {
        let m = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"compare_exchange\"\nindex = 0\norder = [\"AcqRel\", \"Acquire\"]\nrole = \"reclamation\"\nwhy = \"x\"\n";
        let r = report_for("fn f() { X.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire); }");
        let (f, _) = run(&r, &manifest_for(m));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn weak_linearization_site_is_flagged() {
        let m = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"compare_exchange\"\nindex = 0\norder = [\"Acquire\", \"Relaxed\"]\nrole = \"linearization\"\nwhy = \"x\"\nmodel_steps = [\"Append\"]\n";
        let r = report_for("fn f() { X.compare_exchange(a, b, Ordering::Acquire, Ordering::Relaxed); }");
        let (f, _) = run(&r, &manifest_for(m));
        assert!(f.iter().any(|f| f.rule == rule::LIN_STRENGTH), "{f:?}");
    }

    #[test]
    fn linearization_load_needs_only_acquire() {
        let m = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"Acquire\"]\nrole = \"linearization\"\nwhy = \"x\"\nmodel_steps = [\"Stage0Empty\"]\n";
        let r = report_for("fn f() { X.load(Ordering::Acquire); }");
        let (f, _) = run(&r, &manifest_for(m));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_suppressible() {
        let r = report_for("fn f() { unsafe { g() } }");
        let (f, _) = run(&r, &manifest_for(""));
        assert!(f.iter().any(|f| f.rule == rule::SAFETY));
        let sup = "[[suppress]]\nrule = \"safety-comment\"\nfile = \"lib.rs\"\nfn = \"f\"\nreason = \"test scaffolding\"\n";
        let (f2, n) = run(&r, &manifest_for(sup));
        assert!(f2.is_empty(), "{f2:?}");
        assert_eq!(n, 1);
    }

    #[test]
    fn facade_violation_is_flagged() {
        let r = report_for("use std::sync::atomic::AtomicUsize;\n");
        let (f, _) = run(&r, &manifest_for(""));
        assert!(f.iter().any(|f| f.rule == rule::FACADE));
    }

    #[test]
    fn linearization_without_model_steps_is_flagged() {
        let m = "[[site]]\nfile = \"lib.rs\"\nfn = \"f\"\nop = \"load\"\nindex = 0\norder = [\"Acquire\"]\nrole = \"linearization\"\nwhy = \"x\"\n";
        let r = report_for("fn f() { X.load(Ordering::Acquire); }");
        let (f, _) = run(&r, &manifest_for(m));
        assert!(f.iter().any(|f| f.rule == rule::BAD_ROLE));
    }

    #[test]
    fn unknown_suppression_rule_is_flagged() {
        let sup = "[[suppress]]\nrule = \"no-such-rule\"\nfile = \"lib.rs\"\nreason = \"x\"\n";
        let (f, _) = run(&ScanReport::default(), &manifest_for(sup));
        assert!(f.iter().any(|f| f.rule == rule::BAD_ROLE));
    }
}
