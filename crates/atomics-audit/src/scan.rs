//! Source scanner: extracts atomic call sites, `unsafe` occurrences,
//! and facade violations from Rust sources without a real parser.
//!
//! The extraction works on a *masked* copy of each file in which
//! comments and string/char literals are replaced by spaces (newlines
//! preserved), so byte offsets and line numbers in the masked text match
//! the original. On top of the masked text a small brace-tracking pass
//! assigns each byte to its innermost enclosing `fn`, which is what
//! makes site anchors stable: a site is identified by
//! `(file, fn, op, index-within-fn)` — line numbers are recorded for
//! diagnostics but never used for matching, so unrelated line churn
//! cannot invalidate the manifest.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Atomic methods the scanner recognizes, with how many `Ordering`
/// arguments each takes.
pub const ATOMIC_METHODS: &[(&str, usize)] = &[
    ("load", 1),
    ("store", 1),
    ("swap", 1),
    ("compare_exchange", 2),
    ("compare_exchange_weak", 2),
    ("fetch_add", 1),
    ("fetch_sub", 1),
    ("fetch_and", 1),
    ("fetch_or", 1),
    ("fetch_xor", 1),
    ("fetch_nand", 1),
    ("fetch_max", 1),
    ("fetch_min", 1),
    ("fetch_update", 2),
];

/// One extracted atomic operation call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// Root-relative path, `/`-separated.
    pub file: String,
    /// 1-based line (diagnostics only; not part of the anchor).
    pub line: usize,
    /// Innermost enclosing `fn` name, or `(top)` at module scope.
    pub symbol: String,
    /// Method name (`load`, `compare_exchange`, …).
    pub op: String,
    /// Ordinal of this `op` within `symbol` (0-based, file order).
    pub index: usize,
    /// Receiver expression fragment, for human-readable reports.
    pub recv: String,
    /// `Ordering::` arguments in call order; `"?"` when the ordering is
    /// a parameter or otherwise not a literal `Ordering::X` token.
    pub orderings: Vec<String>,
}

impl Site {
    /// The stable anchor string used in reports: `file fn/op#index`.
    pub fn anchor(&self) -> String {
        format!("{} {}/{}#{}", self.file, self.symbol, self.op, self.index)
    }
}

/// What kind of `unsafe` occurrence was found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }`.
    Block,
    /// `unsafe fn` definition.
    Fn,
    /// `unsafe impl`.
    Impl,
    /// `unsafe trait`.
    Trait,
}

impl fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsafeKind::Block => write!(f, "unsafe block"),
            UnsafeKind::Fn => write!(f, "unsafe fn"),
            UnsafeKind::Impl => write!(f, "unsafe impl"),
            UnsafeKind::Trait => write!(f, "unsafe trait"),
        }
    }
}

/// One `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Innermost enclosing `fn`, or the unsafe fn's own name for
    /// [`UnsafeKind::Fn`].
    pub symbol: String,
    /// Block / fn / impl / trait.
    pub kind: UnsafeKind,
    /// Whether a `SAFETY:` comment (or `# Safety` doc section for fns)
    /// was found attached above the occurrence.
    pub documented: bool,
}

/// A direct `std::sync::atomic` / `crossbeam_utils` reference inside
/// the facade-enforced scope.
#[derive(Debug, Clone)]
pub struct FacadeViolation {
    /// Root-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// The offending path prefix that was matched.
    pub what: String,
}

/// Everything the scanner extracted from one scope.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// Atomic call sites, in deterministic (file, byte-offset) order.
    pub sites: Vec<Site>,
    /// `unsafe` occurrences.
    pub unsafes: Vec<UnsafeSite>,
    /// Facade-rule violations.
    pub facade: Vec<FacadeViolation>,
    /// Files scanned (root-relative), for coverage reporting.
    pub files: Vec<String>,
}

/// Scans every `.rs` file under `root/<dir>` for each scope dir.
///
/// Returns an error string for I/O problems (missing scope directories
/// are an error: a typo in the manifest scope must not silently shrink
/// the audit).
pub fn scan_scope(root: &Path, scope: &[String]) -> Result<ScanReport, String> {
    let mut files = Vec::new();
    for dir in scope {
        let abs = root.join(dir);
        if !abs.is_dir() {
            return Err(format!("scope entry `{dir}` is not a directory under {}", root.display()));
        }
        collect_rs_files(&abs, &mut files)?;
    }
    files.sort();
    let mut report = ScanReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .map_err(|_| "file escaped root".to_string())?
            .to_string_lossy()
            .replace('\\', "/");
        let text = fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        scan_file(&rel, &text, &mut report);
        report.files.push(rel);
    }
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans one file's text into `report`.
pub fn scan_file(rel: &str, text: &str, report: &mut ScanReport) {
    let masked = mask_comments_and_strings(text);
    let symbols = SymbolMap::build(&masked);
    let lines = LineIndex::new(text);

    extract_atomic_sites(rel, &masked, &symbols, &lines, report);
    extract_unsafe_sites(rel, text, &masked, &symbols, &lines, report);
    extract_facade_violations(rel, &masked, &lines, report);
}

// ---------------------------------------------------------------------
// masking
// ---------------------------------------------------------------------

/// Replaces comments, string literals, and char literals with spaces,
/// preserving length and newlines.
pub fn mask_comments_and_strings(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                // Line comment (also doc comments).
                while i < b.len() && b[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Block comment; Rust block comments nest.
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                // String literal (handles escapes).
                out[i] = b' ';
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out[i] = b' ';
                        if b[i + 1] != b'\n' {
                            out[i + 1] = b' ';
                        }
                        i += 2;
                    } else if b[i] == b'"' {
                        out[i] = b' ';
                        i += 1;
                        break;
                    } else {
                        if b[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string r"…" / r#"…"# (only if it really is one).
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' && !is_ident_byte(b[i.wrapping_sub(1)].min(b'z')) {
                    // Find the closing `"###…`.
                    let closer: Vec<u8> =
                        std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                    let start = i;
                    let mut k = j + 1;
                    while k < b.len() && !b[k..].starts_with(&closer) {
                        k += 1;
                    }
                    let end = (k + closer.len()).min(b.len());
                    for slot in &mut out[start..end] {
                        if *slot != b'\n' {
                            *slot = b' ';
                        }
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal vs lifetime. A char literal closes within
                // a few bytes; a lifetime never has a closing quote.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    // Escaped char literal: scan to closing quote.
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' && j - i < 12 {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        for slot in &mut out[i..=j] {
                            *slot = b' ';
                        }
                        i = j + 1;
                    } else {
                        i += 1;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out[i] = b' ';
                    out[i + 1] = b' ';
                    out[i + 2] = b' ';
                    i += 3;
                } else {
                    // Lifetime; leave it (identifier-ish, harmless).
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("masking only writes ASCII spaces over ASCII bytes")
}

fn is_ident_byte(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

// ---------------------------------------------------------------------
// line numbers
// ---------------------------------------------------------------------

struct LineIndex {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(text: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line of `offset`.
    fn line_of(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }
}

// ---------------------------------------------------------------------
// symbol map (innermost enclosing fn per byte offset)
// ---------------------------------------------------------------------

struct SymbolMap {
    /// `(start, end, name)` spans of fn bodies, innermost resolvable by
    /// taking the latest-starting span containing the offset.
    spans: Vec<(usize, usize, String)>,
}

impl SymbolMap {
    fn build(masked: &str) -> Self {
        let b = masked.as_bytes();
        let mut spans = Vec::new();
        let mut stack: Vec<(usize, usize, String)> = Vec::new(); // (depth, start, name)
        let mut depth = 0usize;
        let mut pending_fn: Option<String> = None;
        let mut i = 0;
        while i < b.len() {
            let c = b[i];
            if is_ident_start(c) {
                let start = i;
                while i < b.len() && is_ident_byte(b[i]) {
                    i += 1;
                }
                let word = &masked[start..i];
                if word == "fn" {
                    // Next identifier (if any) is the fn's name; `fn(`
                    // is a fn-pointer type and has none.
                    let mut j = i;
                    while j < b.len() && (b[j] as char).is_whitespace() {
                        j += 1;
                    }
                    if j < b.len() && is_ident_start(b[j]) {
                        let ns = j;
                        while j < b.len() && is_ident_byte(b[j]) {
                            j += 1;
                        }
                        pending_fn = Some(masked[ns..j].to_string());
                        i = j;
                    }
                }
                continue;
            }
            match c {
                b'{' => {
                    depth += 1;
                    if let Some(name) = pending_fn.take() {
                        stack.push((depth, i, name));
                    }
                }
                b'}' => {
                    if let Some(&(d, start, _)) = stack.last() {
                        if d == depth {
                            let (_, _, name) = stack.pop().expect("non-empty");
                            spans.push((start, i, name));
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                b';' => {
                    // Bodyless fn signature (trait method declaration).
                    pending_fn = None;
                }
                _ => {}
            }
            i += 1;
        }
        // Unclosed spans (truncated file): close at EOF.
        for (_, start, name) in stack {
            spans.push((start, masked.len(), name));
        }
        spans.sort_by_key(|&(s, _, _)| s);
        SymbolMap { spans }
    }

    fn symbol_at(&self, offset: usize) -> String {
        self.spans
            .iter()
            .rfind(|&&(s, e, _)| s <= offset && offset < e)
            .map(|(_, _, n)| n.clone())
            .unwrap_or_else(|| "(top)".to_string())
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

// ---------------------------------------------------------------------
// atomic sites
// ---------------------------------------------------------------------

fn extract_atomic_sites(
    rel: &str,
    masked: &str,
    symbols: &SymbolMap,
    lines: &LineIndex,
    report: &mut ScanReport,
) {
    let b = masked.as_bytes();
    let mut raw: Vec<Site> = Vec::new();
    let mut i = 0;
    while i < b.len() {
        if b[i] != b'.' {
            i += 1;
            continue;
        }
        // Method name after the dot.
        let ns = i + 1;
        let mut j = ns;
        while j < b.len() && is_ident_byte(b[j]) {
            j += 1;
        }
        let name = &masked[ns..j];
        let Some(&(op, _n_orderings)) = ATOMIC_METHODS.iter().find(|(m, _)| *m == name) else {
            i = j.max(i + 1);
            continue;
        };
        // Must be a call: `(` immediately after (whitespace allowed).
        let mut k = j;
        while k < b.len() && (b[k] as char).is_whitespace() {
            k += 1;
        }
        if k >= b.len() || b[k] != b'(' {
            i = j;
            continue;
        }
        // Balance parens to find the argument span.
        let args_start = k + 1;
        let mut pdepth = 1usize;
        let mut m = args_start;
        while m < b.len() && pdepth > 0 {
            match b[m] {
                b'(' => pdepth += 1,
                b')' => pdepth -= 1,
                _ => {}
            }
            m += 1;
        }
        let args = &masked[args_start..m.saturating_sub(1)];
        let orderings = extract_orderings(args);
        let recv = receiver_fragment(masked, i);
        raw.push(Site {
            file: rel.to_string(),
            line: lines.line_of(i),
            symbol: symbols.symbol_at(i),
            op: op.to_string(),
            index: 0, // assigned below
            recv,
            orderings,
        });
        i = j;
    }
    // Assign per-(symbol, op) ordinals in file order.
    let mut counters: std::collections::HashMap<(String, String), usize> =
        std::collections::HashMap::new();
    for site in &mut raw {
        let key = (site.symbol.clone(), site.op.clone());
        let c = counters.entry(key).or_insert(0);
        site.index = *c;
        *c += 1;
    }
    report.sites.extend(raw);
}

/// All `Ordering::X` tokens in an argument list, in order; `["?"]` when
/// none are literal (ordering passed as a parameter).
fn extract_orderings(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = args.as_bytes();
    let needle = b"Ordering::";
    let mut i = 0;
    while i + needle.len() <= b.len() {
        if &b[i..i + needle.len()] == needle
            && (i == 0 || !is_ident_byte(b[i - 1]))
        {
            let ns = i + needle.len();
            let mut j = ns;
            while j < b.len() && is_ident_byte(b[j]) {
                j += 1;
            }
            out.push(args[ns..j].to_string());
            i = j;
        } else {
            i += 1;
        }
    }
    if out.is_empty() {
        out.push("?".to_string());
    }
    out
}

/// A short receiver fragment ending at the dot at `dot`, for reports.
fn receiver_fragment(masked: &str, dot: usize) -> String {
    let b = masked.as_bytes();
    let mut s = dot;
    let mut depth = 0usize;
    while s > 0 {
        let c = b[s - 1];
        match c {
            b')' | b']' => depth += 1,
            b'(' | b'[' => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            c if is_ident_byte(c) || c == b'.' || c == b':' || c == b'*' || c == b'&' => {}
            _ if depth > 0 => {}
            _ => break,
        }
        s -= 1;
    }
    masked[s..dot].trim().chars().take(48).collect()
}

// ---------------------------------------------------------------------
// unsafe occurrences
// ---------------------------------------------------------------------

fn extract_unsafe_sites(
    rel: &str,
    original: &str,
    masked: &str,
    symbols: &SymbolMap,
    lines: &LineIndex,
    report: &mut ScanReport,
) {
    let b = masked.as_bytes();
    let orig_lines: Vec<&str> = original.lines().collect();
    let mut i = 0;
    while i < b.len() {
        if !is_ident_start(b[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < b.len() && is_ident_byte(b[i]) {
            i += 1;
        }
        if &masked[start..i] != "unsafe" {
            continue;
        }
        // Classify by the next token.
        let mut j = i;
        while j < b.len() && (b[j] as char).is_whitespace() {
            j += 1;
        }
        let kind = if j < b.len() && b[j] == b'{' {
            UnsafeKind::Block
        } else {
            let ts = j;
            while j < b.len() && is_ident_byte(b[j]) {
                j += 1;
            }
            match &masked[ts..j] {
                "fn" => {
                    // `unsafe fn(…)` with no name is a fn-pointer *type*
                    // (e.g. a `drop_fn: unsafe fn(*mut u8)` field), not
                    // unsafe code — nothing to document.
                    let mut k = j;
                    while k < b.len() && (b[k] as char).is_whitespace() {
                        k += 1;
                    }
                    if k < b.len() && b[k] == b'(' {
                        continue;
                    }
                    UnsafeKind::Fn
                }
                "impl" => UnsafeKind::Impl,
                "trait" => UnsafeKind::Trait,
                // `unsafe` in type position (`unsafe fn(…)` pointers hit
                // the Fn arm above) or anything unrecognized: treat as a
                // block-like occurrence so nothing escapes the audit.
                _ => UnsafeKind::Block,
            }
        };
        let line = lines.line_of(start);
        let documented = has_safety_comment(&orig_lines, line, kind);
        report.unsafes.push(UnsafeSite {
            file: rel.to_string(),
            line,
            symbol: symbols.symbol_at(start),
            kind,
            documented,
        });
    }
}

/// Whether an attached `SAFETY:` comment (or, for `unsafe fn`/`unsafe
/// trait`, a `# Safety` doc section) precedes `line` (1-based).
///
/// "Attached" means: on the same line, or in the contiguous run of
/// comment/attribute/blank lines directly above the occurrence's
/// statement. One intervening code line is tolerated when it belongs to
/// the same statement (the comment sits above a multi-line statement
/// whose `unsafe` is not on the first line) — recognized by the
/// preceding line not ending in `;`, `{`, or `}`.
fn has_safety_comment(orig_lines: &[&str], line: usize, kind: UnsafeKind) -> bool {
    let idx = line - 1;
    let mentions = |s: &str| {
        s.contains("SAFETY") || ((kind == UnsafeKind::Fn || kind == UnsafeKind::Trait) && s.contains("# Safety"))
    };
    if idx < orig_lines.len() && mentions(orig_lines[idx]) {
        return true;
    }
    let mut k = idx;
    let mut crossed_code = false;
    while k > 0 {
        k -= 1;
        let t = orig_lines[k].trim();
        if t.is_empty() || t.starts_with("#[") {
            continue;
        }
        if t.starts_with("//") {
            if mentions(t) {
                return true;
            }
            continue;
        }
        // A code line. If it plausibly continues into our statement
        // (doesn't terminate one), look one step further — this covers
        //     // SAFETY: …
        //     let x = foo
        //         .bar(unsafe { … });
        // without walking past genuine statement boundaries.
        if !crossed_code && !t.ends_with(';') && !t.ends_with('{') && !t.ends_with('}') {
            crossed_code = true;
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------
// facade rule
// ---------------------------------------------------------------------

/// Paths that must not appear (outside the facade crate itself).
const FORBIDDEN: &[&str] = &["std::sync::atomic", "core::sync::atomic", "crossbeam_utils::"];

fn extract_facade_violations(rel: &str, masked: &str, lines: &LineIndex, report: &mut ScanReport) {
    for pat in FORBIDDEN {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(pat) {
            let at = from + pos;
            report.facade.push(FacadeViolation {
                file: rel.to_string(),
                line: lines.line_of(at),
                what: (*pat).trim_end_matches(':').to_string(),
            });
            from = at + pat.len();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_str(src: &str) -> ScanReport {
        let mut r = ScanReport::default();
        scan_file("test.rs", src, &mut r);
        r
    }

    #[test]
    fn masks_comments_strings_and_chars() {
        let src = "let a = \"Ordering::SeqCst\"; // x.load(Ordering::SeqCst)\nlet c = 'x'; /* y.store(1, Ordering::Relaxed) */ let l: &'static str = s;";
        let m = mask_comments_and_strings(src);
        assert!(!m.contains("SeqCst"));
        assert!(m.contains("'static"), "lifetimes survive masking");
        assert_eq!(m.len(), src.len());
    }

    #[test]
    fn extracts_sites_with_symbols_and_ordinals() {
        let src = r#"
impl Foo {
    fn alpha(&self) {
        self.a.load(Ordering::SeqCst);
        self.b.load(Ordering::Acquire);
        self.c.compare_exchange(a, b, Ordering::AcqRel, Ordering::Relaxed);
    }
}
fn beta(x: &AtomicUsize) -> usize {
    x.fetch_add(1, Ordering::Relaxed)
}
"#;
        let r = scan_str(src);
        assert_eq!(r.sites.len(), 4);
        assert_eq!(r.sites[0].symbol, "alpha");
        assert_eq!(r.sites[0].op, "load");
        assert_eq!(r.sites[0].index, 0);
        assert_eq!(r.sites[1].index, 1, "second load in alpha");
        assert_eq!(r.sites[2].op, "compare_exchange");
        assert_eq!(r.sites[2].orderings, vec!["AcqRel", "Relaxed"]);
        assert_eq!(r.sites[3].symbol, "beta");
        assert_eq!(r.sites[3].orderings, vec!["Relaxed"]);
    }

    #[test]
    fn parameterized_ordering_is_dynamic() {
        let r = scan_str("fn f(o: Ordering) { X.load(o); }");
        assert_eq!(r.sites[0].orderings, vec!["?"]);
    }

    #[test]
    fn multiline_calls_are_captured() {
        let src = "fn f() {\n  x.compare_exchange(\n    a,\n    b,\n    Ordering::SeqCst,\n    Ordering::Relaxed,\n  );\n}";
        let r = scan_str(src);
        assert_eq!(r.sites[0].orderings, vec!["SeqCst", "Relaxed"]);
    }

    #[test]
    fn swap_remove_is_not_swap() {
        let r = scan_str("fn f(v: &mut Vec<u8>) { v.swap_remove(0); }");
        assert!(r.sites.is_empty());
    }

    #[test]
    fn unsafe_classification_and_safety_comments() {
        let src = r#"
// SAFETY: documented block.
unsafe { work() };
unsafe { undocumented() };
/// # Safety
/// caller promises things
unsafe fn g() {}
unsafe impl Send for X {}
"#;
        let r = scan_str(src);
        assert_eq!(r.unsafes.len(), 4);
        assert!(r.unsafes[0].documented);
        assert_eq!(r.unsafes[0].kind, UnsafeKind::Block);
        assert!(!r.unsafes[1].documented);
        assert!(r.unsafes[2].documented, "# Safety doc counts for unsafe fn");
        assert_eq!(r.unsafes[2].kind, UnsafeKind::Fn);
        assert_eq!(r.unsafes[3].kind, UnsafeKind::Impl);
        assert!(!r.unsafes[3].documented);
    }

    #[test]
    fn safety_comment_spanning_statement_is_attached() {
        let src = "fn f() {\n    // SAFETY: spans the statement.\n    let x = foo\n        .bar(unsafe { baz() });\n}";
        let r = scan_str(src);
        assert_eq!(r.unsafes.len(), 1);
        assert!(r.unsafes[0].documented);
    }

    #[test]
    fn facade_violations_found_outside_comments_only() {
        let src = "use std::sync::atomic::AtomicU8;\n// use std::sync::atomic::AtomicU16;\nuse crossbeam_utils::CachePadded;\n";
        let r = scan_str(src);
        assert_eq!(r.facade.len(), 2);
        assert_eq!(r.facade[0].line, 1);
        assert_eq!(r.facade[1].what, "crossbeam_utils");
    }

    #[test]
    fn unsafe_fn_pointer_type_is_not_flagged() {
        let r = scan_str("struct S { f: unsafe fn(*mut u8, *mut u8) }\nfn g(h: unsafe fn() -> u8) {}");
        assert!(r.unsafes.is_empty(), "{:?}", r.unsafes);
    }

    #[test]
    fn anchors_survive_line_churn() {
        let a = scan_str("fn f() { x.load(Ordering::SeqCst); }");
        let b = scan_str("// new comment\n\nfn unrelated() {}\nfn f() {\n    x.load(Ordering::SeqCst);\n}");
        assert_eq!(a.sites[0].symbol, b.sites[0].symbol);
        assert_eq!(a.sites[0].op, b.sites[0].op);
        assert_eq!(a.sites[0].index, b.sites[0].index);
        assert_ne!(a.sites[0].line, b.sites[0].line, "lines moved; anchor did not");
    }
}
