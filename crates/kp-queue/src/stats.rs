//! Lightweight operation counters.
//!
//! The paper's §4 argues that the wait-free queue's cost comes from
//! state-array bookkeeping and helping; these counters let the harness
//! and the test suite observe that machinery directly (e.g. "under
//! contention, a nonzero fraction of operations is completed by
//! helpers"). All increments are relaxed — the numbers are statistics,
//! not synchronization.
//!
//! Even relaxed, the shared `help_calls`/`appends_total` bumps are RMWs
//! on contended cache lines and perturb the very benchmarks that
//! measure helping cost. The counters are therefore behind the `stats`
//! cargo feature (on by default): with it off, each counter is a ZST,
//! `bump` compiles away, and `snapshot` returns zeros — the API shape
//! is unchanged so callers need no cfgs.

#[cfg(feature = "stats")]
use kp_sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "stats")]
use kp_sync::CachePadded;

/// One statistic cell: a padded atomic with the feature on, a ZST with
/// it off.
#[cfg(feature = "stats")]
pub(crate) type Counter = CachePadded<AtomicU64>;
#[cfg(not(feature = "stats"))]
#[derive(Default)]
pub(crate) struct Counter;

#[derive(Default)]
pub(crate) struct Stats {
    /// Completed enqueue operations (counted by the invoking thread).
    pub(crate) enqueues: Counter,
    /// Completed dequeue operations, including empty ones.
    pub(crate) dequeues: Counter,
    /// Dequeue operations that linearized on an empty queue.
    pub(crate) empty_dequeues: Counter,
    /// Every successful step-1 append (Figure 4 line 74) — Lemma 1 says
    /// exactly one per enqueue operation.
    pub(crate) appends_total: Counter,
    /// Every successful sentinel lock (Figure 6 line 135) — Lemma 2 says
    /// exactly one per successful dequeue operation.
    pub(crate) locks_total: Counter,
    /// Successful step-1 appends (Figure 4 line 74) performed by a thread
    /// other than the operation's owner.
    pub(crate) helped_appends: Counter,
    /// Successful sentinel locks (Figure 6 line 135) performed by a
    /// thread other than the operation's owner.
    pub(crate) helped_locks: Counter,
    /// `maxPhase()` scans performed (only under `PhasePolicy::MaxScan`).
    pub(crate) phase_scans: Counter,
    /// Iterations of the `help()` scan that actually called into
    /// `help_enq`/`help_deq` for a peer.
    pub(crate) help_calls: Counter,
    /// Nodes taken from the heap because no recycled node was available
    /// (see `RetireCache` / `NodePool`). Zero in steady state.
    pub(crate) node_allocs: Counter,
    /// Nodes served from a recycle cache instead of the heap.
    pub(crate) node_reuses: Counter,
    /// Operations completed entirely on the descriptor-free fast path
    /// (enqueues whose append CAS won, dequeues whose `deqTid` lock won
    /// or that linearized empty, all within the CAS-failure budget).
    pub(crate) fast_completions: Counter,
    /// Fast-path attempts that exhausted `max_fast_failures` CAS-loop
    /// iterations and fell back to the wait-free slow path.
    pub(crate) fast_exhaustions: Counter,
    /// Fast-path attempts demoted to the slow path because the periodic
    /// starvation peek observed a pending peer descriptor.
    pub(crate) fast_starvation_demotions: Counter,
    /// Abandoned-handle reaps completed (lease revoked, slot retired,
    /// participation quarantined). See DESIGN.md §13.
    pub(crate) reaps: Counter,
    /// Reaps whose victim had a pending descriptor that the reaper
    /// adopted and completed through the helping machinery.
    pub(crate) reap_adoptions: Counter,
    /// Reaps taken over from a reaper that itself went silent mid-reap.
    pub(crate) reap_takeovers: Counter,
    /// Epoch participants / hazard records force-quarantined by reaps.
    pub(crate) quarantines: Counter,
    /// Memory-pressure backpressure: nodes pushed out of a full
    /// `RetireCache` to the shared epoch collector, or released past a
    /// full HP `NodePool` to the allocator. Growth beyond the caps is
    /// degraded to reclamation work instead of unbounded caching.
    pub(crate) cache_overflows: Counter,
}

impl Stats {
    #[inline]
    pub(crate) fn bump(_counter: &Counter) {
        #[cfg(feature = "stats")]
        _counter.fetch_add(1, Ordering::Relaxed);
    }

    #[cfg(feature = "stats")]
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            enqueues: self.enqueues.load(Ordering::Relaxed),
            dequeues: self.dequeues.load(Ordering::Relaxed),
            empty_dequeues: self.empty_dequeues.load(Ordering::Relaxed),
            appends_total: self.appends_total.load(Ordering::Relaxed),
            locks_total: self.locks_total.load(Ordering::Relaxed),
            helped_appends: self.helped_appends.load(Ordering::Relaxed),
            helped_locks: self.helped_locks.load(Ordering::Relaxed),
            phase_scans: self.phase_scans.load(Ordering::Relaxed),
            help_calls: self.help_calls.load(Ordering::Relaxed),
            node_allocs: self.node_allocs.load(Ordering::Relaxed),
            node_reuses: self.node_reuses.load(Ordering::Relaxed),
            fast_completions: self.fast_completions.load(Ordering::Relaxed),
            fast_exhaustions: self.fast_exhaustions.load(Ordering::Relaxed),
            fast_starvation_demotions: self.fast_starvation_demotions.load(Ordering::Relaxed),
            reaps: self.reaps.load(Ordering::Relaxed),
            reap_adoptions: self.reap_adoptions.load(Ordering::Relaxed),
            reap_takeovers: self.reap_takeovers.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            cache_overflows: self.cache_overflows.load(Ordering::Relaxed),
        }
    }

    #[cfg(not(feature = "stats"))]
    pub(crate) fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot::default()
    }

    /// Monotonic count of values removed so far (empty dequeues carry
    /// no value, so they are subtracted out). The overload layer's
    /// drain heartbeat — three relaxed loads, no full snapshot.
    #[cfg(feature = "stats")]
    pub(crate) fn drained(&self) -> u64 {
        self.dequeues
            .load(Ordering::Relaxed)
            .saturating_sub(self.empty_dequeues.load(Ordering::Relaxed))
    }

    /// Advisory resident-value gauge: completed enqueues minus values
    /// drained. Loads the dequeue side first so a concurrent completion
    /// between the loads errs toward overcounting, never negative —
    /// exact at quiescence, stale by at most the number of in-flight
    /// operations under load.
    #[cfg(feature = "stats")]
    pub(crate) fn depth(&self) -> usize {
        let drained = self.drained();
        self.enqueues.load(Ordering::Relaxed).saturating_sub(drained) as usize
    }
}

/// A point-in-time copy of a queue's helping statistics.
///
/// All-zero when the crate is built without the `stats` feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Completed enqueue operations.
    pub enqueues: u64,
    /// Completed dequeue operations (including those that found the
    /// queue empty).
    pub dequeues: u64,
    /// Dequeue operations that linearized on an empty queue.
    pub empty_dequeues: u64,
    /// Total successful step-1 appends (paper L74). Lemma 1's
    /// exactly-once property means this equals `enqueues` at
    /// quiescence — asserted by the test suite.
    pub appends_total: u64,
    /// Total successful sentinel locks (paper L135). Lemma 2's
    /// exactly-once property means this equals
    /// `dequeues - empty_dequeues` at quiescence.
    pub locks_total: u64,
    /// Enqueue linearization steps executed by a helper rather than the
    /// operation's owner.
    pub helped_appends: u64,
    /// Dequeue linearization steps executed by a helper rather than the
    /// operation's owner.
    pub helped_locks: u64,
    /// `maxPhase()` array scans performed.
    pub phase_scans: u64,
    /// Times a thread entered `help_enq`/`help_deq` on behalf of a peer.
    pub help_calls: u64,
    /// Nodes freshly heap-allocated because no recycled node was
    /// available. Zero per op in steady state with `reuse_nodes` on.
    pub node_allocs: u64,
    /// Nodes served from a recycle cache instead of the heap.
    pub node_reuses: u64,
    /// Operations completed entirely on the descriptor-free fast path.
    pub fast_completions: u64,
    /// Fast-path attempts that exhausted the CAS-failure budget and fell
    /// back to the slow path.
    pub fast_exhaustions: u64,
    /// Fast-path attempts demoted to the slow path by the starvation
    /// peek.
    pub fast_starvation_demotions: u64,
    /// Abandoned-handle reaps completed (zero unless
    /// `Config::reap_patience` is non-zero and a handle went silent).
    pub reaps: u64,
    /// Reaps that adopted and completed a victim's pending operation.
    pub reap_adoptions: u64,
    /// Reaps taken over from a reaper that itself went silent mid-reap.
    pub reap_takeovers: u64,
    /// Epoch participants / hazard records force-quarantined by reaps.
    pub quarantines: u64,
    /// Nodes that bypassed a full recycle cache/pool (memory-pressure
    /// backpressure; see DESIGN.md §13 degradation bounds).
    pub cache_overflows: u64,
}

impl StatsSnapshot {
    /// Total completed operations.
    pub fn ops(&self) -> u64 {
        self.enqueues + self.dequeues
    }

    /// Fraction of fast-path *attempts* that fell back to the slow path
    /// (exhaustion or starvation demotion); 0.0 when the fast path never
    /// ran. An attempt is a completion or a fallback — slow-only
    /// operations (fast path disabled) are not attempts.
    pub fn fallback_rate(&self) -> f64 {
        let fallbacks = self.fast_exhaustions + self.fast_starvation_demotions;
        let attempts = self.fast_completions + fallbacks;
        if attempts == 0 {
            return 0.0;
        }
        fallbacks as f64 / attempts as f64
    }

    /// Fraction of operations whose linearization step was executed by a
    /// helper (0.0 when no operations ran).
    pub fn helped_fraction(&self) -> f64 {
        let ops = self.ops();
        if ops == 0 {
            return 0.0;
        }
        (self.helped_appends + self.helped_locks) as f64 / ops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "stats")]
    #[test]
    fn snapshot_reflects_bumps() {
        let s = Stats::default();
        Stats::bump(&s.enqueues);
        Stats::bump(&s.enqueues);
        Stats::bump(&s.helped_locks);
        let snap = s.snapshot();
        assert_eq!(snap.enqueues, 2);
        assert_eq!(snap.helped_locks, 1);
        assert_eq!(snap.ops(), 2);
        assert!((snap.helped_fraction() - 0.5).abs() < 1e-12);
    }

    #[cfg(not(feature = "stats"))]
    #[test]
    fn bumps_are_noops_without_the_feature() {
        let s = Stats::default();
        Stats::bump(&s.enqueues);
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        assert_eq!(std::mem::size_of::<Stats>(), 0);
    }

    #[test]
    fn helped_fraction_empty() {
        assert_eq!(StatsSnapshot::default().helped_fraction(), 0.0);
    }

    #[test]
    fn fallback_rate_counts_both_demotion_kinds() {
        assert_eq!(StatsSnapshot::default().fallback_rate(), 0.0);
        let snap = StatsSnapshot {
            fast_completions: 6,
            fast_exhaustions: 1,
            fast_starvation_demotions: 1,
            ..StatsSnapshot::default()
        };
        assert!((snap.fallback_rate() - 0.25).abs() < 1e-12);
    }
}
