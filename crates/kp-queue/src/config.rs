//! Runtime configuration selecting among the paper's algorithm variants.

/// How a thread chooses which peers to help on each operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelpPolicy {
    /// The base algorithm (Figure 2 `help()`): scan the entire `state`
    /// array and help every pending operation with phase ≤ own phase.
    ScanAll,
    /// Optimization 1 (§3.3): examine only `chunk` entries per operation,
    /// advancing cyclically through the array (plus the thread's own
    /// entry). Wait-freedom is preserved because each index is revisited
    /// at least once every `ceil(n / chunk)` operations.
    Cyclic {
        /// Entries examined per operation (`k` in the paper, `1 ≤ k < n`).
        chunk: usize,
    },
    /// The paper's alternative to `Cyclic`: examine `chunk` entries
    /// starting at a random index, giving *probabilistic* wait-freedom.
    RandomChunk {
        /// Entries examined per operation.
        chunk: usize,
    },
}

/// How a thread obtains its phase number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePolicy {
    /// The base algorithm (Figure 2 `maxPhase()`): scan the `state` array
    /// and pick the maximum phase plus one. O(n) per operation.
    MaxScan,
    /// Optimization 2 (§3.3): a shared monotone counter bumped with an
    /// atomic read-modify-write. O(1) per operation. (The paper uses a
    /// CAS whose failure may be ignored — a failed CAS means another
    /// thread took the same phase, and equal phases are benign; a
    /// fetch-add is the equivalent primitive with unique results.)
    AtomicCounter,
}

/// Default bound on fast-path CAS-loop iterations when the fast path is
/// enabled via [`Config::fast`]. Small on purpose: each failed iteration
/// already proves a concurrent operation succeeded, so a long fast loop
/// only delays the (helping) slow path under sustained contention.
pub const DEFAULT_FAST_FAILURES: usize = 8;

/// Default number of consecutive fast-path operations a handle completes
/// before it peeks one `state` slot for a starving slow-path peer.
pub const DEFAULT_STARVATION_PATIENCE: usize = 64;

/// Default reap patience when the reaper is enabled via
/// [`Config::with_reaper`]: how many of a live handle's *own* completed
/// operations a peer slot must sit frozen (heartbeat, descriptor word,
/// and phase all unchanged) before the observer revokes its lease and
/// reaps it. Large on purpose — a reap of a live-but-idle handle that
/// neither operates nor calls `keepalive()` is a lease-contract
/// violation (DESIGN.md §13), so the default trades reap latency for a
/// wide safety margin.
pub const DEFAULT_REAP_PATIENCE: usize = 1024;

/// Default wall-clock silence floor (milliseconds) for declaring a slot
/// frozen — see [`Config::reap_min_silence_ms`]. One second: orders of
/// magnitude above routine scheduler preemption and page-fault stalls,
/// yet short enough that an abandoned slot is still reclaimed promptly.
pub const DEFAULT_REAP_MIN_SILENCE_MS: u64 = 1000;

/// Variant selection for a [`WfQueue`](crate::WfQueue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Helping policy (optimization 1 axis).
    pub help: HelpPolicy,
    /// Phase-number policy (optimization 2 axis).
    pub phase: PhasePolicy,
    /// §3.3 enhancement #3: read the `pending` flag before attempting
    /// the (costly) descriptor CAS in the two `help_finish_*` methods.
    pub validate_before_cas: bool,
    /// §3.3 "reuse the descriptor objects", applied at the node level:
    /// recycle unlinked sentinels through per-handle caches instead of
    /// freeing and reallocating them. On by default; turning it off
    /// restores the alloc-per-node behaviour (the ablation baseline —
    /// descriptors are reused either way, as they are no longer heap
    /// objects at all).
    pub reuse_nodes: bool,
    /// Fast-path/slow-path execution (Kogan–Petrank 2012 methodology):
    /// each operation first runs up to this many iterations of the raw
    /// Michael–Scott CAS loop — no descriptor publish, no phase, no
    /// helping — and falls back to the paper's wait-free slow path on
    /// exhaustion. `0` (the default) disables the fast path entirely;
    /// wait-freedom holds for any value because every failed fast
    /// iteration implies a contending operation succeeded, so the
    /// fallback is reached after bounded global progress.
    pub max_fast_failures: usize,
    /// Every this-many consecutive fast-path operations, a handle peeks
    /// one `state`-array slot (cyclically) and demotes its own operation
    /// to the slow path if that peer is pending — bounding how long a
    /// slow-path operation can starve while peers keep winning the fast
    /// path. `0` disables the peek (fast ops then only help when they
    /// themselves fall back).
    pub starvation_patience: usize,
    /// Abandoned-handle reaper (DESIGN.md §13): `0` (the default)
    /// disables it — handles then bear no heartbeat or scan cost and the
    /// paper-series configurations behave exactly as before. When
    /// non-zero, every `TICK_STRIDE`-th (16th) completed operation
    /// examines one peer slot (cyclically, bounded steps); a slot whose
    /// heartbeat, descriptor word, and phase stay frozen across this
    /// many of the observer's own *inspections* (so
    /// `TICK_STRIDE * reap_patience` of its operations) is declared
    /// abandoned: its lease is revoked, its
    /// pending operation adopted through the ordinary helping machinery,
    /// its ID retired for reuse, and its epoch/hazard participation
    /// quarantined so reclamation advances again.
    pub reap_patience: usize,
    /// Wall-clock floor on the freeze declaration, in milliseconds.
    /// `reap_patience` counts the *observer's* operations, and on a
    /// fast queue the whole window elapses in low milliseconds — well
    /// inside a routine OS preemption of the observed handle. A slot is
    /// therefore only declared frozen once its snapshot has *also* held
    /// still for this much wall time after the op-count patience ran
    /// out. `0` disables the floor (tests and latency probes only: it
    /// shrinks the window in which a merely-descheduled live handle is
    /// indistinguishable from a dead one to the op-count patience
    /// alone).
    pub reap_min_silence_ms: u64,
}

impl Config {
    /// The base algorithm of §3.2 — the paper's `base WF` series.
    pub const fn base() -> Self {
        Config {
            help: HelpPolicy::ScanAll,
            phase: PhasePolicy::MaxScan,
            validate_before_cas: false,
            reuse_nodes: true,
            max_fast_failures: 0,
            starvation_patience: DEFAULT_STARVATION_PATIENCE,
            reap_patience: 0,
            reap_min_silence_ms: DEFAULT_REAP_MIN_SILENCE_MS,
        }
    }

    /// Optimization 1 only — the paper's `opt WF (1)` series.
    pub const fn opt1() -> Self {
        Config {
            help: HelpPolicy::Cyclic { chunk: 1 },
            phase: PhasePolicy::MaxScan,
            validate_before_cas: false,
            reuse_nodes: true,
            max_fast_failures: 0,
            starvation_patience: DEFAULT_STARVATION_PATIENCE,
            reap_patience: 0,
            reap_min_silence_ms: DEFAULT_REAP_MIN_SILENCE_MS,
        }
    }

    /// Optimization 2 only — the paper's `opt WF (2)` series.
    pub const fn opt2() -> Self {
        Config {
            help: HelpPolicy::ScanAll,
            phase: PhasePolicy::AtomicCounter,
            validate_before_cas: false,
            reuse_nodes: true,
            max_fast_failures: 0,
            starvation_patience: DEFAULT_STARVATION_PATIENCE,
            reap_patience: 0,
            reap_min_silence_ms: DEFAULT_REAP_MIN_SILENCE_MS,
        }
    }

    /// Both optimizations — the paper's `opt WF (1+2)` series.
    pub const fn opt_both() -> Self {
        Config {
            help: HelpPolicy::Cyclic { chunk: 1 },
            phase: PhasePolicy::AtomicCounter,
            validate_before_cas: false,
            reuse_nodes: true,
            max_fast_failures: 0,
            starvation_patience: DEFAULT_STARVATION_PATIENCE,
            reap_patience: 0,
            reap_min_silence_ms: DEFAULT_REAP_MIN_SILENCE_MS,
        }
    }

    /// Enables the validation-before-CAS enhancement (§3.3 #3).
    pub const fn with_validation(mut self) -> Self {
        self.validate_before_cas = true;
        self
    }

    /// Enables or disables node recycling (ablation knob; on by
    /// default).
    pub const fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse_nodes = reuse;
        self
    }

    /// Sets the helping policy.
    pub const fn with_help(mut self, help: HelpPolicy) -> Self {
        self.help = help;
        self
    }

    /// Sets the phase policy.
    pub const fn with_phase(mut self, phase: PhasePolicy) -> Self {
        self.phase = phase;
        self
    }

    /// Fast-path/slow-path execution on top of `opt WF (1+2)`: the
    /// lock-free Michael–Scott CAS loop first, the paper's helping
    /// machinery as the wait-free fallback.
    pub const fn fast() -> Self {
        Config::opt_both().with_fast_path(DEFAULT_FAST_FAILURES)
    }

    /// Sets the fast-path CAS-failure bound (`0` disables the fast
    /// path).
    pub const fn with_fast_path(mut self, max_fast_failures: usize) -> Self {
        self.max_fast_failures = max_fast_failures;
        self
    }

    /// Sets the starvation-peek period (`0` disables the peek).
    pub const fn with_starvation_patience(mut self, patience: usize) -> Self {
        self.starvation_patience = patience;
        self
    }

    /// Enables the abandoned-handle reaper with
    /// [`DEFAULT_REAP_PATIENCE`]. See [`Config::reap_patience`].
    pub const fn with_reaper(self) -> Self {
        self.with_reap_patience(DEFAULT_REAP_PATIENCE)
    }

    /// Sets the reap patience directly (`0` disables the reaper).
    pub const fn with_reap_patience(mut self, patience: usize) -> Self {
        self.reap_patience = patience;
        self
    }

    /// Sets the wall-clock silence floor on the freeze declaration
    /// (`0` disables it — tests and latency probes only; see
    /// [`Config::reap_min_silence_ms`]).
    pub const fn with_reap_min_silence_ms(mut self, ms: u64) -> Self {
        self.reap_min_silence_ms = ms;
        self
    }

    /// Whether handles run the lease/heartbeat/reap protocol.
    pub const fn reaper_enabled(&self) -> bool {
        self.reap_patience > 0
    }

    /// Whether operations attempt the descriptor-free fast path first.
    pub const fn fast_path_enabled(&self) -> bool {
        self.max_fast_failures > 0
    }

    /// Short label used by the harness and benches ("base", "opt1", …).
    pub fn label(&self) -> &'static str {
        match (self.help, self.phase) {
            (HelpPolicy::ScanAll, PhasePolicy::MaxScan) => "base WF",
            (HelpPolicy::Cyclic { .. }, PhasePolicy::MaxScan) => "opt WF (1)",
            (HelpPolicy::ScanAll, PhasePolicy::AtomicCounter) => "opt WF (2)",
            (HelpPolicy::Cyclic { .. }, PhasePolicy::AtomicCounter) => "opt WF (1+2)",
            (HelpPolicy::RandomChunk { .. }, PhasePolicy::MaxScan) => "opt WF (rand)",
            (HelpPolicy::RandomChunk { .. }, PhasePolicy::AtomicCounter) => "opt WF (rand+2)",
        }
    }
}

impl Default for Config {
    /// Defaults to the best-performing variant, `opt WF (1+2)`.
    fn default() -> Self {
        Config::opt_both()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_series() {
        assert_eq!(Config::base().label(), "base WF");
        assert_eq!(Config::opt1().label(), "opt WF (1)");
        assert_eq!(Config::opt2().label(), "opt WF (2)");
        assert_eq!(Config::opt_both().label(), "opt WF (1+2)");
    }

    #[test]
    fn builders_compose() {
        let c = Config::base()
            .with_validation()
            .with_help(HelpPolicy::RandomChunk { chunk: 2 })
            .with_phase(PhasePolicy::AtomicCounter);
        assert!(c.validate_before_cas);
        assert_eq!(c.help, HelpPolicy::RandomChunk { chunk: 2 });
        assert_eq!(c.phase, PhasePolicy::AtomicCounter);
        assert_eq!(c.label(), "opt WF (rand+2)");
    }

    #[test]
    fn reuse_defaults_on_and_toggles() {
        assert!(Config::default().reuse_nodes);
        assert!(!Config::opt_both().with_reuse(false).reuse_nodes);
        assert_eq!(
            Config::opt_both().with_reuse(false).label(),
            "opt WF (1+2)",
            "reuse is orthogonal to the paper-series label"
        );
    }

    #[test]
    fn default_is_opt_both() {
        assert_eq!(Config::default(), Config::opt_both());
    }

    #[test]
    fn reaper_defaults_off_and_toggles() {
        assert!(!Config::default().reaper_enabled());
        assert!(!Config::base().reaper_enabled());
        assert!(!Config::fast().reaper_enabled());
        let r = Config::opt_both().with_reaper();
        assert!(r.reaper_enabled());
        assert_eq!(r.reap_patience, DEFAULT_REAP_PATIENCE);
        assert_eq!(
            r.label(),
            "opt WF (1+2)",
            "the reaper is orthogonal to the paper-series label"
        );
        assert_eq!(Config::base().with_reap_patience(3).reap_patience, 3);
        assert!(!Config::base().with_reap_patience(0).reaper_enabled());
    }

    #[test]
    fn reap_wall_floor_defaults_on_and_toggles() {
        assert_eq!(
            Config::default().reap_min_silence_ms,
            DEFAULT_REAP_MIN_SILENCE_MS,
            "the floor guards even explicitly-enabled reapers by default"
        );
        assert_eq!(
            Config::opt_both().with_reaper().reap_min_silence_ms,
            DEFAULT_REAP_MIN_SILENCE_MS
        );
        let c = Config::fast().with_reaper().with_reap_min_silence_ms(0);
        assert_eq!(c.reap_min_silence_ms, 0);
        assert_eq!(
            Config::base().with_reap_min_silence_ms(250).reap_min_silence_ms,
            250
        );
    }

    #[test]
    fn fast_path_defaults_off_and_toggles() {
        assert!(!Config::default().fast_path_enabled());
        assert!(!Config::base().fast_path_enabled());
        let f = Config::fast();
        assert!(f.fast_path_enabled());
        assert_eq!(f.max_fast_failures, DEFAULT_FAST_FAILURES);
        assert_eq!(
            f.label(),
            "opt WF (1+2)",
            "fast path is orthogonal to the paper-series label"
        );
        let c = Config::opt_both()
            .with_fast_path(3)
            .with_starvation_patience(7);
        assert_eq!(c.max_fast_failures, 3);
        assert_eq!(c.starvation_patience, 7);
        assert!(!Config::opt_both().with_fast_path(0).fast_path_enabled());
    }
}
