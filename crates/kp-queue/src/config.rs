//! Runtime configuration selecting among the paper's algorithm variants.

/// How a thread chooses which peers to help on each operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HelpPolicy {
    /// The base algorithm (Figure 2 `help()`): scan the entire `state`
    /// array and help every pending operation with phase ≤ own phase.
    ScanAll,
    /// Optimization 1 (§3.3): examine only `chunk` entries per operation,
    /// advancing cyclically through the array (plus the thread's own
    /// entry). Wait-freedom is preserved because each index is revisited
    /// at least once every `ceil(n / chunk)` operations.
    Cyclic {
        /// Entries examined per operation (`k` in the paper, `1 ≤ k < n`).
        chunk: usize,
    },
    /// The paper's alternative to `Cyclic`: examine `chunk` entries
    /// starting at a random index, giving *probabilistic* wait-freedom.
    RandomChunk {
        /// Entries examined per operation.
        chunk: usize,
    },
}

/// How a thread obtains its phase number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhasePolicy {
    /// The base algorithm (Figure 2 `maxPhase()`): scan the `state` array
    /// and pick the maximum phase plus one. O(n) per operation.
    MaxScan,
    /// Optimization 2 (§3.3): a shared monotone counter bumped with an
    /// atomic read-modify-write. O(1) per operation. (The paper uses a
    /// CAS whose failure may be ignored — a failed CAS means another
    /// thread took the same phase, and equal phases are benign; a
    /// fetch-add is the equivalent primitive with unique results.)
    AtomicCounter,
}

/// Variant selection for a [`WfQueue`](crate::WfQueue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Helping policy (optimization 1 axis).
    pub help: HelpPolicy,
    /// Phase-number policy (optimization 2 axis).
    pub phase: PhasePolicy,
    /// §3.3 enhancement #3: read the `pending` flag before attempting
    /// the (costly) descriptor CAS in the two `help_finish_*` methods.
    pub validate_before_cas: bool,
    /// §3.3 "reuse the descriptor objects", applied at the node level:
    /// recycle unlinked sentinels through per-handle caches instead of
    /// freeing and reallocating them. On by default; turning it off
    /// restores the alloc-per-node behaviour (the ablation baseline —
    /// descriptors are reused either way, as they are no longer heap
    /// objects at all).
    pub reuse_nodes: bool,
}

impl Config {
    /// The base algorithm of §3.2 — the paper's `base WF` series.
    pub const fn base() -> Self {
        Config {
            help: HelpPolicy::ScanAll,
            phase: PhasePolicy::MaxScan,
            validate_before_cas: false,
            reuse_nodes: true,
        }
    }

    /// Optimization 1 only — the paper's `opt WF (1)` series.
    pub const fn opt1() -> Self {
        Config {
            help: HelpPolicy::Cyclic { chunk: 1 },
            phase: PhasePolicy::MaxScan,
            validate_before_cas: false,
            reuse_nodes: true,
        }
    }

    /// Optimization 2 only — the paper's `opt WF (2)` series.
    pub const fn opt2() -> Self {
        Config {
            help: HelpPolicy::ScanAll,
            phase: PhasePolicy::AtomicCounter,
            validate_before_cas: false,
            reuse_nodes: true,
        }
    }

    /// Both optimizations — the paper's `opt WF (1+2)` series.
    pub const fn opt_both() -> Self {
        Config {
            help: HelpPolicy::Cyclic { chunk: 1 },
            phase: PhasePolicy::AtomicCounter,
            validate_before_cas: false,
            reuse_nodes: true,
        }
    }

    /// Enables the validation-before-CAS enhancement (§3.3 #3).
    pub const fn with_validation(mut self) -> Self {
        self.validate_before_cas = true;
        self
    }

    /// Enables or disables node recycling (ablation knob; on by
    /// default).
    pub const fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse_nodes = reuse;
        self
    }

    /// Sets the helping policy.
    pub const fn with_help(mut self, help: HelpPolicy) -> Self {
        self.help = help;
        self
    }

    /// Sets the phase policy.
    pub const fn with_phase(mut self, phase: PhasePolicy) -> Self {
        self.phase = phase;
        self
    }

    /// Short label used by the harness and benches ("base", "opt1", …).
    pub fn label(&self) -> &'static str {
        match (self.help, self.phase) {
            (HelpPolicy::ScanAll, PhasePolicy::MaxScan) => "base WF",
            (HelpPolicy::Cyclic { .. }, PhasePolicy::MaxScan) => "opt WF (1)",
            (HelpPolicy::ScanAll, PhasePolicy::AtomicCounter) => "opt WF (2)",
            (HelpPolicy::Cyclic { .. }, PhasePolicy::AtomicCounter) => "opt WF (1+2)",
            (HelpPolicy::RandomChunk { .. }, PhasePolicy::MaxScan) => "opt WF (rand)",
            (HelpPolicy::RandomChunk { .. }, PhasePolicy::AtomicCounter) => "opt WF (rand+2)",
        }
    }
}

impl Default for Config {
    /// Defaults to the best-performing variant, `opt WF (1+2)`.
    fn default() -> Self {
        Config::opt_both()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_series() {
        assert_eq!(Config::base().label(), "base WF");
        assert_eq!(Config::opt1().label(), "opt WF (1)");
        assert_eq!(Config::opt2().label(), "opt WF (2)");
        assert_eq!(Config::opt_both().label(), "opt WF (1+2)");
    }

    #[test]
    fn builders_compose() {
        let c = Config::base()
            .with_validation()
            .with_help(HelpPolicy::RandomChunk { chunk: 2 })
            .with_phase(PhasePolicy::AtomicCounter);
        assert!(c.validate_before_cas);
        assert_eq!(c.help, HelpPolicy::RandomChunk { chunk: 2 });
        assert_eq!(c.phase, PhasePolicy::AtomicCounter);
        assert_eq!(c.label(), "opt WF (rand+2)");
    }

    #[test]
    fn reuse_defaults_on_and_toggles() {
        assert!(Config::default().reuse_nodes);
        assert!(!Config::opt_both().with_reuse(false).reuse_nodes);
        assert_eq!(
            Config::opt_both().with_reuse(false).label(),
            "opt WF (1+2)",
            "reuse is orthogonal to the paper-series label"
        );
    }

    #[test]
    fn default_is_opt_both() {
        assert_eq!(Config::default(), Config::opt_both());
    }
}
