//! The per-thread handle: operation entry points (paper Figure 4 `enq`,
//! Figure 6 `deq`) and the §3.3 helping-policy dispatch.

use crossbeam_epoch::{self as epoch, Guard};
use idpool::IdGuard;
use queue_traits::{FastPathStats, QueueHandle};

use crate::chaos_hooks::{self, inject};
use crate::config::HelpPolicy;
use crate::node::{Node, FAST_ENQUEUER, NO_DEQUEUER};
use crate::queue::{FastDeq, WfQueue};
use crate::recycle::RetireCache;
use crate::stats::Stats;

/// A registered thread's handle to a [`WfQueue`].
///
/// Owns a virtual thread ID (`TID` in the paper's listings) for the
/// handle's lifetime; dropping the handle returns the ID to the pool.
/// Operations take `&mut self` because a handle embodies *one* thread of
/// the algorithm — the queue itself may be shared freely.
///
/// The handle also owns the thread's node-reuse cache (§3.3 "reuse the
/// descriptor objects" taken to the node level): sentinels unlinked by
/// this thread's head swings are recycled into its future enqueues once
/// the epoch rule proves no reader can still hold them, making the
/// steady-state operation path allocation-free.
///
/// Dropping a handle whose operation is still pending (a panic unwound
/// out of `enqueue`/`dequeue` mid-protocol) first drives that operation
/// to completion and then publishes a fresh idle descriptor — the
/// paper's §3.3 "dummy descriptor on exit". Without this, releasing the
/// virtual ID while the descriptor still references an un-appended node
/// could wedge every other thread: a helper may append the orphaned
/// node, after which `help_finish_enq`'s descriptor identity check
/// (L91) can never pass and the tail never advances.
pub struct WfHandle<'q, T: Send> {
    queue: &'q WfQueue<T>,
    id: IdGuard<'q>,
    /// Next state-array index to examine under `HelpPolicy::Cyclic`.
    cursor: usize,
    /// xorshift64* state for `HelpPolicy::RandomChunk`.
    rng: u64,
    /// Retired sentinels awaiting reuse (see `crate::recycle`).
    cache: RetireCache<T>,
    /// Fast-path CAS-failure budget; copied from the queue config,
    /// overridable per handle (see [`set_fast_path`]). `0` = slow only.
    ///
    /// [`set_fast_path`]: Self::set_fast_path
    max_fast_failures: usize,
    /// Consecutive fast-path completions since the last starvation
    /// peek (see `Config::starvation_patience`).
    fast_streak: usize,
    /// Plain (non-atomic, handle-local) fast/slow counters — always
    /// collected, unlike the feature-gated shared `Stats`, so benches
    /// can report fallback rates without perturbing the hot path.
    local_stats: FastPathStats,
}

impl<'q, T: Send> WfHandle<'q, T> {
    pub(crate) fn new(queue: &'q WfQueue<T>, id: IdGuard<'q>) -> Self {
        let tid = id.id();
        WfHandle {
            queue,
            id,
            cursor: (tid + 1) % queue.max_threads(),
            // Any nonzero seed works; derive from the slot for variety.
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
            cache: RetireCache::new(queue.config().reuse_nodes),
            max_fast_failures: queue.config().max_fast_failures,
            fast_streak: 0,
            local_stats: FastPathStats::default(),
        }
    }

    /// Overrides this handle's fast-path CAS-failure budget (the queue
    /// config's `max_fast_failures` is every handle's default). `0`
    /// pins the handle to the wait-free slow path. Lets tests and
    /// benches mix fast-path and slow-only handles on one queue.
    pub fn set_fast_path(&mut self, max_fast_failures: usize) {
        self.max_fast_failures = max_fast_failures;
    }

    /// This handle's fast/slow execution counters (always collected,
    /// independent of the `stats` cargo feature).
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.local_stats
    }

    /// This handle's virtual thread ID (index into the `state` array).
    pub fn tid(&self) -> usize {
        self.id.id()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WfQueue<T> {
        self.queue
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, decent-quality generator; no external
        // dependency needed in the hot path.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A node ready to carry `value`: recycled from this handle's cache
    /// when a mature one exists, freshly allocated otherwise.
    fn alloc_node(&mut self, value: T, tid: usize) -> *mut Node<T> {
        if let Some(node) = self.cache.pop_mature() {
            Stats::bump(&self.queue.stats.node_reuses);
            // SAFETY: maturity (`RetireCache::pop_mature`) makes us the
            // unique owner — no pin that could still observe the node
            // remains. The publish that follows in the caller is a
            // SeqCst store, releasing these plain/Relaxed writes to any
            // helper that reads the node through the descriptor.
            unsafe {
                (*node).next.store(epoch::Shared::null(), kp_sync::atomic::Ordering::Relaxed);
                (*node).deq_tid.store(NO_DEQUEUER, kp_sync::atomic::Ordering::Relaxed);
                (*node).enq_tid = tid;
                *(*node).value.get() = Some(value);
            }
            node
        } else {
            Stats::bump(&self.queue.stats.node_allocs);
            Box::into_raw(Box::new(Node::new(Some(value), tid)))
        }
    }

    /// Applies the configured helping policy for an operation running at
    /// `phase`, then drives the handle's *own* operation to completion.
    fn run_help(&mut self, phase: i64, enqueue: bool, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        let n = q.max_threads();
        match q.config.help {
            HelpPolicy::ScanAll => {
                // Base algorithm: the L64/L101 `help(phase)` call. The
                // scan includes our own entry, so the operation is
                // complete when it returns.
                q.help_all(phase, tid, guard, &mut self.cache);
            }
            HelpPolicy::Cyclic { chunk } => {
                // §3.3 optimization 1: examine `chunk` entries starting
                // at the cyclic cursor (in addition to our own entry).
                for j in 0..chunk.min(n) {
                    let i = (self.cursor + j) % n;
                    if i != tid {
                        q.help_index(i, phase, tid, guard, &mut self.cache);
                    }
                }
                self.cursor = (self.cursor + chunk) % n;
            }
            HelpPolicy::RandomChunk { chunk } => {
                // §3.3 alternative: random chunk (probabilistic
                // wait-freedom).
                let start = (self.next_rand() % n as u64) as usize;
                for j in 0..chunk.min(n) {
                    let i = (start + j) % n;
                    if i != tid {
                        q.help_index(i, phase, tid, guard, &mut self.cache);
                    }
                }
            }
        }
        // Under the chunked policies our own entry may not have been
        // visited; drive our own operation to completion. (Redundant but
        // harmless under ScanAll: `is_still_pending` fails immediately.)
        if enqueue {
            q.help_enq(tid, phase, tid, guard);
        } else {
            q.help_deq(tid, phase, tid, guard, &mut self.cache);
        }
    }

    /// True when this operation must skip the fast path because a
    /// peer's descriptor has been pending while we kept winning it.
    /// Peeks one `state` slot (at the cyclic help cursor) every
    /// `starvation_patience` consecutive fast completions; on a hit the
    /// caller demotes to the slow path, whose `Cyclic` help chunk
    /// starts at that very cursor — the demotion directly helps the
    /// starved peer.
    fn starvation_peek(&mut self) -> bool {
        let q = self.queue;
        let patience = q.config.starvation_patience;
        if patience == 0 || self.fast_streak < patience {
            return false;
        }
        self.fast_streak = 0;
        let n = q.max_threads();
        if self.cursor == self.id.id() {
            // Our own slot cannot starve us; rotate and stay fast.
            self.cursor = (self.cursor + 1) % n;
            return false;
        }
        // SeqCst: this read gates a helping obligation, exactly like
        // `is_still_pending` — an Acquire-stale idle word would let a
        // fast handle overlook a peer pending in the SC order.
        let (w, _) = q.state[self.cursor].view(kp_sync::atomic::Ordering::SeqCst);
        if w.pending() {
            true
        } else {
            self.cursor = (self.cursor + 1) % n;
            false
        }
    }

    /// `enq(value)`, Figure 4 L61–66, preceded by the bounded fast path
    /// when enabled (DESIGN.md §12).
    pub fn enqueue(&mut self, value: T) {
        chaos_hooks::op_begin();
        let guard = epoch::pin();
        if self.max_fast_failures > 0 {
            self.enqueue_fast_first(value, &guard);
        } else {
            self.slow_enqueue(value, &guard);
        }
        chaos_hooks::op_end();
    }

    /// The fast prologue and its demotion edges, kept out of line
    /// (`#[inline(never)]`) so a `max_fast_failures == 0` build path
    /// keeps the pre-fast-path code shape of `enqueue` — inlining this
    /// into the entry point measurably perturbed slow-only codegen.
    #[inline(never)]
    fn enqueue_fast_first(&mut self, value: T, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        if !self.starvation_peek() {
            let node = self.alloc_node(value, FAST_ENQUEUER);
            if q.try_fast_enqueue(node, self.max_fast_failures, guard) {
                self.fast_streak += 1;
                self.local_stats.fast_completions += 1;
                Stats::bump(&q.stats.fast_completions);
                Stats::bump(&q.stats.enqueues);
                return;
            }
            // Exhausted: every append CAS failed, so the node was
            // never published — it is still exclusively ours.
            // Rebrand it with our real tid and fall back to the
            // wait-free slow path.
            self.fast_streak = 0;
            self.local_stats.fast_exhaustions += 1;
            Stats::bump(&q.stats.fast_exhaustions);
            // SAFETY: exclusive ownership (see above); helpers only
            // read `enq_tid` after the descriptor publish below,
            // whose SeqCst store releases this write.
            unsafe { (*node).enq_tid = tid };
            inject!("kp.fast.demote");
            self.local_stats.slow_ops += 1;
            let phase = q.next_phase(); // L62
            self.slow_enqueue_publish(phase, node, guard);
            return;
        }
        self.local_stats.fast_starvation_demotions += 1;
        Stats::bump(&q.stats.fast_starvation_demotions);
        // Demote to the slow path, which helps the starved peer (its
        // slot is at our help cursor).
        self.slow_enqueue(value, guard);
    }

    /// The slow path proper: Figure 4 L61–66 with a freshly prepared
    /// node.
    fn slow_enqueue(&mut self, value: T, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L62
        // The injection point sits before the node is prepared so a
        // simulated crash here leaks nothing: the value is still a plain
        // local, dropped by the unwind.
        inject!("kp.publish");
        let node = self.alloc_node(value, tid);
        self.slow_enqueue_publish(phase, node, guard);
    }

    /// L63–65: publish the prepared node's descriptor and drive the
    /// enqueue to completion (shared by the slow path proper and the
    /// fast-path demotion).
    fn slow_enqueue_publish(&mut self, phase: i64, node: *mut Node<T>, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        // L63: publish the operation descriptor — an in-place slot
        // store, not an allocation (see `StateSlot::publish`).
        q.state[tid].publish(phase, node as usize, true);
        self.run_help(phase, true, guard); // L64
        q.help_finish_enq(guard); // L65 (see the paper's L65 argument)
        Stats::bump(&q.stats.enqueues);
    }

    /// `deq()`, Figure 6 L98–108, preceded by the bounded fast path
    /// when enabled (DESIGN.md §12). Returns `None` where the paper
    /// throws `EmptyException`.
    pub fn dequeue(&mut self) -> Option<T> {
        // The guard is held from before the descriptor is published
        // until after the value is read: every node our descriptor can
        // reference is retired (if at all) during this pin, so the reads
        // below are safe — including against recycling, which obeys the
        // same maturity rule as freeing.
        chaos_hooks::op_begin();
        let guard = epoch::pin();
        let result = if self.max_fast_failures > 0 {
            self.dequeue_fast_first(&guard)
        } else {
            self.slow_dequeue(&guard)
        };
        chaos_hooks::op_end();
        result
    }

    /// The fast prologue and its demotion edges; out of line for the
    /// same codegen reason as [`enqueue_fast_first`].
    ///
    /// [`enqueue_fast_first`]: Self::enqueue_fast_first
    #[inline(never)]
    fn dequeue_fast_first(&mut self, guard: &Guard) -> Option<T> {
        let q = self.queue;
        if !self.starvation_peek() {
            match q.try_fast_dequeue(self.max_fast_failures, &mut self.cache, guard) {
                FastDeq::Done(result) => {
                    self.fast_streak += 1;
                    self.local_stats.fast_completions += 1;
                    Stats::bump(&q.stats.fast_completions);
                    Stats::bump(&q.stats.dequeues);
                    return result;
                }
                FastDeq::Exhausted => {
                    self.fast_streak = 0;
                    self.local_stats.fast_exhaustions += 1;
                    Stats::bump(&q.stats.fast_exhaustions);
                    inject!("kp.fast.demote");
                }
            }
        } else {
            self.local_stats.fast_starvation_demotions += 1;
            Stats::bump(&q.stats.fast_starvation_demotions);
        }
        self.slow_dequeue(guard)
    }

    /// The slow path proper: Figure 6 L98–108.
    fn slow_dequeue(&mut self, guard: &Guard) -> Option<T> {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L99
        inject!("kp.publish");
        // L100: publish the operation descriptor (node = null).
        q.state[tid].publish(phase, 0, false);
        self.run_help(phase, false, guard); // L101
        q.help_finish_deq(guard, &mut self.cache); // L102
        Stats::bump(&q.stats.dequeues);
        // L103–107: read the result through our completed descriptor.
        Self::read_deq_result(q, tid, guard)
    }

    /// The L103–107 epilogue, shared with the test-hook path.
    ///
    /// Ordering relaxation: Acquire, not SeqCst. This reads our *own*
    /// slot after our operation completed; the completing transition
    /// (ours or a helper's SeqCst CAS that our `is_still_pending` loop
    /// already observed) happens-before this load via the SeqCst loop
    /// exit, and coherence forbids reading anything older. No helping
    /// decision hangs off this read.
    fn read_deq_result(q: &WfQueue<T>, tid: usize, guard: &Guard) -> Option<T> {
        let (w, _) = q.state[tid].view(kp_sync::atomic::Ordering::Acquire);
        debug_assert!(!w.pending(), "operation must be complete");
        debug_assert!(!w.enqueue(), "descriptor must be ours (dequeue)");
        if w.node_is_null() {
            Stats::bump(&q.stats.empty_dequeues);
            return None; // L104–105: linearized on an empty queue
        }
        let node = w.node_ptr::<Node<T>>();
        // L107: the value lives in the node *after* the sentinel our
        // operation locked.
        // SAFETY: `node` is the sentinel this dequeue locked; it was
        // retired no earlier than the L150 head-CAS, which happened
        // during our pin, so it is still live (and not recycled: reuse
        // obeys the same maturity rule). Same for `next`.
        let next = unsafe { &*node }.next.load(kp_sync::atomic::Ordering::Acquire, guard);
        debug_assert!(!next.is_null(), "locked sentinel must have a successor");
        // SAFETY (uniqueness of the take): `node.deq_tid == tid` was set
        // by a successful CAS from −1 *in this generation of the node* —
        // a recycled node is republished only after its reset, which no
        // still-running dequeue can have locked (maturity again) — so
        // exactly one operation ever locks `node`, and only that
        // operation's owner executes this line for `node`. Each value is
        // taken exactly once, with the enqueuer's write ordered before
        // by the release/acquire chain through the list links.
        let value = unsafe { (*next.deref().value.get()).take() };
        Some(value.expect("value already taken: deq_tid uniqueness violated"))
    }

    /// Begins an operation but performs **no helping**, leaving the
    /// published descriptor pending — as if the thread stalled right
    /// after the paper's L63/L100. Test infrastructure for exercising
    /// the helping mechanism deterministically; not part of the public
    /// API surface.
    #[doc(hidden)]
    pub fn begin_enqueue_unhelped(&mut self, value: T) -> PendingOp<'_, 'q, T> {
        let q = self.queue;
        let tid = self.id.id();
        let guard = epoch::pin();
        let phase = q.next_phase();
        let node = self.alloc_node(value, tid);
        q.state[tid].publish(phase, node as usize, true);
        PendingOp {
            handle: self,
            guard,
            phase,
            enqueue: true,
            done: false,
        }
    }

    /// Dequeue counterpart of [`begin_enqueue_unhelped`].
    ///
    /// [`begin_enqueue_unhelped`]: Self::begin_enqueue_unhelped
    #[doc(hidden)]
    pub fn begin_dequeue_unhelped(&mut self) -> PendingOp<'_, 'q, T> {
        let q = self.queue;
        let tid = self.id.id();
        let guard = epoch::pin();
        let phase = q.next_phase();
        q.state[tid].publish(phase, 0, false);
        PendingOp {
            handle: self,
            guard,
            phase,
            enqueue: false,
            done: false,
        }
    }
}

impl<T: Send> QueueHandle<T> for WfHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        WfHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        WfHandle::dequeue(self)
    }

    fn fast_path_stats(&self) -> Option<FastPathStats> {
        Some(self.local_stats)
    }
}

impl<T: Send> Drop for WfHandle<'_, T> {
    fn drop(&mut self) {
        // §3.3 "dummy descriptor on exit". The ID must not return to the
        // pool while `state[tid]` still describes an unfinished
        // operation: a successor thread reusing the slot would replace
        // the descriptor, and if a helper had meanwhile appended the
        // orphaned enqueue node, no descriptor matching it would ever
        // exist again — `help_finish_enq` could then never swing the
        // tail past it (a total wedge). So: finish our own operation
        // exactly as the owner would, discard an unclaimed dequeue
        // result, and leave a pristine descriptor behind.
        let q = self.queue;
        let tid = self.id.id();
        let guard = epoch::pin();
        let (w, phase) = q.state[tid].view(kp_sync::atomic::Ordering::SeqCst);
        if w.pending() {
            if w.enqueue() {
                q.help_enq(tid, phase, tid, &guard);
                q.help_finish_enq(&guard);
            } else {
                q.help_deq(tid, phase, tid, &guard, &mut self.cache);
                q.help_finish_deq(&guard, &mut self.cache);
                // Nobody will ever read this dequeue's result; take the
                // value out of the node so conservation stays exact (it
                // counts as consumed-by-the-departed-thread).
                drop(Self::read_deq_result(q, tid, &guard));
            }
        }
        // Even when our op is no longer pending, the tail may still sit
        // *before* our appended node (we died between enqueue steps 2
        // and 3). Helpers only swing the tail while the owner's
        // descriptor still references that node (the L91 identity
        // check), so the dummy may be published only once the tail is
        // past it — one help_finish_enq call guarantees that. The head
        // needs no such gate (the L150 CAS is unconditional), but we
        // drive it too so the slot is handed over fully quiescent.
        q.help_finish_enq(&guard);
        q.help_finish_deq(&guard, &mut self.cache);
        // Fresh idle descriptor (version-bumped in place): the slot's
        // next owner starts from the same state a brand-new slot has,
        // and stale helper CASes against our old words keep failing.
        q.state[tid].reset();
        // Reuse ends with the handle: give the cached nodes back to the
        // epoch collector.
        self.cache.drain(&guard);
        // `self.id` drops after this body, releasing the virtual ID —
        // only now that the state entry is helpable and self-contained.
    }
}

/// An in-flight operation started by [`WfHandle::begin_enqueue_unhelped`]
/// or [`WfHandle::begin_dequeue_unhelped`] — the owner is "stalled" and
/// other threads' operations may complete it through helping.
///
/// Holds the owner's epoch guard, so the queue's node references stay
/// valid until [`finish`](PendingOp::finish). Not `Send`: it models one
/// stalled thread.
#[doc(hidden)]
pub struct PendingOp<'h, 'q, T: Send> {
    handle: &'h mut WfHandle<'q, T>,
    guard: Guard,
    phase: i64,
    enqueue: bool,
    done: bool,
}

impl<T: Send> PendingOp<'_, '_, T> {
    /// True while the operation has not been linearized-and-acknowledged
    /// by anyone (owner or helper).
    pub fn is_pending(&self) -> bool {
        self.handle
            .queue
            .is_still_pending(self.handle.tid(), self.phase)
    }

    /// The phase number the operation was published with.
    pub fn phase(&self) -> i64 {
        self.phase
    }

    fn complete(&mut self) -> Option<T> {
        debug_assert!(!self.done);
        self.done = true;
        let q = self.handle.queue;
        let tid = self.handle.id.id();
        if self.enqueue {
            q.help_enq(tid, self.phase, tid, &self.guard);
            q.help_finish_enq(&self.guard);
            Stats::bump(&q.stats.enqueues);
            None
        } else {
            q.help_deq(tid, self.phase, tid, &self.guard, &mut self.handle.cache);
            q.help_finish_deq(&self.guard, &mut self.handle.cache);
            Stats::bump(&q.stats.dequeues);
            WfHandle::read_deq_result(q, tid, &self.guard)
        }
    }

    /// Resumes the stalled owner: completes the operation (help may
    /// already have done all the work) and returns the dequeued value,
    /// if this was a dequeue.
    pub fn finish(mut self) -> Option<T> {
        self.complete()
    }

    /// Walks away without completing: the descriptor stays pending, as
    /// if the owning thread died mid-operation. The handle's exit
    /// cleanup (its `Drop`) is then responsible for the abandoned
    /// operation — this is the test hook for the §3.3 "dummy descriptor
    /// on exit" path.
    pub fn abandon(mut self) {
        self.done = true;
    }
}

impl<T: Send> Drop for PendingOp<'_, '_, T> {
    fn drop(&mut self) {
        if !self.done {
            // The operation MUST be driven to completion before the
            // handle can be reused; a dequeued value, if any, is
            // discarded.
            drop(self.complete());
        }
    }
}
