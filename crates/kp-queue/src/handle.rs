//! The per-thread handle: operation entry points (paper Figure 4 `enq`,
//! Figure 6 `deq`) and the §3.3 helping-policy dispatch.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr;

use crossbeam_epoch::{self as epoch, Guard};
use idpool::{IdGuard, SlotState};
use queue_traits::{FastPathStats, QueueHandle};

use crate::chaos_hooks::{self, inject};
use crate::config::HelpPolicy;
use crate::node::{Node, FAST_ENQUEUER, NO_DEQUEUER};
use crate::queue::{FastDeq, WfQueue};
use crate::reap::{Observation, ReapScan};
use crate::recycle::RetireCache;
use crate::stats::Stats;

/// A registered thread's handle to a [`WfQueue`].
///
/// Owns a virtual thread ID (`TID` in the paper's listings) for the
/// handle's lifetime; dropping the handle returns the ID to the pool.
/// Operations take `&mut self` because a handle embodies *one* thread of
/// the algorithm — the queue itself may be shared freely.
///
/// The handle also owns the thread's node-reuse cache (§3.3 "reuse the
/// descriptor objects" taken to the node level): sentinels unlinked by
/// this thread's head swings are recycled into its future enqueues once
/// the epoch rule proves no reader can still hold them, making the
/// steady-state operation path allocation-free.
///
/// Dropping a handle whose operation is still pending (a panic unwound
/// out of `enqueue`/`dequeue` mid-protocol) first drives that operation
/// to completion and then publishes a fresh idle descriptor — the
/// paper's §3.3 "dummy descriptor on exit". Without this, releasing the
/// virtual ID while the descriptor still references an un-appended node
/// could wedge every other thread: a helper may append the orphaned
/// node, after which `help_finish_enq`'s descriptor identity check
/// (L91) can never pass and the tail never advances.
pub struct WfHandle<'q, T: Send> {
    queue: &'q WfQueue<T>,
    id: IdGuard<'q>,
    /// Next state-array index to examine under `HelpPolicy::Cyclic`.
    cursor: usize,
    /// xorshift64* state for `HelpPolicy::RandomChunk`.
    rng: u64,
    /// Retired sentinels awaiting reuse (see `crate::recycle`).
    cache: RetireCache<T>,
    /// Fast-path CAS-failure budget; copied from the queue config,
    /// overridable per handle (see [`set_fast_path`]). `0` = slow only.
    ///
    /// [`set_fast_path`]: Self::set_fast_path
    max_fast_failures: usize,
    /// Consecutive fast-path completions since the last starvation
    /// peek (see `Config::starvation_patience`).
    fast_streak: usize,
    /// Plain (non-atomic, handle-local) fast/slow counters — always
    /// collected, unlike the feature-gated shared `Stats`, so benches
    /// can report fallback rates without perturbing the hot path.
    local_stats: FastPathStats,
    /// Panic-recovery tracker: a node allocated for the fast path that
    /// is still *private* (never published by an append CAS or a
    /// descriptor publish). If an unwind escapes the operation while
    /// this is non-null, `recover_after_unwind` reclaims it; it is
    /// nulled the instant the node becomes public.
    inflight: *mut Node<T>,
    /// True from a slow dequeue's publish until its epilogue claimed
    /// the result; lets recovery distinguish a completed-but-unclaimed
    /// word (whose value must still be taken and discarded) from an old
    /// word whose sentinel may be long freed.
    deq_in_flight: bool,
    /// Cached `crossbeam_epoch::participant_token()` of the OS thread
    /// that last ran an operation; mirrored into
    /// `WfQueue::epoch_tokens[tid]` on change (reaper enabled only).
    epoch_token: usize,
    /// Reaper scan state (cursor + freeze detector, DESIGN.md §13).
    reap: ReapScan,
}

// SAFETY: the only non-`Send` field is `inflight`, a node that is by
// invariant *private* to this handle whenever it is non-null (it is
// cleared the instant the node is published); moving the handle moves
// that exclusive ownership with it. Everything else is `Send`.
unsafe impl<T: Send> Send for WfHandle<'_, T> {}

impl<'q, T: Send> WfHandle<'q, T> {
    pub(crate) fn new(queue: &'q WfQueue<T>, id: IdGuard<'q>) -> Self {
        let tid = id.id();
        WfHandle {
            queue,
            id,
            cursor: (tid + 1) % queue.max_threads(),
            // Any nonzero seed works; derive from the slot for variety.
            rng: 0x9E37_79B9_7F4A_7C15 ^ ((tid as u64 + 1) << 17),
            cache: RetireCache::new(queue.config().reuse_nodes),
            max_fast_failures: queue.config().max_fast_failures,
            fast_streak: 0,
            local_stats: FastPathStats::default(),
            inflight: ptr::null_mut(),
            deq_in_flight: false,
            epoch_token: 0,
            reap: ReapScan::new(
                (tid + 1) % queue.max_threads(),
                queue.config.reap_min_silence_ms,
            ),
        }
    }

    /// Overrides this handle's fast-path CAS-failure budget (the queue
    /// config's `max_fast_failures` is every handle's default). `0`
    /// pins the handle to the wait-free slow path. Lets tests and
    /// benches mix fast-path and slow-only handles on one queue.
    pub fn set_fast_path(&mut self, max_fast_failures: usize) {
        self.max_fast_failures = max_fast_failures;
    }

    /// This handle's fast/slow execution counters (always collected,
    /// independent of the `stats` cargo feature).
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.local_stats
    }

    /// This handle's virtual thread ID (index into the `state` array).
    pub fn tid(&self) -> usize {
        self.id.id()
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &'q WfQueue<T> {
        self.queue
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, decent-quality generator; no external
        // dependency needed in the hot path.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A node ready to carry `value`: recycled from this handle's cache
    /// when a mature one exists, freshly allocated otherwise.
    fn alloc_node(&mut self, value: T, tid: usize) -> *mut Node<T> {
        if let Some(node) = self.cache.pop_mature() {
            Stats::bump(&self.queue.stats.node_reuses);
            // SAFETY: maturity (`RetireCache::pop_mature`) makes us the
            // unique owner — no pin that could still observe the node
            // remains. The publish that follows in the caller is a
            // SeqCst store, releasing these plain/Relaxed writes to any
            // helper that reads the node through the descriptor.
            unsafe {
                (*node).next.store(epoch::Shared::null(), kp_sync::atomic::Ordering::Relaxed);
                (*node).deq_tid.store(NO_DEQUEUER, kp_sync::atomic::Ordering::Relaxed);
                (*node).enq_tid = tid;
                *(*node).value.get() = Some(value);
            }
            node
        } else {
            Stats::bump(&self.queue.stats.node_allocs);
            Box::into_raw(Box::new(Node::new(Some(value), tid)))
        }
    }

    /// Applies the configured helping policy for an operation running at
    /// `phase`, then drives the handle's *own* operation to completion.
    fn run_help(&mut self, phase: i64, enqueue: bool, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        let n = q.max_threads();
        match q.config.help {
            HelpPolicy::ScanAll => {
                // Base algorithm: the L64/L101 `help(phase)` call. The
                // scan includes our own entry, so the operation is
                // complete when it returns.
                q.help_all(phase, tid, guard, &mut self.cache);
            }
            HelpPolicy::Cyclic { chunk } => {
                // §3.3 optimization 1: examine `chunk` entries starting
                // at the cyclic cursor (in addition to our own entry).
                for j in 0..chunk.min(n) {
                    let i = (self.cursor + j) % n;
                    if i != tid {
                        q.help_index(i, phase, tid, guard, &mut self.cache);
                    }
                }
                self.cursor = (self.cursor + chunk) % n;
            }
            HelpPolicy::RandomChunk { chunk } => {
                // §3.3 alternative: random chunk (probabilistic
                // wait-freedom).
                let start = (self.next_rand() % n as u64) as usize;
                for j in 0..chunk.min(n) {
                    let i = (start + j) % n;
                    if i != tid {
                        q.help_index(i, phase, tid, guard, &mut self.cache);
                    }
                }
            }
        }
        // Under the chunked policies our own entry may not have been
        // visited; drive our own operation to completion. (Redundant but
        // harmless under ScanAll: `is_still_pending` fails immediately.)
        if enqueue {
            q.help_enq(tid, phase, tid, guard);
        } else {
            q.help_deq(tid, phase, tid, guard, &mut self.cache);
        }
    }

    /// True when this operation must skip the fast path because a
    /// peer's descriptor has been pending while we kept winning it.
    /// Peeks one `state` slot (at the cyclic help cursor) every
    /// `starvation_patience` consecutive fast completions; on a hit the
    /// caller demotes to the slow path, whose `Cyclic` help chunk
    /// starts at that very cursor — the demotion directly helps the
    /// starved peer.
    fn starvation_peek(&mut self) -> bool {
        let q = self.queue;
        let patience = q.config.starvation_patience;
        if patience == 0 || self.fast_streak < patience {
            return false;
        }
        self.fast_streak = 0;
        let n = q.max_threads();
        if self.cursor == self.id.id() {
            // Our own slot cannot starve us; rotate and stay fast.
            self.cursor = (self.cursor + 1) % n;
            return false;
        }
        // SeqCst: this read gates a helping obligation, exactly like
        // `is_still_pending` — an Acquire-stale idle word would let a
        // fast handle overlook a peer pending in the SC order.
        let (w, _) = q.state[self.cursor].view(kp_sync::atomic::Ordering::SeqCst);
        if w.pending() {
            true
        } else {
            self.cursor = (self.cursor + 1) % n;
            false
        }
    }

    /// Operation prologue shared by `enqueue` and `dequeue`: the
    /// reaper-protocol obligations of a live owner (DESIGN.md §13).
    /// One predictable branch when the reaper is disabled.
    ///
    /// # Panics
    ///
    /// Panics if this handle's lease was revoked by a reaper — the
    /// handle was presumed dead after staying silent for a peer's whole
    /// patience window (the lease contract). The handle is poisoned;
    /// the queue itself is unharmed and the virtual ID has already been
    /// (or is being) recycled.
    #[inline]
    fn op_prologue(&mut self) {
        let q = self.queue;
        if q.config.reap_patience == 0 {
            return;
        }
        assert!(
            self.id.lease_holds(),
            "kp-queue handle reaped: the handle stayed silent past the lease \
             patience window and its virtual ID was revoked (DESIGN.md §13)"
        );
        let tid = self.id.id();
        q.state[tid].bump_beat();
        let token = epoch::participant_token();
        if token != self.epoch_token {
            self.epoch_token = token;
            q.epoch_tokens[tid].store(token, kp_sync::atomic::Ordering::SeqCst);
        }
    }

    /// Signals liveness without performing an operation. A handle that
    /// can go quiet for long stretches (while other threads keep
    /// operating) must call this — or complete an operation — at least
    /// once per peer patience window when the queue runs with
    /// [`Config::with_reaper`](crate::Config::with_reaper), or it will
    /// be presumed dead and reaped. No-op when the reaper is disabled.
    ///
    /// # Panics
    ///
    /// Panics if the lease was already revoked (see `enqueue`).
    pub fn keepalive(&mut self) {
        self.op_prologue();
    }

    /// `enq(value)`, Figure 4 L61–66, preceded by the bounded fast path
    /// when enabled (DESIGN.md §12).
    ///
    /// # Panic safety
    ///
    /// The body runs under an unwind guard: if a panic escapes from
    /// anywhere inside the protocol (including the fast path and the
    /// fast→slow demotion window), the guard completes the published
    /// operation, reclaims any still-private node, and leaves both the
    /// descriptor and the handle reusable before the panic resumes.
    pub fn enqueue(&mut self, value: T) {
        chaos_hooks::op_begin();
        // Prologue strictly before pin: the reaper's publisher scan
        // (`WfQueue::reap_slot`) relies on every pinned handle having
        // its epoch token visible in `epoch_tokens` first, so a live
        // pin on a thread shared with a reaped handle is never
        // quarantined (DESIGN.md §13.4).
        self.op_prologue();
        let guard = epoch::pin();
        let result = catch_unwind(AssertUnwindSafe(|| {
            if self.max_fast_failures > 0 {
                self.enqueue_fast_first(value, &guard);
            } else {
                self.slow_enqueue(value, &guard);
            }
            self.reap_tick(&guard);
        }));
        match result {
            Ok(()) => chaos_hooks::op_end(),
            // A killed operation never completes: recover, then let the
            // panic continue (op_end deliberately not called — the
            // partial step count must not be reported).
            Err(payload) => {
                self.recover_after_unwind(&guard);
                resume_unwind(payload);
            }
        }
    }

    /// The fast prologue and its demotion edges, kept out of line
    /// (`#[inline(never)]`) so a `max_fast_failures == 0` build path
    /// keeps the pre-fast-path code shape of `enqueue` — inlining this
    /// into the entry point measurably perturbed slow-only codegen.
    #[inline(never)]
    fn enqueue_fast_first(&mut self, value: T, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        if !self.starvation_peek() {
            let node = self.alloc_node(value, FAST_ENQUEUER);
            // Track the private node for panic recovery until it is
            // published (append CAS or descriptor publish). The tracker
            // itself is passed down so the clear is not lost if an
            // unwind escapes after the publishing CAS.
            self.inflight = node;
            let budget = self.max_fast_failures;
            if q.try_fast_enqueue(node, budget, &mut self.inflight, guard) {
                self.fast_streak += 1;
                self.local_stats.fast_completions += 1;
                Stats::bump(&q.stats.fast_completions);
                Stats::bump(&q.stats.enqueues);
                return;
            }
            // Exhausted: every append CAS failed, so the node was
            // never published — it is still exclusively ours.
            // Rebrand it with our real tid and fall back to the
            // wait-free slow path.
            self.fast_streak = 0;
            self.local_stats.fast_exhaustions += 1;
            Stats::bump(&q.stats.fast_exhaustions);
            // SAFETY: exclusive ownership (see above); helpers only
            // read `enq_tid` after the descriptor publish below,
            // whose SeqCst store releases this write.
            unsafe { (*node).enq_tid = tid };
            inject!("kp.fast.demote");
            self.local_stats.slow_ops += 1;
            let phase = q.next_phase(); // L62
            self.slow_enqueue_publish(phase, node, guard);
            return;
        }
        self.local_stats.fast_starvation_demotions += 1;
        Stats::bump(&q.stats.fast_starvation_demotions);
        // Demote to the slow path, which helps the starved peer (its
        // slot is at our help cursor).
        self.slow_enqueue(value, guard);
    }

    /// The slow path proper: Figure 4 L61–66 with a freshly prepared
    /// node.
    fn slow_enqueue(&mut self, value: T, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L62
        // The injection point sits before the node is prepared so a
        // simulated crash here leaks nothing: the value is still a plain
        // local, dropped by the unwind.
        inject!("kp.publish");
        let node = self.alloc_node(value, tid);
        self.slow_enqueue_publish(phase, node, guard);
    }

    /// L63–65: publish the prepared node's descriptor and drive the
    /// enqueue to completion (shared by the slow path proper and the
    /// fast-path demotion).
    fn slow_enqueue_publish(&mut self, phase: i64, node: *mut Node<T>, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        // L63: publish the operation descriptor — an in-place slot
        // store, not an allocation (see `StateSlot::publish`).
        q.state[tid].publish(phase, node as usize, true);
        // Published: from here unwind recovery completes the operation
        // through the descriptor instead of reclaiming the node.
        self.inflight = ptr::null_mut();
        self.run_help(phase, true, guard); // L64
        q.help_finish_enq(guard); // L65 (see the paper's L65 argument)
        Stats::bump(&q.stats.enqueues);
    }

    /// `deq()`, Figure 6 L98–108, preceded by the bounded fast path
    /// when enabled (DESIGN.md §12). Returns `None` where the paper
    /// throws `EmptyException`.
    ///
    /// # Panic safety
    ///
    /// Unwind-guarded exactly like [`enqueue`]: a panic escaping from
    /// inside the protocol completes (and discards the result of) the
    /// published operation before resuming, leaving the handle usable.
    ///
    /// [`enqueue`]: Self::enqueue
    pub fn dequeue(&mut self) -> Option<T> {
        // The guard is held from before the descriptor is published
        // until after the value is read: every node our descriptor can
        // reference is retired (if at all) during this pin, so the reads
        // below are safe — including against recycling, which obeys the
        // same maturity rule as freeing. It is pinned *outside* the
        // unwind guard for the same reason: recovery walks those very
        // nodes and must run under the original pin.
        chaos_hooks::op_begin();
        // Prologue before pin, as in `enqueue` (publisher-scan order).
        self.op_prologue();
        let guard = epoch::pin();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let result = if self.max_fast_failures > 0 {
                self.dequeue_fast_first(&guard)
            } else {
                self.slow_dequeue(&guard)
            };
            self.reap_tick(&guard);
            result
        }));
        match result {
            Ok(result) => {
                chaos_hooks::op_end();
                result
            }
            Err(payload) => {
                self.recover_after_unwind(&guard);
                resume_unwind(payload);
            }
        }
    }

    /// The fast prologue and its demotion edges; out of line for the
    /// same codegen reason as [`enqueue_fast_first`].
    ///
    /// [`enqueue_fast_first`]: Self::enqueue_fast_first
    #[inline(never)]
    fn dequeue_fast_first(&mut self, guard: &Guard) -> Option<T> {
        let q = self.queue;
        if !self.starvation_peek() {
            match q.try_fast_dequeue(self.max_fast_failures, &mut self.cache, guard) {
                FastDeq::Done(result) => {
                    self.fast_streak += 1;
                    self.local_stats.fast_completions += 1;
                    Stats::bump(&q.stats.fast_completions);
                    Stats::bump(&q.stats.dequeues);
                    return result;
                }
                FastDeq::Exhausted => {
                    self.fast_streak = 0;
                    self.local_stats.fast_exhaustions += 1;
                    Stats::bump(&q.stats.fast_exhaustions);
                    inject!("kp.fast.demote");
                }
            }
        } else {
            self.local_stats.fast_starvation_demotions += 1;
            Stats::bump(&q.stats.fast_starvation_demotions);
        }
        self.slow_dequeue(guard)
    }

    /// The slow path proper: Figure 6 L98–108.
    fn slow_dequeue(&mut self, guard: &Guard) -> Option<T> {
        let q = self.queue;
        let tid = self.id.id();
        self.local_stats.slow_ops += 1;
        let phase = q.next_phase(); // L99
        inject!("kp.publish");
        // L100: publish the operation descriptor (node = null).
        q.state[tid].publish(phase, 0, false);
        // From publish until the epilogue claims the result, an unwind
        // leaves a dequeue whose value must still be taken-and-dropped.
        self.deq_in_flight = true;
        self.run_help(phase, false, guard); // L101
        q.help_finish_deq(guard, &mut self.cache); // L102
        Stats::bump(&q.stats.dequeues);
        // L103–107: read the result through our completed descriptor.
        let result = Self::read_deq_result(q, tid, guard);
        self.deq_in_flight = false;
        result
    }

    /// The L103–107 epilogue, shared with the test-hook path.
    ///
    /// Ordering relaxation: Acquire, not SeqCst. This reads our *own*
    /// slot after our operation completed; the completing transition
    /// (ours or a helper's SeqCst CAS that our `is_still_pending` loop
    /// already observed) happens-before this load via the SeqCst loop
    /// exit, and coherence forbids reading anything older. No helping
    /// decision hangs off this read.
    fn read_deq_result(q: &WfQueue<T>, tid: usize, guard: &Guard) -> Option<T> {
        let (w, _) = q.state[tid].view(kp_sync::atomic::Ordering::Acquire);
        debug_assert!(!w.pending(), "operation must be complete");
        debug_assert!(!w.enqueue(), "descriptor must be ours (dequeue)");
        if w.node_is_null() {
            Stats::bump(&q.stats.empty_dequeues);
            return None; // L104–105: linearized on an empty queue
        }
        let node = w.node_ptr::<Node<T>>();
        // L107: the value lives in the node *after* the sentinel our
        // operation locked.
        // SAFETY: `node` is the sentinel this dequeue locked; it was
        // retired no earlier than the L150 head-CAS, which happened
        // during our pin, so it is still live (and not recycled: reuse
        // obeys the same maturity rule). Same for `next`.
        let next = unsafe { &*node }.next.load(kp_sync::atomic::Ordering::Acquire, guard);
        debug_assert!(!next.is_null(), "locked sentinel must have a successor");
        // SAFETY (uniqueness of the take): `node.deq_tid == tid` was set
        // by a successful CAS from −1 *in this generation of the node* —
        // a recycled node is republished only after its reset, which no
        // still-running dequeue can have locked (maturity again) — so
        // exactly one operation ever locks `node`, and only that
        // operation's owner executes this line for `node`. Each value is
        // taken exactly once, with the enqueuer's write ordered before
        // by the release/acquire chain through the list links.
        let value = unsafe { (*next.deref().value.get()).take() };
        // Checked in release builds on purpose: with the reaper in the
        // picture, a claim-and-discard by `WfQueue::reap_slot` racing a
        // falsely-reaped (preempted, not dead) owner's epilogue would
        // make this second take() return None — that must surface as a
        // panic, never as UB. The branch is perfectly predicted.
        Some(value.expect("value already taken: deq_tid uniqueness violated"))
    }

    /// One step of the abandoned-handle reaper (DESIGN.md §13), run
    /// after every [`TICK_STRIDE`](crate::reap::TICK_STRIDE)-th
    /// completed operation when `Config::reap_patience > 0`.
    /// Examines exactly one peer slot; bounded work, so the enclosing
    /// operation stays wait-free.
    fn reap_tick(&mut self, guard: &Guard) {
        let q = self.queue;
        let patience = q.config.reap_patience;
        if patience == 0 || !self.reap.tick_due() {
            return;
        }
        let tid = self.id.id();
        let n = q.max_threads();
        let v = self.reap.cursor();
        if v == tid {
            self.reap.advance(n);
            return;
        }
        let Some(view) = q.ids.inspect(v) else {
            self.reap.advance(n);
            return;
        };
        match view.state {
            SlotState::Free => self.reap.advance(n),
            SlotState::Claimed => {
                // The full liveness snapshot: lease generation (slot
                // churn), heartbeat (owner-side progress), ctrl word
                // with its version tag (helper-side progress) and
                // phase. SeqCst view: the post-freeze `reap_slot`
                // re-reads authoritatively, so Acquire would do, but
                // this is off the hot path and SeqCst keeps the audit
                // uniform with the other descriptor reads.
                let (ctrl, phase) = q.state[v].view(kp_sync::atomic::Ordering::SeqCst);
                let obs = Observation::Claimed {
                    generation: view.generation,
                    beat: q.state[v].load_beat(),
                    ctrl,
                    phase,
                };
                if self.reap.frozen(obs, patience) {
                    // Frozen for our whole patience window: revoke the
                    // lease. The CAS fails iff the owner (or another
                    // reaper) moved the slot since our snapshot — then
                    // it was not frozen after all and we just move on.
                    if q.ids.begin_reap(v, view.generation) {
                        q.reap_slot(v, view.generation, tid, guard, &mut self.cache);
                    }
                    self.reap.advance(n);
                }
            }
            SlotState::Reaping => {
                // Watch the reaper itself; its only progress signal is
                // the lease generation (see `Observation::Reaping`).
                let obs = Observation::Reaping {
                    generation: view.generation,
                };
                if self.reap.frozen(obs, patience) {
                    if let Some(next_generation) = q.ids.takeover_reap(v, view.generation) {
                        Stats::bump(&q.stats.reap_takeovers);
                        q.reap_slot(v, next_generation, tid, guard, &mut self.cache);
                    }
                    self.reap.advance(n);
                }
            }
        }
    }

    /// Restores the handle's invariants after a panic escaped from
    /// inside `enqueue`/`dequeue`. On return the descriptor is idle,
    /// no node is leaked or double-owned, and the handle is usable.
    ///
    /// Must run under the pin the operation itself was running under
    /// (`guard` is the one `enqueue`/`dequeue` created before entering
    /// the unwind guard): completing a pending dequeue reads nodes
    /// whose liveness argument is "retired during this pin".
    #[cold]
    fn recover_after_unwind(&mut self, guard: &Guard) {
        let q = self.queue;
        let tid = self.id.id();
        // A still-private fast-path node: never published (the append
        // CAS clears the tracker the instant it succeeds, the slow
        // publish right after the descriptor store), so we are its
        // unique owner and nothing in the queue references it.
        let inflight = std::mem::replace(&mut self.inflight, ptr::null_mut());
        if !inflight.is_null() {
            // SAFETY: unique ownership per the tracker invariant above;
            // the node came from `alloc_node` (a `Box` either way —
            // recycled nodes were `Box`es originally) and its value
            // drops with it.
            drop(unsafe { Box::from_raw(inflight) });
        }
        let (w, phase) = q.state[tid].view(kp_sync::atomic::Ordering::SeqCst);
        if w.pending() {
            // Died mid-protocol with a published descriptor: finish the
            // operation the same way `Drop` would.
            if w.enqueue() {
                q.help_enq(tid, phase, tid, guard);
            } else {
                q.help_deq(tid, phase, tid, guard, &mut self.cache);
                q.help_finish_deq(guard, &mut self.cache);
                // The caller will never see the result; claim and
                // discard it so conservation stays exact.
                drop(Self::read_deq_result(q, tid, guard));
            }
        } else if !w.enqueue() && self.deq_in_flight {
            // The dequeue completed (possibly via helpers) but the
            // unwind hit before the epilogue claimed the value.
            drop(Self::read_deq_result(q, tid, guard));
        }
        self.deq_in_flight = false;
        // Leave head and tail fully advanced — the next operation (ours
        // or anyone's) starts from a quiescent queue, and an enqueue
        // that died between steps 2 and 3 gets its tail swing now.
        q.help_finish_enq(guard);
        q.help_finish_deq(guard, &mut self.cache);
        self.fast_streak = 0;
    }

    /// Begins an operation but performs **no helping**, leaving the
    /// published descriptor pending — as if the thread stalled right
    /// after the paper's L63/L100. Test infrastructure for exercising
    /// the helping mechanism deterministically; not part of the public
    /// API surface.
    #[doc(hidden)]
    pub fn begin_enqueue_unhelped(&mut self, value: T) -> PendingOp<'_, 'q, T> {
        let q = self.queue;
        let tid = self.id.id();
        let guard = epoch::pin();
        let phase = q.next_phase();
        let node = self.alloc_node(value, tid);
        q.state[tid].publish(phase, node as usize, true);
        PendingOp {
            handle: self,
            guard,
            phase,
            enqueue: true,
            done: false,
        }
    }

    /// Dequeue counterpart of [`begin_enqueue_unhelped`].
    ///
    /// [`begin_enqueue_unhelped`]: Self::begin_enqueue_unhelped
    #[doc(hidden)]
    pub fn begin_dequeue_unhelped(&mut self) -> PendingOp<'_, 'q, T> {
        let q = self.queue;
        let tid = self.id.id();
        let guard = epoch::pin();
        let phase = q.next_phase();
        q.state[tid].publish(phase, 0, false);
        PendingOp {
            handle: self,
            guard,
            phase,
            enqueue: false,
            done: false,
        }
    }

    /// Enqueues every value of `batch` in order (the queue is unbounded,
    /// so nothing is ever refused), paying the per-call fixed costs —
    /// reaper prologue, epoch pin, unwind guard, reap tick — once for
    /// the whole batch instead of once per value. Each value is still
    /// its own operation of the protocol (own fast-path attempt or
    /// phase/descriptor publish), so the per-operation wait-freedom
    /// bound is unchanged; strictly the entry/exit overhead is
    /// amortized. The epoch pin is held across the batch, delaying
    /// node reclamation by at most one batch — callers should keep
    /// batches modest (the channel layer bounds them by its configured
    /// batch size).
    ///
    /// Returns how many values were enqueued (always `batch.len()`).
    ///
    /// # Panic safety
    ///
    /// As [`enqueue`]: an unwind from inside the protocol completes the
    /// published operation before resuming. Values of the batch not yet
    /// submitted when the panic struck are dropped with the drain.
    ///
    /// [`enqueue`]: Self::enqueue
    pub fn enqueue_batch(&mut self, batch: &mut Vec<T>) -> usize {
        let n = batch.len();
        if n == 0 {
            return 0;
        }
        // Prologue strictly before pin (publisher-scan order, as in
        // `enqueue`); one liveness beat covers the whole batch.
        self.op_prologue();
        let guard = epoch::pin();
        let result = catch_unwind(AssertUnwindSafe(|| {
            for value in batch.drain(..) {
                // The watchdog still sees one bounded operation per
                // value — batching must not relax the O(n) step budget.
                chaos_hooks::op_begin();
                if self.max_fast_failures > 0 {
                    self.enqueue_fast_first(value, &guard);
                } else {
                    self.slow_enqueue(value, &guard);
                }
                chaos_hooks::op_end();
            }
            self.reap_tick(&guard);
        }));
        match result {
            Ok(()) => n,
            Err(payload) => {
                self.recover_after_unwind(&guard);
                resume_unwind(payload);
            }
        }
    }

    /// Dequeues up to `max` immediately available values into `out`,
    /// stopping at the first empty observation; returns how many were
    /// taken. The batched twin of [`enqueue_batch`]: per-call fixed
    /// costs are paid once, each value is still its own bounded
    /// operation, and the epoch pin spans the batch.
    ///
    /// [`enqueue_batch`]: Self::enqueue_batch
    pub fn dequeue_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        self.op_prologue();
        let guard = epoch::pin();
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut taken = 0;
            while taken < max {
                chaos_hooks::op_begin();
                let value = if self.max_fast_failures > 0 {
                    self.dequeue_fast_first(&guard)
                } else {
                    self.slow_dequeue(&guard)
                };
                chaos_hooks::op_end();
                match value {
                    Some(v) => {
                        out.push(v);
                        taken += 1;
                    }
                    None => break,
                }
            }
            self.reap_tick(&guard);
            taken
        }));
        match result {
            Ok(taken) => taken,
            Err(payload) => {
                self.recover_after_unwind(&guard);
                resume_unwind(payload);
            }
        }
    }

    /// Performs a fast-path append and **skips the tail swing**: the
    /// shared state a thread killed at `kp.fast.swing_tail` leaves
    /// behind when nothing runs its unwind recovery (sudden death).
    /// The value is linearized — the append CAS is the linearization
    /// point — but the tail lags until someone's `help_finish_enq`
    /// fixes it, which makes the *next* budget-1 fast enqueue demote
    /// deterministically. Test infrastructure, like
    /// [`begin_enqueue_unhelped`].
    ///
    /// [`begin_enqueue_unhelped`]: Self::begin_enqueue_unhelped
    #[doc(hidden)]
    pub fn fast_append_unswung(&mut self, value: T) {
        let q = self.queue;
        // Prologue before pin, as in `enqueue` (publisher-scan order).
        self.op_prologue();
        let guard = epoch::pin();
        let node = self.alloc_node(value, FAST_ENQUEUER);
        q.append_no_swing(node, &guard);
    }
}

impl<T: Send> QueueHandle<T> for WfHandle<'_, T> {
    fn enqueue(&mut self, value: T) {
        WfHandle::enqueue(self, value);
    }

    fn dequeue(&mut self) -> Option<T> {
        WfHandle::dequeue(self)
    }

    fn try_enqueue_batch(&mut self, batch: &mut Vec<T>) -> usize {
        WfHandle::enqueue_batch(self, batch)
    }

    fn dequeue_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        WfHandle::dequeue_batch(self, out, max)
    }

    fn fast_path_stats(&self) -> Option<FastPathStats> {
        Some(self.local_stats)
    }
}

impl<T: Send> Drop for WfHandle<'_, T> {
    fn drop(&mut self) {
        // §3.3 "dummy descriptor on exit". The ID must not return to the
        // pool while `state[tid]` still describes an unfinished
        // operation: a successor thread reusing the slot would replace
        // the descriptor, and if a helper had meanwhile appended the
        // orphaned enqueue node, no descriptor matching it would ever
        // exist again — `help_finish_enq` could then never swing the
        // tail past it (a total wedge). So: finish our own operation
        // exactly as the owner would, discard an unclaimed dequeue
        // result, and leave a pristine descriptor behind.
        let q = self.queue;
        let tid = self.id.id();
        let guard = epoch::pin();
        // Exit counts as an operation under the lease protocol: signal
        // liveness first, so a reaper part-way through accumulating
        // silence against this slot restarts its patience window and
        // cannot revoke the lease from under the cleanup below. The
        // shared (RMW) bump is required here: the slot may already have
        // been reaped and re-acquired, and the owner-only load+store
        // variant could swallow the successor's concurrent increment. A
        // stale bump itself is benign — the beat is pure liveness
        // signal, and at worst delays the successor's next reap by one
        // observation.
        if q.config.reap_patience != 0 {
            q.state[tid].bump_beat_shared();
        }
        if !self.id.lease_holds() {
            // Reaped out from under us (lease-contract violation on our
            // side): the reaper already drove the descriptor idle and
            // the slot may belong to a successor — touching `state[tid]`
            // or `epoch_tokens[tid]` now would corrupt *their* state.
            // `IdGuard::drop`'s release CAS fails silently on the stale
            // generation. Only our private cache is still ours to free.
            self.cache.drain(&guard);
            return;
        }
        let (w, phase) = q.state[tid].view(kp_sync::atomic::Ordering::SeqCst);
        if w.pending() {
            if w.enqueue() {
                q.help_enq(tid, phase, tid, &guard);
                q.help_finish_enq(&guard);
            } else {
                q.help_deq(tid, phase, tid, &guard, &mut self.cache);
                q.help_finish_deq(&guard, &mut self.cache);
                // Nobody will ever read this dequeue's result; take the
                // value out of the node so conservation stays exact (it
                // counts as consumed-by-the-departed-thread).
                drop(Self::read_deq_result(q, tid, &guard));
            }
        }
        // Even when our op is no longer pending, the tail may still sit
        // *before* our appended node (we died between enqueue steps 2
        // and 3). Helpers only swing the tail while the owner's
        // descriptor still references that node (the L91 identity
        // check), so the dummy may be published only once the tail is
        // past it — one help_finish_enq call guarantees that. The head
        // needs no such gate (the L150 CAS is unconditional), but we
        // drive it too so the slot is handed over fully quiescent.
        q.help_finish_enq(&guard);
        q.help_finish_deq(&guard, &mut self.cache);
        // Fresh idle descriptor (version-bumped in place): the slot's
        // next owner starts from the same state a brand-new slot has,
        // and stale helper CASes against our old words keep failing.
        q.state[tid].reset();
        // Reuse ends with the handle: give the cached nodes back to the
        // epoch collector.
        self.cache.drain(&guard);
        // Retract the published epoch token only after unpinning, and
        // before the ID can be recycled: while we were pinned above, a
        // reaper quarantining another abandoned slot with the same
        // token had to see our publication (publisher scan, DESIGN.md
        // §13.4) and spare our live pin; once unpinned there is nothing
        // of ours left to protect, and clearing the slot stops a later
        // reap of this ID's next lease from acting on a stale token.
        drop(guard);
        q.epoch_tokens[tid].store(0, kp_sync::atomic::Ordering::SeqCst);
        // `self.id` drops after this body, releasing the virtual ID —
        // only now that the state entry is helpable and self-contained.
    }
}

/// An in-flight operation started by [`WfHandle::begin_enqueue_unhelped`]
/// or [`WfHandle::begin_dequeue_unhelped`] — the owner is "stalled" and
/// other threads' operations may complete it through helping.
///
/// Holds the owner's epoch guard, so the queue's node references stay
/// valid until [`finish`](PendingOp::finish). Not `Send`: it models one
/// stalled thread.
#[doc(hidden)]
pub struct PendingOp<'h, 'q, T: Send> {
    handle: &'h mut WfHandle<'q, T>,
    guard: Guard,
    phase: i64,
    enqueue: bool,
    done: bool,
}

impl<T: Send> PendingOp<'_, '_, T> {
    /// True while the operation has not been linearized-and-acknowledged
    /// by anyone (owner or helper).
    pub fn is_pending(&self) -> bool {
        self.handle
            .queue
            .is_still_pending(self.handle.tid(), self.phase)
    }

    /// The phase number the operation was published with.
    pub fn phase(&self) -> i64 {
        self.phase
    }

    fn complete(&mut self) -> Option<T> {
        debug_assert!(!self.done);
        self.done = true;
        let q = self.handle.queue;
        let tid = self.handle.id.id();
        if self.enqueue {
            q.help_enq(tid, self.phase, tid, &self.guard);
            q.help_finish_enq(&self.guard);
            Stats::bump(&q.stats.enqueues);
            None
        } else {
            q.help_deq(tid, self.phase, tid, &self.guard, &mut self.handle.cache);
            q.help_finish_deq(&self.guard, &mut self.handle.cache);
            Stats::bump(&q.stats.dequeues);
            WfHandle::read_deq_result(q, tid, &self.guard)
        }
    }

    /// Resumes the stalled owner: completes the operation (help may
    /// already have done all the work) and returns the dequeued value,
    /// if this was a dequeue.
    pub fn finish(mut self) -> Option<T> {
        self.complete()
    }

    /// Walks away without completing: the descriptor stays pending, as
    /// if the owning thread died mid-operation. The handle's exit
    /// cleanup (its `Drop`) is then responsible for the abandoned
    /// operation — this is the test hook for the §3.3 "dummy descriptor
    /// on exit" path.
    pub fn abandon(mut self) {
        self.done = true;
    }
}

impl<T: Send> Drop for PendingOp<'_, '_, T> {
    fn drop(&mut self) {
        if !self.done {
            // The operation MUST be driven to completion before the
            // handle can be reused; a dequeued value, if any, is
            // discarded.
            drop(self.complete());
        }
    }
}
