//! Node recycling for the hazard-pointer variant.
//!
//! The epoch variant recycles through per-handle caches gated by the
//! global epoch. Hazard pointers have no epochs, so the HP variant uses
//! a **token gate** plus a shared freelist:
//!
//! * a node may be disposed of only once *both* of two events happened,
//!   in either order — the owner of the dequeue that received the node
//!   consumed its value ([`TOKEN_CONSUMED`]), and the hazard scan
//!   established that no hazard pointer covers the node
//!   ([`TOKEN_RECLAIM_READY`]). Each event sets its token with an
//!   `AcqRel` `fetch_or`; whichever `fetch_or` observes the other's bit
//!   already set performs the disposal — exactly once, with the
//!   loser-to-winner happens-before edge the RMW provides.
//! * disposal = [`NodePool::release`]: push onto a shared lock-free
//!   freelist (or free, on overflow / with reuse disabled). Handles
//!   allocate by popping their small local cache, refilled by stealing
//!   the *entire* shared list at once.
//!
//! The steal-all shape is what makes the freelist sound without tags:
//! `release` pushes a node it exclusively owns (write `free_next`, then
//! CAS the head — the classic ABA-immune Treiber *push*), and `steal`
//! detaches the whole list with one swap and walks it privately. No
//! operation ever dereferences a node still reachable from the shared
//! head, so the Treiber *pop* ABA/use-after-free hazard never arises.

use std::ptr;
use kp_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use crate::hp::types::{NodeHp, TOKEN_CONSUMED, TOKEN_RECLAIM_READY};

/// Shared-freelist size bound; beyond it released nodes are freed.
const POOL_CAP: usize = 256;

/// Push retries before giving up and freeing the node instead. The
/// bound keeps `release` wait-free (it runs inside queue operations via
/// the hazard scan); losing the race this many times just means other
/// threads are filling the pool, so dropping our node costs little.
const PUSH_ATTEMPTS: usize = 8;

/// The shared node freelist (one per queue).
pub(crate) struct NodePool<T> {
    /// Treiber head, linked through `NodeHp::free_next`.
    head: AtomicPtr<NodeHp<T>>,
    /// Approximate population (maintained racily; only bounds growth).
    len: AtomicUsize,
    /// Nodes freed instead of pooled while reuse was *on* — the pool
    /// was at [`POOL_CAP`] or the push-contention bound tripped. The
    /// memory-pressure backpressure signal (DESIGN.md §13); folded into
    /// `StatsSnapshot::cache_overflows` by `WfQueueHp::stats`. Kept
    /// unconditional (not `stats`-gated) because `release` runs from
    /// reclaim callbacks that have no access to the queue's `Stats`.
    overflows: AtomicUsize,
    reuse: bool,
}

impl<T> NodePool<T> {
    pub(crate) fn new(reuse: bool) -> Self {
        NodePool {
            head: AtomicPtr::new(ptr::null_mut()),
            len: AtomicUsize::new(0),
            overflows: AtomicUsize::new(0),
            reuse,
        }
    }

    /// Nodes freed past the cap so far (see the `overflows` field).
    #[cfg_attr(not(feature = "stats"), allow(dead_code))]
    pub(crate) fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed) as u64
    }

    /// Takes ownership of a fully disposed node (both tokens observed).
    ///
    /// # Safety
    ///
    /// The caller must hold the node exclusively: unlinked from the
    /// queue, no hazard covering it (or provably unreachable to hazard
    /// publishers), and never released twice per lifetime generation.
    pub(crate) unsafe fn release(&self, node: *mut NodeHp<T>) {
        if self.reuse && self.len.load(Ordering::Relaxed) < POOL_CAP {
            let mut head = self.head.load(Ordering::Relaxed);
            for _ in 0..PUSH_ATTEMPTS {
                // SAFETY: exclusive ownership (caller contract); the
                // Release CAS below orders this write before the node
                // becomes reachable from the shared head.
                unsafe { (*node).free_next.store(head, Ordering::Relaxed) };
                match self.head.compare_exchange_weak(
                    head,
                    node,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    Err(h) => head = h,
                }
            }
        }
        // Overflow, contention bound hit, or reuse disabled: free. Safe
        // precisely because no popper ever dereferences shared nodes —
        // this node was never published, or we own it again. With reuse
        // on this is the backpressure path — count it.
        if self.reuse {
            self.overflows.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: exclusive ownership (caller contract).
        unsafe { drop(Box::from_raw(node)) };
    }

    /// Detaches the entire freelist and returns its head; the caller
    /// owns every node on it (linked via `free_next`).
    pub(crate) fn steal(&self) -> *mut NodeHp<T> {
        if !self.reuse {
            return ptr::null_mut();
        }
        // Acquire pairs with release()'s Release CAS: the private walk
        // that follows sees every `free_next` written before publish.
        let head = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        if !head.is_null() {
            // Racy vs concurrent pushes — at worst the pool briefly
            // over-counts toward POOL_CAP. Growth stays bounded.
            self.len.store(0, Ordering::Relaxed);
        }
        head
    }
}

impl<T> Drop for NodePool<T> {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access in Drop; freelist nodes are owned
            // by the pool and appear nowhere else.
            let node = unsafe { Box::from_raw(cur) };
            cur = node.free_next.load(Ordering::Relaxed);
        }
    }
}

/// The disposal half of the token gate, handed to
/// `Participant::retire_with` when a sentinel is unlinked: called by
/// whichever scan finds the node uncovered by hazards.
///
/// # Safety
///
/// `ptr` is the retired `NodeHp<T>`, `ctx` the queue's [`NodePool<T>`];
/// both outlive the call (the pool is dropped after the hazard domain —
/// field order in `WfQueueHp`).
pub(crate) unsafe fn reclaim_into_pool<T>(ptr: *mut u8, ctx: *mut u8) {
    let node = ptr.cast::<NodeHp<T>>();
    // SAFETY: caller contract.
    let pool = unsafe { &*ctx.cast::<NodePool<T>>() };
    // SAFETY: node is retired, so it stays allocated until both tokens
    // are observed; the fetch_or is the observation.
    let prev = unsafe { (*node).tokens.fetch_or(TOKEN_RECLAIM_READY, Ordering::AcqRel) };
    if prev & TOKEN_CONSUMED != 0 {
        // SAFETY: both tokens set — nobody else can touch the node: the
        // scan cleared it of hazards and the owner is done with the
        // value (its fetch_or happened-before ours).
        unsafe { pool.release(node) };
    }
    // else: the dequeue owner has not consumed the value yet; its
    // CONSUMED fetch_or will observe our bit and release. If the owner
    // died mid-operation the node stays in limbo — the bounded
    // kill-window leak documented in DESIGN.md.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_steal_roundtrip() {
        let pool: NodePool<u32> = NodePool::new(true);
        let a = NodeHp::boxed(None, 0);
        let b = NodeHp::boxed(None, 1);
        // SAFETY: `a` and `b` are freshly leaked, uniquely owned nodes.
        unsafe {
            pool.release(a);
            pool.release(b);
        }
        let mut got = Vec::new();
        let mut cur = pool.steal();
        while !cur.is_null() {
            got.push(cur);
            // SAFETY: freelist nodes stay live until the Box::from_raw below.
            cur = unsafe { (*cur).free_next.load(Ordering::Relaxed) };
        }
        assert_eq!(got.len(), 2, "both nodes stolen");
        assert!(got.contains(&a) && got.contains(&b));
        assert!(pool.steal().is_null(), "list is empty after steal");
        for n in got {
            // SAFETY: each node left the freelist exactly once; freed exactly once.
            unsafe { drop(Box::from_raw(n)) };
        }
    }

    #[test]
    fn reuse_disabled_frees_immediately() {
        let pool: NodePool<u32> = NodePool::new(false);
        let a = NodeHp::boxed(None, 0);
        // SAFETY: `a` is freshly leaked; with reuse off, release frees it.
        unsafe { pool.release(a) };
        assert!(pool.steal().is_null());
    }

    #[test]
    fn token_gate_disposes_exactly_once() {
        use kp_sync::atomic::Ordering;
        let pool: NodePool<u32> = NodePool::new(true);
        let ctx = &pool as *const NodePool<u32> as *mut u8;
        // Order 1: scan first (READY), then owner consumes. The scan
        // must NOT release; the owner's fetch_or sees READY and does.
        let n = NodeHp::boxed(Some(7), 0);
        // SAFETY: `n` is live; this simulates the scan's disposal call.
        unsafe { reclaim_into_pool::<u32>(n.cast(), ctx) };
        assert!(pool.head.load(Ordering::Relaxed).is_null(), "not yet");
        // SAFETY: `n` is still live — the two-token gate is not yet complete.
        let prev = unsafe { (*n).tokens.fetch_or(TOKEN_CONSUMED, Ordering::AcqRel) };
        assert_eq!(prev, TOKEN_RECLAIM_READY);
        // SAFETY: owner epilogue — `n` carries both tokens; the pool takes ownership.
        unsafe { pool.release(n) }; // what the owner's epilogue does
        assert_eq!(pool.steal(), n);
        // Order 2: owner first, then scan releases.
        // SAFETY: `n` was stolen back above; the test owns it exclusively.
        unsafe { (*n).tokens.store(TOKEN_CONSUMED, Ordering::Relaxed) };
        // SAFETY: reverse order — the scan's disposal runs after the owner's token.
        unsafe { reclaim_into_pool::<u32>(n.cast(), ctx) };
        assert_eq!(pool.steal(), n, "scan observed CONSUMED and released");
        // SAFETY: `n` left the pool via steal; freed exactly once.
        unsafe { drop(Box::from_raw(n)) };
    }
}
